"""Workload-family builders and their registry entries.

The paper's canonical experiment scenarios (every ``fig*`` builder
mirrors the parameters the evaluation section quotes), the robustness
(mid-run link impairment) family, and three families the Astraea paper
does not evaluate but datacenter RL-CC work treats as signature
workloads:

* ``incast`` — many-to-one: synchronized waves of short flows pile into
  one bottleneck against long elephants (Tessler et al.,
  arXiv:2102.09337; Ketabi et al., arXiv:2301.12558).
* ``asymmetric-rtt`` — same bottleneck, per-flow base RTTs spread 2-10x,
  the adversarial regime for RTT-unfairness.
* ``background-udp`` — unresponsive constant-rate cross traffic the
  schemes must model as non-reacting load: yield and you starve, fight
  and you overflow the buffer.

``quick=True`` shrinks time axes (not the network parameters) so full
benchmark sweeps complete on one CPU.  Every public builder keeps its
historical signature; the registry entries at the bottom of this module
adapt them to the uniform ``(cc, quick, seed, **params)`` calling
convention of :mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..config import FlowConfig, LinkConfig, ScenarioConfig
from ..errors import ConfigError
from ..netsim.flowgen import heterogeneous_rtt_flows, staggered_flows
from ..netsim.topology import TopologyConfig, parking_lot
from ..units import bdp_packets
from .registry import register_family

DEFAULT_SCHEMES = ("astraea", "cubic", "bbr", "vegas", "copa", "vivace",
                   "orca", "reno")

#: Scheme names that model unresponsive cross traffic rather than a
#: congestion controller under evaluation.  Fairness metrics exclude
#: these flows (they are load, not participants).
BACKGROUND_SCHEMES = frozenset({"constant-rate"})


def fig6_scenario(cc: str, quick: bool = False, seed: int = 0,
                  **cc_kwargs) -> ScenarioConfig:
    """§5.1.1: 100 Mbps, 30 ms, 1 BDP; 3 flows at 40 s intervals, 120 s each."""
    interval = 20.0 if quick else 40.0
    flow_len = 60.0 if quick else 120.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = staggered_flows(3, cc=cc, interval_s=interval,
                            duration_s=flow_len, **cc_kwargs)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * 2 + flow_len, seed=seed)


def fig1a_scenario(quick: bool = False, seed: int = 0) -> ScenarioConfig:
    """§2: Aurora on 80 Mbps / 60 ms / 4.8 MB buffer; second flow at 40 s."""
    start2 = 15.0 if quick else 40.0
    total = 60.0 if quick else 120.0
    link = LinkConfig(bandwidth_mbps=80.0, rtt_ms=60.0,
                      buffer_packets=4_800_000 / 1500.0)
    flows = (FlowConfig(cc="aurora", start_s=0.0),
             FlowConfig(cc="aurora", start_s=start2))
    return ScenarioConfig(link=link, flows=flows, duration_s=total, seed=seed)


def fig1b_scenario(rtt_ms: float = 120.0, theta0: float = 1.0,
                   quick: bool = False, seed: int = 0) -> ScenarioConfig:
    """§2: Vivace on 100 Mbps, 1 BDP; 3 flows at 40 s intervals."""
    interval = 20.0 if quick else 40.0
    flow_len = 60.0 if quick else 120.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=rtt_ms, buffer_bdp=1.0)
    flows = staggered_flows(3, cc="vivace", interval_s=interval,
                            duration_s=flow_len, theta0=theta0)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * 2 + flow_len, seed=seed)


def fig8_scenario(cc: str, quick: bool = False, seed: int = 0,
                  ) -> ScenarioConfig:
    """§5.1.2: five long flows, base RTTs evenly spaced 40-200 ms."""
    duration = 40.0 if quick else 120.0
    # The paper sizes the 1 BDP buffer with the 200 ms RTT.
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=40.0,
                      buffer_packets=bdp_packets(100.0, 0.200))
    flows = heterogeneous_rtt_flows(5, cc, (40.0, 200.0), link_rtt_ms=40.0)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig9_scenario(cc: str, bandwidth_mbps: float, rtt_ms: float, n_flows: int,
                  quick: bool = False, seed: int = 0) -> ScenarioConfig:
    """§5.1.3: fairness grid over bandwidth x RTT with 2-8 staggered flows."""
    interval = 8.0 if quick else 20.0
    flow_len = interval * (n_flows + 1)
    link = LinkConfig(bandwidth_mbps=bandwidth_mbps, rtt_ms=rtt_ms,
                      buffer_bdp=1.0)
    flows = staggered_flows(n_flows, cc=cc, interval_s=interval,
                            duration_s=flow_len)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * (n_flows - 1) + flow_len,
                          seed=seed)


def fig10_scenario(cc: str, n_flows: int, quick: bool = False,
                   seed: int = 0) -> ScenarioConfig:
    """§5.1.3: many competing flows on 600 Mbps / 20 ms."""
    duration = 20.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=600.0, rtt_ms=20.0, buffer_bdp=1.0)
    flows = staggered_flows(n_flows, cc=cc, interval_s=0.0, duration_s=None)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig11_topology(cc: str, n_fs1: int, quick: bool = False,
                   seed: int = 0) -> TopologyConfig:
    """§5.1.4: the two-bottleneck parking lot (Link1 100, Link2 20 Mbps).

    Returns a :class:`TopologyConfig`, not a :class:`ScenarioConfig`, so
    it lives outside the (single-bottleneck) scenario registry.
    """
    return parking_lot(n_fs1=n_fs1, n_fs2=2, cc=cc,
                       duration_s=20.0 if quick else 40.0, seed=seed)


def fig13_scenario(cc: str, quick: bool = False, seed: int = 0,
                   ) -> ScenarioConfig:
    """§5.2: LTE-like cellular link, 40 ms RTT, deep buffer."""
    duration = 30.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=12.0, rtt_ms=40.0, buffer_packets=2000)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          trace="lte", trace_kwargs={"seed": seed},
                          seed=seed)


def fig14_scenario(cc: str, n_cubic: int, quick: bool = False,
                   seed: int = 0, **cc_kwargs) -> ScenarioConfig:
    """§5.3.1: one evaluated flow against ``n_cubic`` CUBIC flows."""
    duration = 30.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc=cc, start_s=0.0, cc_kwargs=dict(cc_kwargs)),) + \
        staggered_flows(n_cubic, cc="cubic", interval_s=0.0, duration_s=None)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig15_scenario(cc: str, kind: str = "intra", quick: bool = False,
                   seed: int = 0) -> ScenarioConfig:
    """§5.3.2: synthetic WAN path standing in for the Internet deployment.

    Intra-continental paths are short (35 ms) with mild cross traffic;
    inter-continental paths long (150 ms) with heavy bursty cross traffic
    and a little stochastic loss, as on real transoceanic routes.
    """
    duration = 30.0 if quick else 60.0
    if kind == "intra":
        link = LinkConfig(bandwidth_mbps=900.0, rtt_ms=35.0, buffer_bdp=1.5,
                          random_loss=0.0001)
    else:
        link = LinkConfig(bandwidth_mbps=800.0, rtt_ms=150.0, buffer_bdp=1.5,
                          random_loss=0.0005)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          trace="wan",
                          trace_kwargs={"kind": kind, "seed": seed},
                          seed=seed, tick_s=0.001)


def fig19_scenario(cc: str, buffer_bdp: float, quick: bool = False,
                   seed: int = 0) -> ScenarioConfig:
    """App. B.1: 100 Mbps / 30 ms with buffer from 0.1 to 16 BDP."""
    duration = 20.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                      buffer_bdp=buffer_bdp)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig20_scenario(cc: str, quick: bool = False, seed: int = 0,
                   ) -> ScenarioConfig:
    """App. B.2: satellite link — 42 Mbps, 800 ms, 1 BDP, 0.74% loss."""
    duration = 60.0 if quick else 100.0
    link = LinkConfig(bandwidth_mbps=42.0, rtt_ms=800.0, buffer_bdp=1.0,
                      random_loss=0.0074)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed, tick_s=0.005)


def fig22_scenario(cc: str, quick: bool = False, seed: int = 0,
                   ) -> ScenarioConfig:
    """App. B.4: high-speed WAN — 10 Gbps, 10 ms base RTT."""
    duration = 10.0 if quick else 30.0
    link = LinkConfig(bandwidth_mbps=10_000.0, rtt_ms=10.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed, tick_s=0.001)


#: Impairment kinds of the robustness family (see :mod:`repro.netsim.faults`).
ROBUSTNESS_KINDS = ("blackout", "flap", "loss-burst", "delay-spike",
                    "reorder", "mixed")


def robustness_scenario(cc: str, kind: str = "blackout", quick: bool = False,
                        seed: int = 0) -> ScenarioConfig:
    """Runtime-resilience family: a mid-run link impairment on the
    canonical 100 Mbps / 30 ms / 1 BDP bottleneck with two long flows.

    ``kind`` picks one impairment primitive (placed so the run contains a
    clean warm-up, the fault, and a recovery tail), or ``"mixed"`` for a
    seed-determined random :meth:`FaultSchedule.sample` schedule.  The
    schemes' throughput/latency during and after the fault window show
    how each recovers from conditions the training envelope never
    contains.
    """
    from ..netsim.faults import (
        BandwidthFlap,
        Blackout,
        DelaySpike,
        FaultSchedule,
        LossBurst,
        ReorderWindow,
    )

    duration = 30.0 if quick else 90.0
    start = duration * 0.4
    if kind == "blackout":
        faults = FaultSchedule((Blackout(start, duration * 0.03),))
    elif kind == "flap":
        faults = FaultSchedule((
            BandwidthFlap(start, duration * 0.2, factor=0.25),))
    elif kind == "loss-burst":
        faults = FaultSchedule((
            LossBurst(start, duration * 0.1, loss_rate=0.05),))
    elif kind == "delay-spike":
        faults = FaultSchedule((
            DelaySpike(start, duration * 0.1, extra_ms=80.0),))
    elif kind == "reorder":
        faults = FaultSchedule((
            ReorderWindow(start, duration * 0.15, rate=0.02),))
    elif kind == "mixed":
        faults = FaultSchedule.sample(duration, seed=seed + 1)
    else:
        raise ConfigError(
            f"unknown robustness kind {kind!r}; known: {ROBUSTNESS_KINDS}")
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc=cc, start_s=0.0),
             FlowConfig(cc=cc, start_s=0.0))
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed, faults=faults)


# ---------------------------------------------------------------------------
# Datacenter / asymmetric / adversarial families (beyond the paper).
# ---------------------------------------------------------------------------


def incast_scenario(cc: str, quick: bool = False, seed: int = 0,
                    n_senders: int = 8, n_elephants: int = 1,
                    period_s: float | None = None,
                    burst_s: float | None = None) -> ScenarioConfig:
    """Many-to-one incast: synchronized waves of short flows vs elephants.

    ``n_elephants`` long flows hold the 200 Mbps / 10 ms / 0.5 BDP
    bottleneck for the whole run; every ``period_s`` a wave of
    ``n_senders`` short flows (the "partition-aggregate" response
    pattern) starts simultaneously and lasts ``burst_s``.  The shallow
    buffer makes each wave a queue-buildup-and-overflow event — the
    regime where schemes differ most on both fairness (do the short
    flows get a share?) and efficiency (does the link stay busy between
    waves?).
    """
    if n_senders < 2:
        raise ConfigError(f"incast needs >= 2 senders, got {n_senders}")
    if n_elephants < 1:
        raise ConfigError(f"incast needs >= 1 elephant, got {n_elephants}")
    duration = 12.0 if quick else 36.0
    period = period_s if period_s is not None else 4.0
    burst = burst_s if burst_s is not None else period * 0.5
    if period <= 0 or burst <= 0 or burst > period:
        raise ConfigError(
            f"incast needs 0 < burst_s <= period_s, got burst={burst}, "
            f"period={period}")
    link = LinkConfig(bandwidth_mbps=200.0, rtt_ms=10.0, buffer_bdp=0.5)
    flows = [FlowConfig(cc=cc, start_s=0.0) for _ in range(n_elephants)]
    t = period * 0.5
    while t < duration - 1e-9:
        flows.extend(
            FlowConfig(cc=cc, start_s=t,
                       duration_s=min(burst, duration - t))
            for _ in range(n_senders))
        t += period
    return ScenarioConfig(link=link, flows=tuple(flows), duration_s=duration,
                          seed=seed, tick_s=0.001)


def asymmetric_rtt_scenario(cc: str, quick: bool = False, seed: int = 0,
                            n_flows: int = 4,
                            spread: float = 4.0) -> ScenarioConfig:
    """Same bottleneck, base RTTs evenly spread ``1x..spread x``.

    All flows start together on a 100 Mbps / 20 ms link; per-flow extra
    propagation delay spreads their base RTTs from 20 ms up to
    ``20 * spread`` ms (the buffer is one BDP of the *longest* RTT, as
    in Fig. 8).  Window-based schemes give short-RTT flows a large
    advantage here; the family quantifies how much of it each scheme
    claws back.
    """
    if n_flows < 2:
        raise ConfigError(f"asymmetric-rtt needs >= 2 flows, got {n_flows}")
    if not 1.0 <= spread <= 16.0:
        raise ConfigError(
            f"asymmetric-rtt spread must lie in [1, 16], got {spread}")
    duration = 20.0 if quick else 60.0
    base_ms = 20.0
    link = LinkConfig(
        bandwidth_mbps=100.0, rtt_ms=base_ms,
        buffer_packets=bdp_packets(100.0, base_ms * spread / 1e3))
    rtts = np.linspace(base_ms, base_ms * spread, n_flows)
    flows = tuple(FlowConfig(cc=cc, start_s=0.0,
                             extra_rtt_ms=float(r - base_ms))
                  for r in rtts)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def background_udp_scenario(cc: str, quick: bool = False, seed: int = 0,
                            n_flows: int = 2,
                            udp_fraction: float = 0.3) -> ScenarioConfig:
    """Unresponsive constant-rate cross traffic on the canonical link.

    ``n_flows`` flows of the evaluated scheme share 100 Mbps / 30 ms /
    1 BDP with a ``constant-rate`` blaster pinned at ``udp_fraction`` of
    capacity.  The blaster never backs off, so the controlled flows must
    model it as non-reacting load: the fair outcome is an even split of
    the *residual* capacity, and utilization should still approach 1.
    Fairness metrics exclude the blaster (see
    :data:`BACKGROUND_SCHEMES`).
    """
    if n_flows < 2:
        raise ConfigError(f"background-udp needs >= 2 flows, got {n_flows}")
    if not 0.0 < udp_fraction < 1.0:
        raise ConfigError(
            f"udp_fraction must lie in (0, 1), got {udp_fraction}")
    duration = 16.0 if quick else 48.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = tuple(FlowConfig(cc=cc, start_s=0.0) for _ in range(n_flows)) + (
        FlowConfig(cc="constant-rate", start_s=0.0,
                   cc_kwargs={"rate_mbps": udp_fraction
                              * link.bandwidth_mbps}),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


#: Bottleneck parameter ladders the fleet family draws from, per shard.
FLEET_BANDWIDTHS_MBPS = (50.0, 100.0, 200.0, 400.0)
FLEET_RTTS_MS = (10.0, 20.0, 30.0, 50.0, 80.0)
FLEET_BUFFER_BDPS = (0.5, 1.0, 2.0)

#: Hard cap on flows per fleet shard (the SoA kernel stays cache-friendly
#: well past this; the cap catches spec typos, not engine limits).
FLEET_MAX_FLOWS = 10_000


def fleet_shard_seed(seed: int, shard_index: int) -> int:
    """Derived seed of one fleet shard, as a stable 64-bit integer.

    Derived with a stable hash (not Python's salted ``hash``) so shard
    parameters are identical across processes and interpreter runs, and
    distinct shards never share a stream.  Quarantine messages quote
    this value alongside the fleet seed.
    """
    digest = hashlib.blake2b(
        f"fleet:{seed}:{shard_index}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _fleet_shard_rng(seed: int, shard_index: int) -> np.random.Generator:
    """Seed-disciplined RNG for one fleet shard's parameters."""
    return np.random.default_rng(fleet_shard_seed(seed, shard_index))


def fleet_scenario(cc: str, quick: bool = False, seed: int = 0,
                   n_flows: int = 25,
                   shard_index: int = 0) -> ScenarioConfig:
    """One shard of a fleet: an independent bottleneck with many flows.

    The fleet runner (:mod:`repro.fleet`) composes hundreds of these into
    one run — each shard an independent :class:`FluidNetwork` in its own
    worker.  ``(seed, shard_index)`` deterministically picks the shard's
    bottleneck from the ``FLEET_*`` ladders and spreads flow base RTTs
    ±25% around it, so a fleet is heterogeneous across shards but every
    shard is reproducible in isolation (the quarantine contract: a failed
    shard is re-runnable from its name and seeds alone).
    """
    if n_flows < 1:
        raise ConfigError(f"fleet shard needs >= 1 flow, got {n_flows}")
    if n_flows > FLEET_MAX_FLOWS:
        raise ConfigError(
            f"fleet shard flow count {n_flows} exceeds cap {FLEET_MAX_FLOWS}")
    if shard_index < 0:
        raise ConfigError(
            f"fleet shard_index must be >= 0, got {shard_index}")
    duration = 4.0 if quick else 12.0
    rng = _fleet_shard_rng(seed, shard_index)
    bandwidth = float(rng.choice(FLEET_BANDWIDTHS_MBPS))
    rtt_ms = float(rng.choice(FLEET_RTTS_MS))
    buffer_bdp = float(rng.choice(FLEET_BUFFER_BDPS))
    link = LinkConfig(bandwidth_mbps=bandwidth, rtt_ms=rtt_ms,
                      buffer_bdp=buffer_bdp,
                      name=f"fleet-{seed}-{shard_index}")
    extra = rng.uniform(-0.25, 0.25, size=n_flows) * rtt_ms
    flows = tuple(
        FlowConfig(cc=cc, start_s=0.0, extra_rtt_ms=float(max(0.0, e)))
        for e in extra)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


# ---------------------------------------------------------------------------
# Registry entries.  Builders keep their historical signatures; these
# adapters map them onto the uniform (cc, quick, seed, **params) calling
# convention.  Families that pin their scheme (fig1a is the Aurora
# motivation, fig1b the Vivace one) ignore ``cc`` and say so in their
# description.
# ---------------------------------------------------------------------------

register_family(
    "fig6", lambda cc, quick, seed: fig6_scenario(cc, quick=quick, seed=seed),
    description="§5.1.1 convergence: 3 staggered flows, 100 Mbps / 30 ms",
    tags=("paper", "convergence"))
register_family(
    "fig1a",
    lambda cc, quick, seed: fig1a_scenario(quick=quick, seed=seed),
    description="§2 motivation: two Aurora flows (pins cc=aurora)",
    tags=("paper", "pinned-cc"))
register_family(
    "fig1b",
    lambda cc, quick, seed, rtt_ms, theta0: fig1b_scenario(
        rtt_ms=rtt_ms, theta0=theta0, quick=quick, seed=seed),
    description="§2 motivation: three Vivace flows (pins cc=vivace)",
    params={"rtt_ms": 120.0, "theta0": 1.0}, tags=("paper", "pinned-cc"))
register_family(
    "fig8", lambda cc, quick, seed: fig8_scenario(cc, quick=quick, seed=seed),
    description="§5.1.2 RTT fairness: 5 flows, base RTTs 40-200 ms",
    tags=("paper", "fairness"))
register_family(
    "fig9",
    lambda cc, quick, seed, bandwidth_mbps, rtt_ms, n_flows: fig9_scenario(
        cc, bandwidth_mbps, rtt_ms, n_flows, quick=quick, seed=seed),
    description="§5.1.3 fairness grid cell: staggered flows on bw x RTT",
    params={"bandwidth_mbps": 100.0, "rtt_ms": 30.0, "n_flows": 4},
    tags=("paper", "fairness"))
register_family(
    "fig10",
    lambda cc, quick, seed, n_flows: fig10_scenario(
        cc, n_flows, quick=quick, seed=seed),
    description="§5.1.3 many flows: n simultaneous flows on 600 Mbps",
    params={"n_flows": 8}, tags=("paper", "fairness"))
register_family(
    "fig13",
    lambda cc, quick, seed: fig13_scenario(cc, quick=quick, seed=seed),
    description="§5.2 cellular: LTE capacity trace, deep buffer",
    tags=("paper", "trace"), packet_ok=False)
register_family(
    "fig14",
    lambda cc, quick, seed, n_cubic: fig14_scenario(
        cc, n_cubic, quick=quick, seed=seed),
    description="§5.3.1 TCP friendliness: one flow vs n CUBIC flows",
    params={"n_cubic": 3}, tags=("paper", "friendliness"))
register_family(
    "fig15",
    lambda cc, quick, seed, kind: fig15_scenario(
        cc, kind=kind, quick=quick, seed=seed),
    description="§5.3.2 WAN paths: traced intra/inter-continental routes",
    params={"kind": "intra"}, tags=("paper", "trace"), packet_ok=False)
register_family(
    "fig19",
    lambda cc, quick, seed, buffer_bdp: fig19_scenario(
        cc, buffer_bdp, quick=quick, seed=seed),
    description="App. B.1 buffer sweep: one flow, 0.1-16 BDP buffers",
    params={"buffer_bdp": 1.0}, tags=("paper",))
register_family(
    "fig20",
    lambda cc, quick, seed: fig20_scenario(cc, quick=quick, seed=seed),
    description="App. B.2 satellite: 42 Mbps / 800 ms / 0.74% loss",
    tags=("paper",))
register_family(
    "fig22",
    lambda cc, quick, seed: fig22_scenario(cc, quick=quick, seed=seed),
    description="App. B.4 high-speed WAN: 10 Gbps / 10 ms",
    tags=("paper",))
register_family(
    "robustness",
    lambda cc, quick, seed, kind: robustness_scenario(
        cc, kind=kind, quick=quick, seed=seed),
    description="mid-run link impairment (blackout/flap/loss-burst/"
                "delay-spike/reorder/mixed) with two long flows",
    params={"kind": "blackout"}, tags=("faults",))
register_family(
    "incast",
    lambda cc, quick, seed, n_senders, n_elephants, period_s, burst_s:
        incast_scenario(cc, quick=quick, seed=seed, n_senders=n_senders,
                        n_elephants=n_elephants, period_s=period_s,
                        burst_s=burst_s),
    description="datacenter many-to-one: waves of synchronized short "
                "flows vs long elephants on a shallow buffer",
    params={"n_senders": 8, "n_elephants": 1, "period_s": None,
            "burst_s": None},
    tags=("datacenter",))
register_family(
    "asymmetric-rtt",
    lambda cc, quick, seed, n_flows, spread: asymmetric_rtt_scenario(
        cc, quick=quick, seed=seed, n_flows=n_flows, spread=spread),
    description="one bottleneck, per-flow base RTTs spread 1x-4x "
                "(RTT-unfairness stress)",
    params={"n_flows": 4, "spread": 4.0}, tags=("asymmetric",))
register_family(
    "fleet",
    lambda cc, quick, seed, n_flows, shard_index: fleet_scenario(
        cc, quick=quick, seed=seed, n_flows=n_flows,
        shard_index=shard_index),
    description="one fleet shard: a seed-varied bottleneck with many "
                "flows (composed at scale by repro.fleet)",
    params={"n_flows": 25, "shard_index": 0}, tags=("fleet", "scale"))
register_family(
    "background-udp",
    lambda cc, quick, seed, n_flows, udp_fraction: background_udp_scenario(
        cc, quick=quick, seed=seed, n_flows=n_flows,
        udp_fraction=udp_fraction),
    description="unresponsive constant-rate cross traffic at a fixed "
                "fraction of capacity (adversarial non-reacting load)",
    params={"n_flows": 2, "udp_fraction": 0.3}, tags=("adversarial",))
