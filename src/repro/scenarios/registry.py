"""Scenario registry: name -> parameterized ScenarioConfig generator.

Every workload family this repository can express — the paper's ``fig*``
evaluation scenarios, the robustness (fault-injection) family, and the
datacenter/asymmetric/adversarial families — registers itself here under
a stable name with metadata, so that schemes x families x faults sweeps
compose in one place instead of each benchmark hand-rolling its own
constructors.

The contract of a registered family:

* ``build(name, cc=..., quick=..., seed=..., **params)`` returns a fully
  validated :class:`~repro.config.ScenarioConfig`.
* **Seed discipline** — the builder is a pure function of its arguments:
  the same ``(cc, quick, seed, params)`` always yields an identical
  config, and the supplied seed is embedded as ``config.seed`` (the
  registry enforces this after every build).  All randomness therefore
  lives in the engines, keyed by the scenario seed.
* ``quick=True`` shrinks time axes only, never the network parameters,
  so CI subsets stress the same regime the full runs do.
* Unknown family names and unknown parameter names raise a typed
  :class:`~repro.errors.ConfigError` listing the known values.

Introspection: :func:`available_families` lists names,
:func:`get_family` returns the :class:`ScenarioFamily` record, and
:func:`describe_family` renders a human-readable card (the ``repro
info`` CLI prints one per family).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from ..config import ScenarioConfig
from ..errors import ConfigError

_FAMILIES: dict[str, "ScenarioFamily"] = {}


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered workload family.

    ``builder`` is called as ``builder(cc=..., quick=..., seed=...,
    **params)`` and must honour the seed discipline documented in the
    module docstring.  ``params`` maps every extra tunable the family
    accepts to its default value; callers may override any subset and
    nothing else.  ``packet_ok`` marks families the discrete-event
    packet engine can run (families driving a capacity trace cannot).
    """

    name: str
    builder: Callable[..., ScenarioConfig] = field(repr=False)
    description: str = ""
    params: Mapping[str, object] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    packet_ok: bool = True

    def build(self, cc: str = "cubic", quick: bool = False, seed: int = 0,
              **params) -> ScenarioConfig:
        """Build one scenario of this family (the registry entry point)."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ConfigError(
                f"unknown parameter(s) {unknown} for scenario family "
                f"{self.name!r}; known: {sorted(self.params)}")
        merged = {**self.params, **params}
        config = self.builder(cc=cc, quick=quick, seed=seed, **merged)
        if not isinstance(config, ScenarioConfig):
            raise ConfigError(
                f"family {self.name!r} built a "
                f"{type(config).__name__}, not a ScenarioConfig")
        if config.seed != seed:
            raise ConfigError(
                f"family {self.name!r} broke seed discipline: asked for "
                f"seed {seed}, built seed {config.seed}")
        return config

    def describe(self) -> str:
        """A human-readable card: description, parameters, tags."""
        lines = [f"{self.name}: {self.description}"]
        if self.params:
            defaults = ", ".join(f"{k}={v!r}"
                                 for k, v in sorted(self.params.items()))
            lines.append(f"  parameters: {defaults}")
        if self.tags:
            lines.append(f"  tags: {', '.join(self.tags)}")
        lines.append(f"  engines: fluid{', packet' if self.packet_ok else ''}")
        return "\n".join(lines)


def register_family(name: str, builder: Callable[..., ScenarioConfig], *,
                    description: str = "",
                    params: Mapping[str, object] | None = None,
                    tags: tuple[str, ...] = (),
                    packet_ok: bool = True) -> ScenarioFamily:
    """Register a family under ``name``; duplicate names are rejected."""
    if name in _FAMILIES:
        raise ConfigError(f"scenario family {name!r} is already registered")
    family = ScenarioFamily(name=name, builder=builder,
                            description=description,
                            params=dict(params or {}), tags=tuple(tags),
                            packet_ok=packet_ok)
    _FAMILIES[name] = family
    return family


def available_families() -> tuple[str, ...]:
    """Names of every registered family, sorted."""
    return tuple(sorted(_FAMILIES))


def get_family(name: str) -> ScenarioFamily:
    """Look a family up by name; unknown names raise a typed error."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario family {name!r}; known: "
            f"{list(available_families())}") from None


def build_scenario(name: str, cc: str = "cubic", quick: bool = False,
                   seed: int = 0, **params) -> ScenarioConfig:
    """Build one scenario of the named family (module-level convenience)."""
    return get_family(name).build(cc=cc, quick=quick, seed=seed, **params)


def describe_family(name: str) -> str:
    """The human-readable card of one family."""
    return get_family(name).describe()


def describe_families() -> str:
    """Cards for every registered family, one per line group."""
    return "\n".join(get_family(name).describe()
                     for name in available_families())
