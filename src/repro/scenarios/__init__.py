"""Scenario registry and workload families.

Importing this package registers every built-in family (the module-level
``register_family`` calls in :mod:`repro.scenarios.families` run at
import time); :func:`build_scenario` / :func:`available_families` are
the main entry points.
"""

from .families import (
    BACKGROUND_SCHEMES,
    DEFAULT_SCHEMES,
    ROBUSTNESS_KINDS,
    asymmetric_rtt_scenario,
    background_udp_scenario,
    fig1a_scenario,
    fig1b_scenario,
    fig6_scenario,
    fig8_scenario,
    fig9_scenario,
    fig10_scenario,
    fig11_topology,
    fig13_scenario,
    fig14_scenario,
    fig15_scenario,
    fig19_scenario,
    fig20_scenario,
    fig22_scenario,
    fleet_scenario,
    fleet_shard_seed,
    incast_scenario,
    robustness_scenario,
)
from .registry import (
    ScenarioFamily,
    available_families,
    build_scenario,
    describe_families,
    describe_family,
    get_family,
    register_family,
)

__all__ = [
    "BACKGROUND_SCHEMES",
    "DEFAULT_SCHEMES",
    "ROBUSTNESS_KINDS",
    "ScenarioFamily",
    "asymmetric_rtt_scenario",
    "available_families",
    "background_udp_scenario",
    "build_scenario",
    "describe_families",
    "describe_family",
    "fig1a_scenario",
    "fig1b_scenario",
    "fig6_scenario",
    "fig8_scenario",
    "fig9_scenario",
    "fig10_scenario",
    "fig11_topology",
    "fig13_scenario",
    "fig14_scenario",
    "fig15_scenario",
    "fig19_scenario",
    "fig20_scenario",
    "fig22_scenario",
    "fleet_scenario",
    "fleet_shard_seed",
    "get_family",
    "incast_scenario",
    "register_family",
    "robustness_scenario",
]
