"""Sharded fleet runner: thousands of flows across many bottlenecks.

Execution model
---------------
Each shard is an independent :class:`~repro.netsim.fluid.FluidNetwork`
(built from the ``fleet`` scenario family) driven to completion with the
vectorized ``advance_block`` kernel *inside one* :func:`repro.parallel.
parallel_map` dispatch.  The shard's state never crosses a process
boundary: all synchronization epochs of a shard run back-to-back in the
same worker invocation (worker-resident state, one pickle round-trip per
shard), and only fixed-size sufficient statistics come back — per-flow
goodput sums, sums of squares, counts, and capacity, folded into a
:class:`~repro.metrics.fairness.FairnessAccumulator` per shard plus one
aggregate goodput number per epoch.

Determinism
-----------
Shard parameters derive from ``(seed, shard_index)`` via a stable hash,
each shard is computed entirely within one worker, and the parent merges
shard accumulators in shard-index order (``parallel_map`` returns
results in payload order) with plain float adds — so the aggregate is
bit-identical for any worker count, including the serial ``workers=1``
fallback.

Quarantine
----------
A shard that raises is captured *inside* the worker and returned as a
failure record instead of poisoning the pool: the parent emits a
:class:`~repro.errors.ShardFailureWarning` naming the shard index, the
fleet seed, and the derived shard seed (enough to rebuild the shard in
isolation via ``build_scenario("fleet", seed=..., shard_index=...)``),
then aggregates the healthy shards.  ``strict=True`` upgrades the first
failure to a :class:`~repro.errors.SimulationError`; a fleet whose every
shard failed always raises.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from ..errors import ShardFailureWarning, SimulationError
from ..metrics.fairness import FairnessAccumulator
from ..parallel import parallel_map, resolve_workers
from ..units import pps_to_mbps
from .spec import FleetSpec

#: Fields of a fleet fingerprint that carry wall-clock timing and must
#: be ignored by equivalence comparisons (everything else is exact).
TIMING_FIELDS = ("elapsed_s", "workers")


def _run_shard(payload: dict) -> dict:
    """Worker body: run one shard to completion, return its statistics.

    Exceptions are captured and returned as a failure record — the
    quarantine contract — so one bad shard cannot kill the dispatch.
    Module-level (not a closure) for spawn-context picklability.
    """
    spec = FleetSpec.from_dict(payload["spec"])
    index = payload["index"]
    started = time.perf_counter()
    try:
        return _run_shard_inner(spec, index, started)
    except Exception as exc:  # noqa: BLE001 — quarantine, not crash
        return {
            "ok": False,
            "index": index,
            "seed": spec.seed,
            "shard_seed": spec.shard_seed(index),
            "error": type(exc).__name__,
            "message": str(exc),
            "elapsed_s": time.perf_counter() - started,
        }


def _run_shard_inner(spec: FleetSpec, index: int, started: float) -> dict:
    from ..env.multiflow import build_driver
    from ..scenarios import build_scenario

    scenario = build_scenario("fleet", cc=spec.cc, quick=spec.quick,
                              seed=spec.seed,
                              n_flows=spec.flows_per_shard,
                              shard_index=index)
    driver = build_driver(scenario)
    duration = scenario.duration_s
    boundaries = [duration * (e + 1) / spec.epochs for e in range(spec.epochs)]
    engine = driver.engine

    def delivered_by_index() -> dict[int, float]:
        return {rf.index: engine.flow_delivered_pkts(rf.engine_id)
                for rf in driver.running_flows}

    epoch_goodput_mbps = []
    prev = {i: 0.0 for i in range(len(scenario.flows))}
    prev_t = 0.0
    alive = True
    for boundary in boundaries:
        # All epochs run in this same invocation: the shard's engine,
        # monitors, and controllers stay worker-resident across the
        # boundary — an epoch is a statistics snapshot, not a dispatch.
        while alive and driver.now < boundary - 1e-12:
            alive = driver.step_block()
        cur = delivered_by_index()
        span = max(driver.now, prev_t) - prev_t
        delta = sum(cur.values()) - sum(prev.get(i, 0.0) for i in cur)
        epoch_goodput_mbps.append(
            pps_to_mbps(delta / span) if span > 0 else 0.0)
        prev, prev_t = cur, max(driver.now, prev_t)
    while alive:
        alive = driver.step_block()

    final = delivered_by_index()
    span = driver.now if driver.now > 0 else duration
    goodputs = [pps_to_mbps(final.get(i, 0.0) / span)
                for i in range(len(scenario.flows))]
    acc = FairnessAccumulator()
    acc.add(goodputs, capacity=scenario.link.bandwidth_mbps)
    ticks = int(round(driver.now / scenario.tick_s))
    return {
        "ok": True,
        "index": index,
        "seed": spec.seed,
        "shard_seed": spec.shard_seed(index),
        "n_flows": len(scenario.flows),
        "ticks": ticks,
        "sim_s": driver.now,
        "bandwidth_mbps": scenario.link.bandwidth_mbps,
        "rtt_ms": scenario.link.rtt_ms,
        "stats": acc.as_dict(),
        "epoch_goodput_mbps": epoch_goodput_mbps,
        "elapsed_s": time.perf_counter() - started,
    }


def _describe_shard(payload: dict) -> str:
    spec = payload["spec"]
    return (f"fleet shard {payload['index']} "
            f"(seed={spec['seed']}, flows={spec['flows_per_shard']})")


@dataclass
class FleetResult:
    """Aggregate of one fleet run.

    ``stats`` is the merged :class:`FairnessAccumulator` over every
    healthy shard's flows; ``shards``/``failures`` carry the per-shard
    records (sufficient statistics only — no per-tick traces).
    """

    spec: FleetSpec
    stats: FairnessAccumulator
    shards: list[dict] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    workers: int = 1
    elapsed_s: float = 0.0

    @property
    def jain(self) -> float:
        return self.stats.jain()

    @property
    def utilization(self) -> float:
        return self.stats.utilization()

    @property
    def total_flows(self) -> int:
        return self.stats.count

    @property
    def total_ticks(self) -> int:
        return sum(s["ticks"] for s in self.shards)

    @property
    def flow_ticks(self) -> int:
        """Work metric: sum over shards of flows x ticks simulated."""
        return sum(s["n_flows"] * s["ticks"] for s in self.shards)

    def throughput(self) -> dict:
        """Simulation rates over the parent's wall-clock."""
        wall = max(self.elapsed_s, 1e-9)
        return {
            "flows_per_wall_s": self.total_flows / wall,
            "flow_ticks_per_wall_s": self.flow_ticks / wall,
            "ticks_per_wall_s": self.total_ticks / wall,
        }

    def fingerprint(self) -> dict:
        """Everything the equivalence contract covers, timing stripped.

        Two runs of the same spec must produce *equal* fingerprints for
        any worker count (bit-identical floats — the dict is compared
        with ``==``, no tolerance).
        """
        def strip(record: dict) -> dict:
            return {k: v for k, v in record.items()
                    if k not in TIMING_FIELDS}

        return {
            "spec": self.spec.as_dict(),
            "stats": self.stats.as_dict(),
            "jain": self.jain if self.stats.count else None,
            "utilization": (self.utilization
                            if self.stats.capacity > 0 else None),
            "shards": [strip(s) for s in self.shards],
            "failures": [strip(f) for f in self.failures],
        }


def run_fleet(spec: FleetSpec, *, workers: int | None = None,
              progress=None, strict: bool = False) -> FleetResult:
    """Run every shard of ``spec`` and merge their statistics.

    ``workers`` follows :func:`repro.parallel.resolve_workers`
    (argument, then ``REPRO_WORKERS``, then serial).  ``progress`` is
    forwarded to :func:`parallel_map` as the per-shard completion
    callback ``(done, total, index, record)``.  ``strict=True`` raises
    on the first quarantined shard instead of warning.
    """
    n_workers = resolve_workers(workers)
    payloads = [{"spec": spec.as_dict(), "index": i}
                for i in range(spec.n_shards)]
    started = time.perf_counter()
    records = parallel_map(_run_shard, payloads, workers=n_workers,
                           progress=progress, describe=_describe_shard)
    elapsed = time.perf_counter() - started

    stats = FairnessAccumulator()
    shards, failures = [], []
    for record in records:  # payload order == shard-index order
        if record.get("ok"):
            shards.append(record)
            stats.merge(FairnessAccumulator.from_dict(record["stats"]))
        else:
            failures.append(record)
            message = (
                f"fleet shard {record['index']} quarantined "
                f"(fleet seed {record['seed']}, shard seed "
                f"{record['shard_seed']}): {record['error']}: "
                f"{record['message']}")
            if strict:
                raise SimulationError(message)
            warnings.warn(message, ShardFailureWarning, stacklevel=2)
    if not shards:
        raise SimulationError(
            f"every fleet shard failed ({len(failures)} of "
            f"{spec.n_shards}); first: {failures[0]['error']}: "
            f"{failures[0]['message']}")
    return FleetResult(spec=spec, stats=stats, shards=shards,
                       failures=failures, workers=n_workers,
                       elapsed_s=elapsed)


def check_equivalence(spec: FleetSpec | None = None,
                      workers: int = 2) -> dict:
    """Serial-vs-sharded equivalence: the fleet's determinism contract.

    Runs ``spec`` (a small pinned fleet by default) once with
    ``workers=1`` and once through the process pool, and compares the
    timing-stripped fingerprints for *exact* equality.  Returns a
    verdict block suitable for embedding in ``BENCH_fleet.json``.
    """
    if spec is None:
        spec = FleetSpec(cc="cubic", n_shards=4, flows_per_shard=8,
                         seed=7, quick=True, epochs=2)
    serial = run_fleet(spec, workers=1).fingerprint()
    sharded = run_fleet(spec, workers=max(2, workers)).fingerprint()
    identical = serial == sharded
    verdict = {
        "spec": spec.as_dict(),
        "workers_compared": [1, max(2, workers)],
        "verdict": "identical" if identical else "divergent",
        "passed": identical,
    }
    if not identical:
        diverging = sorted(
            k for k in set(serial) | set(sharded)
            if serial.get(k) != sharded.get(k))
        verdict["diverging_fields"] = diverging
    return verdict
