"""Fleet-scale sharded simulation: thousands of flows, many bottlenecks.

:class:`FleetSpec` describes the fleet (shard count, flows per shard,
seeds); :func:`run_fleet` partitions it into independent
``FluidNetwork`` shards executed inside :mod:`repro.parallel` workers
and merges per-shard sufficient statistics into one fairness /
utilization aggregate; :func:`check_equivalence` pins the bit-identical
any-worker-count contract.  ``repro bench fleet`` turns all of it into
the scaling headline (``BENCH_fleet.json``).
"""

from .runner import FleetResult, check_equivalence, run_fleet
from .spec import MAX_SHARDS, MAX_TOTAL_FLOWS, FleetSpec

__all__ = [
    "FleetResult",
    "FleetSpec",
    "MAX_SHARDS",
    "MAX_TOTAL_FLOWS",
    "check_equivalence",
    "run_fleet",
]
