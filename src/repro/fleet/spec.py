"""Fleet specifications: how many shards, how many flows, which seeds.

A fleet is a set of *independent* shards — each one a single-bottleneck
scenario built by the ``fleet`` family (:func:`repro.scenarios.
fleet_scenario`) with its own seed-derived bottleneck parameters.  The
spec is the unit of reproducibility: a :class:`FleetSpec` plus a worker
count fully determines the run, and any single shard can be rebuilt in
isolation from ``(seed, shard_index)`` alone (the quarantine contract).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from ..scenarios.families import FLEET_MAX_FLOWS, fleet_shard_seed

#: Hard caps catching spec typos before a run allocates anything.
MAX_SHARDS = 4096
MAX_TOTAL_FLOWS = 1_000_000


@dataclass(frozen=True)
class FleetSpec:
    """A fleet of ``n_shards`` independent bottlenecks, each carrying
    ``flows_per_shard`` flows of scheme ``cc``.

    ``epochs`` sets how many synchronization epochs the run is divided
    into: shards snapshot their sufficient statistics at each epoch
    boundary (the shard state stays worker-resident across boundaries —
    epochs shape the reporting granularity, not the dispatch count).
    ``quick`` follows the scenario registry's quick-shrinks-time-only
    contract.
    """

    cc: str = "cubic"
    n_shards: int = 4
    flows_per_shard: int = 25
    seed: int = 0
    quick: bool = True
    epochs: int = 4

    def __post_init__(self):
        if not isinstance(self.cc, str) or not self.cc:
            raise ConfigError(f"fleet cc must be a scheme name, got {self.cc!r}")
        if not isinstance(self.n_shards, int) or isinstance(self.n_shards, bool):
            raise ConfigError(
                f"n_shards must be an integer, got {self.n_shards!r}")
        if not 1 <= self.n_shards <= MAX_SHARDS:
            raise ConfigError(
                f"n_shards must lie in [1, {MAX_SHARDS}], got {self.n_shards}")
        if not isinstance(self.flows_per_shard, int) or \
                isinstance(self.flows_per_shard, bool):
            raise ConfigError(
                f"flows_per_shard must be an integer, got "
                f"{self.flows_per_shard!r}")
        if not 1 <= self.flows_per_shard <= FLEET_MAX_FLOWS:
            raise ConfigError(
                f"flows_per_shard must lie in [1, {FLEET_MAX_FLOWS}], "
                f"got {self.flows_per_shard}")
        total = self.n_shards * self.flows_per_shard
        if total > MAX_TOTAL_FLOWS:
            raise ConfigError(
                f"fleet of {self.n_shards} x {self.flows_per_shard} = "
                f"{total} flows exceeds the {MAX_TOTAL_FLOWS}-flow cap")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ConfigError(
                f"fleet seed must be a non-negative integer, got {self.seed!r}")
        if not isinstance(self.epochs, int) or isinstance(self.epochs, bool) \
                or self.epochs < 1:
            raise ConfigError(
                f"epochs must be a positive integer, got {self.epochs!r}")

    @property
    def total_flows(self) -> int:
        return self.n_shards * self.flows_per_shard

    def shard_seed(self, shard_index: int) -> int:
        """Derived seed of shard ``shard_index`` (stable across runs)."""
        if not 0 <= shard_index < self.n_shards:
            raise ConfigError(
                f"shard_index must lie in [0, {self.n_shards}), "
                f"got {shard_index}")
        return fleet_shard_seed(self.seed, shard_index)

    def with_(self, **changes) -> "FleetSpec":
        """A copy with fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {"cc": self.cc, "n_shards": self.n_shards,
                "flows_per_shard": self.flows_per_shard, "seed": self.seed,
                "quick": self.quick, "epochs": self.epochs}

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetSpec":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"fleet spec payload must be a dict, got "
                f"{type(payload).__name__}")
        known = {"cc", "n_shards", "flows_per_shard", "seed", "quick",
                 "epochs"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown fleet spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}")
        return cls(**payload)
