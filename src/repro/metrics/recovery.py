"""Post-fault recovery metrics (the robustness report's measurement core).

PR 2 made link impairments injectable (:mod:`repro.netsim.faults`); this
module measures how a congestion-control scheme *recovers* from them.  All
metrics are computed from the per-MTP flow traces of a
:class:`~repro.env.multiflow.ScenarioResult`, so they work identically for
fluid-engine and packet-engine runs:

* **recovery time** — seconds from the instant the fault clears until the
  aggregate delivered throughput re-attains ``threshold`` x the pre-fault
  steady state (and holds it for ``hold_s``);
* **Jain re-convergence time** — seconds from fault clearance until the
  active flows' Jain index again sustains ``jain_threshold``;
* **peak RTT overshoot** — how far latency spiked above the pre-fault mean
  during or after the fault (queue drain after a blackout, the delay spike
  itself, loss-recovery dips);
* **goodput lost** — the integral of throughput shortfall against the
  pre-fault baseline from fault onset until recovery (or trace end);
* a **never-recovered sentinel** — :data:`NEVER_RECOVERED` (``inf``) when
  the threshold is never re-attained inside the trace, so aggregation can
  count failures instead of averaging a bogus number.

Edge windows are well-defined by construction: a fault at ``t = 0`` has no
pre-fault window, so the baseline falls back to the link capacity; a fault
extending past the episode end has no post-fault window and yields the
sentinel; a fault shorter than one MTP may cover no trace sample at all and
simply measures (near-)instant recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..env.multiflow import ScenarioResult
from ..errors import ConfigError
from .convergence import _smooth

#: Sentinel recovery time: the trace never re-attained the target.
NEVER_RECOVERED = float("inf")

#: Default fraction of the pre-fault steady state that counts as recovered.
DEFAULT_THRESHOLD = 0.9

#: Default Jain-index level that counts as re-converged.
DEFAULT_JAIN_THRESHOLD = 0.9


@dataclass(frozen=True)
class RecoveryReport:
    """Recovery outcome of one scenario run under one fault window.

    ``recovery_time_s`` and ``jain_reconvergence_s`` are
    :data:`NEVER_RECOVERED` when the respective criterion was never met;
    ``jain_reconvergence_s`` is ``nan`` for single-flow runs (no fairness
    to re-converge).  All other fields are always finite.
    """

    fault_start_s: float
    fault_end_s: float
    baseline_mbps: float
    threshold: float
    recovery_time_s: float
    jain_reconvergence_s: float
    peak_rtt_overshoot_ms: float
    goodput_lost_mbit: float

    @property
    def recovered(self) -> bool:
        return np.isfinite(self.recovery_time_s)

    def as_dict(self) -> dict[str, float]:
        return {
            "fault_start_s": self.fault_start_s,
            "fault_end_s": self.fault_end_s,
            "baseline_mbps": self.baseline_mbps,
            "threshold": self.threshold,
            "recovery_time_s": self.recovery_time_s,
            "jain_reconvergence_s": self.jain_reconvergence_s,
            "peak_rtt_overshoot_ms": self.peak_rtt_overshoot_ms,
            "goodput_lost_mbit": self.goodput_lost_mbit,
            "recovered": bool(self.recovered),
        }


# ----------------------------------------------------------------------
# Pure trace functions (property-tested in tests/metrics/test_recovery.py)
# ----------------------------------------------------------------------

def recovery_time_s(times, values, fault_end_s: float, target: float,
                    hold_s: float = 0.0) -> float:
    """Seconds after ``fault_end_s`` until ``values`` re-attains ``target``.

    Scans the samples at or after the fault clears and returns the offset
    of the first one at which ``values >= target`` holds continuously for
    ``hold_s`` seconds (every sample inside the hold window must qualify;
    the last qualifying sample's window is allowed to run off the end of
    the trace).  Returns :data:`NEVER_RECOVERED` when no such sample
    exists — including when the fault outlives the trace entirely.

    The function is a pure function of ``(times - fault_end_s, values)``,
    so it is invariant under a uniform time shift of the trace, and it is
    monotone (non-decreasing) in ``target``: asking for a fuller recovery
    can never make recovery look faster.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ConfigError("times and values must have matching shapes")
    if hold_s < 0:
        raise ConfigError("hold window must be >= 0")
    if t.size == 0:
        return NEVER_RECOVERED
    post = np.where(t >= fault_end_s)[0]
    if post.size == 0:
        return NEVER_RECOVERED
    ok = v >= target
    for j in post:
        if not ok[j]:
            continue
        window = (t >= t[j]) & (t <= t[j] + hold_s)
        if ok[window].all():
            return float(t[j] - fault_end_s)
    return NEVER_RECOVERED


def steady_state_mbps(times, values, fault_start_s: float,
                      warmup_s: float = 2.0,
                      fallback: float = float("nan")) -> float:
    """Mean of ``values`` over the pre-fault window ``[warmup_s, start)``.

    Drops the first ``warmup_s`` seconds (slow start / ramp-up).  When the
    fault begins before any usable sample — a fault scheduled at ``t = 0``
    — the whole pre-fault window is empty and ``fallback`` is returned, so
    callers can substitute a capacity-derived baseline instead of dividing
    by an empty mean.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    keep = (t >= warmup_s) & (t < fault_start_s)
    if not keep.any():
        # Relax the warmup before giving up: a fault early in the run
        # should still measure against whatever clean samples exist.
        keep = t < fault_start_s
    if not keep.any():
        return float(fallback)
    return float(np.mean(v[keep]))


# ----------------------------------------------------------------------
# Scenario-level report
# ----------------------------------------------------------------------

def _fault_window(faults) -> tuple[float, float]:
    events = getattr(faults, "events", None)
    if not events:
        raise ConfigError("recovery metrics need a non-empty fault schedule")
    return min(e.start_s for e in events), max(e.end_s for e in events)


def recovery_report(result: ScenarioResult, faults,
                    threshold: float = DEFAULT_THRESHOLD,
                    jain_threshold: float = DEFAULT_JAIN_THRESHOLD,
                    grid_s: float = 0.1, warmup_s: float = 2.0,
                    hold_s: float = 0.5,
                    smooth_s: float = 0.3) -> RecoveryReport:
    """Measure one run's recovery from the faults it ran under.

    ``faults`` is the :class:`~repro.netsim.faults.FaultSchedule` the
    scenario was executed with; the fault window spans from the first
    event's start to the last event's end (composite schedules are judged
    as one disturbance).
    """
    if not 0 < threshold <= 1:
        raise ConfigError("recovery threshold must lie in (0, 1]")
    if not 0 < jain_threshold <= 1:
        raise ConfigError("jain threshold must lie in (0, 1]")
    fault_start, fault_end = _fault_window(faults)

    times, matrix, active = result.throughput_matrix(grid_s)
    total = (matrix * active).sum(axis=0)
    width = max(int(round(smooth_s / grid_s)), 1)
    smoothed = _smooth(total, width)

    baseline = steady_state_mbps(times, smoothed, fault_start,
                                 warmup_s=warmup_s,
                                 fallback=result.bottleneck_mbps)
    target = threshold * baseline
    t_rec = recovery_time_s(times, smoothed, fault_end, target,
                            hold_s=hold_s)

    jt, jv = result.jain_series(grid_s)
    if jt.size == 0:
        t_jain = float("nan")  # single-flow run: nothing to re-converge
    else:
        t_jain = recovery_time_s(jt, _smooth(jv, width), fault_end,
                                 jain_threshold, hold_s=hold_s)

    # Latency overshoot: worst RTT seen from fault onset onwards, against
    # the pre-fault mean (base RTT when the fault starts at t=0).
    pre_rtts, post_peak = [], 0.0
    for flow in result.flows:
        ft = np.asarray(flow.times, dtype=float)
        fr = np.asarray(flow.rtt_s, dtype=float)
        pre = fr[(ft >= min(warmup_s, fault_start / 2.0))
                 & (ft < fault_start)]
        if pre.size:
            pre_rtts.append(float(np.mean(pre)))
        after = fr[ft >= fault_start]
        if after.size:
            post_peak = max(post_peak, float(np.max(after)))
    pre_rtt = float(np.mean(pre_rtts)) if pre_rtts else result.base_rtt_s
    overshoot_ms = max(post_peak - pre_rtt, 0.0) * 1e3 if post_peak else 0.0

    # Goodput shortfall against the baseline, from fault onset until the
    # recovery instant (or trace end when the run never recovered).
    if np.isfinite(t_rec):
        lost_until = fault_end + t_rec
    else:
        lost_until = result.duration_s
    in_window = (times >= fault_start) & (times <= lost_until)
    shortfall = np.clip(baseline - total[in_window], 0.0, None)
    goodput_lost = float(shortfall.sum() * grid_s)  # Mbps x s = Mbit

    return RecoveryReport(
        fault_start_s=fault_start,
        fault_end_s=fault_end,
        baseline_mbps=baseline,
        threshold=threshold,
        recovery_time_s=t_rec,
        jain_reconvergence_s=t_jain,
        peak_rtt_overshoot_ms=overshoot_ms,
        goodput_lost_mbit=goodput_lost,
    )
