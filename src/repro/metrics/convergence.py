"""Convergence-speed and stability metrics (§5.2).

The paper defines:

* **convergence time** — from a flow event (arrival or departure) to the
  time the affected flows reach a sending rate within ±10% of the ideal
  fair share under the new flow population;
* **stability** — the standard deviation of the newly arrived flow's
  throughput after it has converged.

Both are computed here from a :class:`~repro.env.multiflow.ScenarioResult`
resampled onto a uniform grid, with a short smoothing window so per-MTP
measurement noise does not mask macroscopic convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..env.multiflow import ScenarioResult
from ..errors import ConfigError

ARRIVAL = "arrival"
DEPARTURE = "departure"


@dataclass(frozen=True)
class FlowEvent:
    """A change in the set of active flows."""

    time_s: float
    kind: str
    flow_index: int
    n_active_after: int


@dataclass(frozen=True)
class EventConvergence:
    """Convergence outcome for one flow event."""

    event: FlowEvent
    fair_share_mbps: float
    convergence_time_s: float | None
    stability_mbps: float | None

    @property
    def converged(self) -> bool:
        return self.convergence_time_s is not None


def flow_events(result: ScenarioResult) -> list[FlowEvent]:
    """Arrival/departure events, sorted by time (excluding t=0 arrivals of
    the very first flow, which have no incumbent to converge against)."""
    raw: list[tuple[float, str, int]] = []
    for i, flow in enumerate(result.flows):
        raw.append((flow.start_s, ARRIVAL, i))
        if flow.end_s < result.duration_s:
            raw.append((flow.end_s, DEPARTURE, i))
    raw.sort(key=lambda e: (e[0], e[1] == ARRIVAL))
    events = []
    active = 0
    for t, kind, idx in raw:
        active += 1 if kind == ARRIVAL else -1
        if active >= 2 or (kind == DEPARTURE and active >= 1):
            events.append(FlowEvent(time_s=t, kind=kind, flow_index=idx,
                                    n_active_after=active))
    return events


def _smooth(series: np.ndarray, width: int) -> np.ndarray:
    if width <= 1:
        return series
    kernel = np.ones(width) / width
    return np.convolve(series, kernel, mode="same")


def convergence_report(result: ScenarioResult, tolerance: float = 0.10,
                       hold_s: float = 1.0, grid_s: float = 0.1,
                       smooth_s: float = 0.3) -> list[EventConvergence]:
    """Evaluate every flow event in a run.

    For each event, the ideal fair share is ``capacity / n_active``.  For
    an *arrival*, the convergence time is the first instant at which the
    arriving flow's smoothed throughput stays within ``tolerance`` of the
    fair share for ``hold_s`` seconds (the paper's "time from flow events
    to the time when it reaches a sending rate within +-10% of its ideal
    fair share"); for a *departure* every remaining flow must reach the
    new fair share.  Stability is the std-dev of the tracked flow's
    throughput from convergence until the next event.
    """
    if not 0 < tolerance < 1:
        raise ConfigError("tolerance must lie in (0, 1)")
    times, matrix, active = result.throughput_matrix(grid_s)
    width = max(int(round(smooth_s / grid_s)), 1)
    smoothed = np.vstack([_smooth(matrix[i], width)
                          for i in range(matrix.shape[0])])
    events = flow_events(result)
    reports = []
    for k, event in enumerate(events):
        next_t = events[k + 1].time_s if k + 1 < len(events) \
            else result.duration_s
        fair = result.bottleneck_mbps / max(event.n_active_after, 1)
        window = (times >= event.time_s) & (times < next_t)
        if not window.any():
            reports.append(EventConvergence(event, fair, None, None))
            continue
        idx = np.where(window)[0]
        if event.kind == ARRIVAL:
            live_rows = np.array([event.flow_index])
        else:
            live_rows = np.where(active[:, idx[0]])[0]
        if len(live_rows) == 0:
            reports.append(EventConvergence(event, fair, None, None))
            continue
        within = np.abs(smoothed[np.ix_(live_rows, idx)] - fair) \
            <= tolerance * fair
        all_within = within.all(axis=0)
        hold = max(int(round(hold_s / grid_s)), 1)
        conv_time = None
        conv_slot = None
        for j in range(len(idx)):
            end = min(j + hold, len(idx))
            if all_within[j:end].all() and end - j >= min(hold, len(idx) - j):
                conv_time = float(times[idx[j]] - event.time_s)
                conv_slot = j
                break
        stability = None
        watched = event.flow_index if event.kind == ARRIVAL else None
        if conv_slot is not None:
            rows = [watched] if watched is not None and \
                watched in live_rows else list(live_rows)
            tail = idx[conv_slot:]
            if len(tail) >= 2:
                stability = float(np.mean(
                    [np.std(matrix[r, tail]) for r in rows]))
        reports.append(EventConvergence(event, fair, conv_time, stability))
    return reports


def mean_convergence_time(reports: list[EventConvergence],
                          penalty_s: float | None = None) -> float:
    """Average convergence time; unconverged events count ``penalty_s``
    (dropped entirely when ``penalty_s`` is None and nothing converged,
    returning ``nan``)."""
    values = []
    for r in reports:
        if r.convergence_time_s is not None:
            values.append(r.convergence_time_s)
        elif penalty_s is not None:
            values.append(penalty_s)
    return float(np.mean(values)) if values else float("nan")


def mean_stability(reports: list[EventConvergence]) -> float:
    """Average post-convergence throughput std-dev across events (Mbps)."""
    values = [r.stability_mbps for r in reports if r.stability_mbps is not None]
    return float(np.mean(values)) if values else float("nan")


def jain_convergence_times(result: ScenarioResult, threshold: float = 0.9,
                           hold_s: float = 1.0, grid_s: float = 0.1,
                           smooth_s: float = 0.3) -> list[float | None]:
    """Per flow event: time until the active flows' Jain index first stays
    above ``threshold`` for ``hold_s`` seconds.

    A complement to the paper's ±10%-of-fair-share criterion: it measures
    *collective* convergence to near-fairness and is robust to a policy
    whose equilibrium sits a constant small offset from the exact fair
    point (see EXPERIMENTS.md).  ``None`` marks events that never reach
    the threshold before the next event.
    """
    from .fairness import jain_index

    if not 0 < threshold <= 1:
        raise ConfigError("threshold must lie in (0, 1]")
    times, matrix, active = result.throughput_matrix(grid_s)
    width = max(int(round(smooth_s / grid_s)), 1)
    smoothed = np.vstack([_smooth(matrix[i], width)
                          for i in range(matrix.shape[0])])
    events = flow_events(result)
    hold = max(int(round(hold_s / grid_s)), 1)
    out: list[float | None] = []
    for k, event in enumerate(events):
        next_t = events[k + 1].time_s if k + 1 < len(events) \
            else result.duration_s
        idx = np.where((times >= event.time_s) & (times < next_t))[0]
        if len(idx) == 0:
            out.append(None)
            continue
        live = np.where(active[:, idx[0]])[0]
        if len(live) < 2:
            out.append(0.0)
            continue
        fair = np.array([jain_index(np.maximum(smoothed[live, j], 0.0))
                         >= threshold for j in idx])
        found = None
        for j in range(len(idx) - hold + 1):
            if fair[j:j + hold].all():
                found = float(times[idx[j]] - event.time_s)
                break
        out.append(found)
    return out


def mean_jain_convergence_time(result: ScenarioResult,
                               threshold: float = 0.9,
                               penalty_s: float = 30.0, **kwargs) -> float:
    """Mean of :func:`jain_convergence_times`, penalising non-convergence."""
    values = [v if v is not None else penalty_s
              for v in jain_convergence_times(result, threshold, **kwargs)]
    return float(np.mean(values)) if values else float("nan")


def ramp_time_s(result: ScenarioResult, utilization: float = 0.9,
                grid_s: float = 0.1, hold_s: float = 0.5) -> float:
    """Time for aggregate throughput to first reach (and hold) a
    utilisation threshold — the single-flow responsiveness the paper's
    real-world section credits for Astraea's high utilisation.

    Returns ``inf`` if the threshold is never sustained.
    """
    if not 0 < utilization <= 1:
        raise ConfigError("utilization threshold must lie in (0, 1]")
    times, matrix, active = result.throughput_matrix(grid_s)
    total = (matrix * active).sum(axis=0)
    target = utilization * result.bottleneck_mbps
    hold = max(int(round(hold_s / grid_s)), 1)
    above = total >= target
    for i in range(len(times) - hold + 1):
        if above[i:i + hold].all():
            return float(times[i])
    return float("inf")
