"""Evaluation metrics: fairness, convergence, stability, summaries."""

from .convergence import (
    ARRIVAL,
    DEPARTURE,
    EventConvergence,
    FlowEvent,
    convergence_report,
    flow_events,
    mean_convergence_time,
    mean_stability,
)
from .fairness import (
    FairnessAccumulator,
    astraea_fairness_metric,
    jain_index,
    max_min_fair_shares,
)
from .recovery import (
    NEVER_RECOVERED,
    RecoveryReport,
    recovery_report,
    recovery_time_s,
    steady_state_mbps,
)
from .summary import RunSummary, cdf, percentile_summary, summarize

__all__ = [
    "NEVER_RECOVERED",
    "RecoveryReport",
    "recovery_report",
    "recovery_time_s",
    "steady_state_mbps",
    "FairnessAccumulator",
    "jain_index",
    "astraea_fairness_metric",
    "max_min_fair_shares",
    "convergence_report",
    "flow_events",
    "mean_convergence_time",
    "mean_stability",
    "FlowEvent",
    "EventConvergence",
    "ARRIVAL",
    "DEPARTURE",
    "RunSummary",
    "summarize",
    "cdf",
    "percentile_summary",
]
