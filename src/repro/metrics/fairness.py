"""Fairness metrics: Jain index, Astraea's R_fair, and max-min shares.

Also home to :class:`FairnessAccumulator`, the mergeable
sufficient-statistics form of the Jain index used by the sharded fleet
runner: each shard reduces its flows to ``(count, sum, sum of squares,
capacity)`` and the parent merges those tuples instead of shipping raw
per-tick traces between processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


def jain_index(throughputs) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Equals 1 for perfectly equal allocations and ``1/n`` when one flow
    takes everything.  An all-zero allocation is defined as perfectly fair
    (index 1), matching the convention used when flows are idle.
    """
    x = np.asarray(throughputs, dtype=float)
    if x.size == 0:
        raise ConfigError("jain index of an empty allocation is undefined")
    if np.any(x < 0):
        raise ConfigError("throughputs must be non-negative")
    peak = x.max()
    if peak == 0:
        return 1.0
    # Normalising by the peak makes the (scale-invariant) index immune to
    # overflow/underflow of the squared sums at extreme magnitudes.
    x = x / peak
    return float(x.sum() ** 2 / (x.size * np.sum(x ** 2)))


@dataclass
class FairnessAccumulator:
    """Mergeable sufficient statistics for Jain fairness and utilization.

    The Jain index ``(sum x)^2 / (n * sum x^2)`` and link utilization
    ``sum x / capacity`` are both functions of ``(n, sum x, sum x^2,
    capacity)`` only, and every component is additive.  Shards therefore
    reduce their flows locally and the parent merges fixed-size tuples:
    merging in a deterministic order (plain float adds, shard index
    order) makes the aggregate bit-identical for any worker count.

    ``batches`` counts ``add``/non-empty ``merge`` contributions — one
    per shard in fleet runs — purely for diagnostics.
    """

    count: int = 0
    total: float = 0.0
    sum_sq: float = 0.0
    capacity: float = 0.0
    batches: int = 0

    def add(self, throughputs, capacity: float = 0.0) -> "FairnessAccumulator":
        """Fold one batch of per-flow throughputs (plus their shared
        ``capacity``, in the same unit) into the statistics."""
        x = np.asarray(throughputs, dtype=float)
        if x.size and (not np.all(np.isfinite(x)) or np.any(x < 0)):
            raise ConfigError(
                "throughputs must be finite and non-negative")
        if not math.isfinite(capacity) or capacity < 0:
            raise ConfigError(
                f"capacity must be finite and non-negative, got {capacity!r}")
        self.count += int(x.size)
        self.total += float(x.sum())
        self.sum_sq += float(np.sum(x * x))
        self.capacity += float(capacity)
        self.batches += 1
        return self

    def merge(self, other: "FairnessAccumulator") -> "FairnessAccumulator":
        """Fold another accumulator in (plain float adds; order matters
        for bit-identical aggregates, so callers merge in shard order)."""
        self.count += other.count
        self.total += other.total
        self.sum_sq += other.sum_sq
        self.capacity += other.capacity
        self.batches += other.batches
        return self

    def jain(self) -> float:
        """Jain index over every flow folded in so far.

        Matches :func:`jain_index` on the concatenated allocation (the
        index is scale-invariant, so the raw — unnormalized — sums agree
        with the peak-normalized form for any physical magnitude).
        """
        if self.count == 0:
            raise ConfigError("jain index of an empty allocation is undefined")
        if self.sum_sq == 0.0:
            return 1.0
        return float(self.total ** 2 / (self.count * self.sum_sq))

    def utilization(self) -> float:
        """Aggregate throughput over aggregate capacity."""
        if self.capacity <= 0.0:
            raise ConfigError(
                "utilization undefined without positive capacity")
        return float(self.total / self.capacity)

    def as_dict(self) -> dict:
        """JSON/pickle-friendly form (inverse of :meth:`from_dict`)."""
        return {"count": self.count, "total": self.total,
                "sum_sq": self.sum_sq, "capacity": self.capacity,
                "batches": self.batches}

    @classmethod
    def from_dict(cls, payload: dict) -> "FairnessAccumulator":
        try:
            return cls(count=int(payload["count"]),
                       total=float(payload["total"]),
                       sum_sq=float(payload["sum_sq"]),
                       capacity=float(payload["capacity"]),
                       batches=int(payload["batches"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(
                f"malformed FairnessAccumulator payload: {exc!r}") from exc


def astraea_fairness_metric(avg_throughputs) -> float:
    """The paper's R_fair (Eq. 6): normalised std-dev of flow throughputs.

    Zero at the fair equilibrium; unlike the Jain index it stays sensitive
    as flows approach equality (Fig. 4).  Computed over per-flow *average*
    throughputs (the paper averages over the last ``w`` MTPs).
    """
    x = np.asarray(avg_throughputs, dtype=float)
    if x.size == 0:
        raise ConfigError("fairness metric of an empty allocation is undefined")
    total = x.sum()
    if total == 0:
        return 0.0
    mean = total / x.size
    return float(np.sqrt(np.sum((x - mean) ** 2) / (x.size * total ** 2)))


def max_min_fair_shares(demands, capacity: float) -> np.ndarray:
    """Max-min fair allocation of ``capacity`` among flows with demands.

    ``demands`` may contain ``inf`` for elastic flows.  Classic water-filling.
    """
    d = np.asarray(demands, dtype=float)
    if capacity < 0:
        raise ConfigError("capacity must be non-negative")
    if np.any(d < 0):
        raise ConfigError("demands must be non-negative")
    alloc = np.zeros_like(d)
    remaining = capacity
    unsatisfied = np.ones_like(d, dtype=bool)
    while unsatisfied.any() and remaining > 1e-12:
        share = remaining / unsatisfied.sum()
        limited = unsatisfied & (d - alloc <= share)
        if limited.any():
            grant = d[limited] - alloc[limited]
            alloc[limited] = d[limited]
            remaining -= grant.sum()
            unsatisfied &= ~limited
        else:
            alloc[unsatisfied] += share
            remaining = 0.0
    return alloc
