"""Fairness metrics: Jain index, Astraea's R_fair, and max-min shares."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def jain_index(throughputs) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Equals 1 for perfectly equal allocations and ``1/n`` when one flow
    takes everything.  An all-zero allocation is defined as perfectly fair
    (index 1), matching the convention used when flows are idle.
    """
    x = np.asarray(throughputs, dtype=float)
    if x.size == 0:
        raise ConfigError("jain index of an empty allocation is undefined")
    if np.any(x < 0):
        raise ConfigError("throughputs must be non-negative")
    peak = x.max()
    if peak == 0:
        return 1.0
    # Normalising by the peak makes the (scale-invariant) index immune to
    # overflow/underflow of the squared sums at extreme magnitudes.
    x = x / peak
    return float(x.sum() ** 2 / (x.size * np.sum(x ** 2)))


def astraea_fairness_metric(avg_throughputs) -> float:
    """The paper's R_fair (Eq. 6): normalised std-dev of flow throughputs.

    Zero at the fair equilibrium; unlike the Jain index it stays sensitive
    as flows approach equality (Fig. 4).  Computed over per-flow *average*
    throughputs (the paper averages over the last ``w`` MTPs).
    """
    x = np.asarray(avg_throughputs, dtype=float)
    if x.size == 0:
        raise ConfigError("fairness metric of an empty allocation is undefined")
    total = x.sum()
    if total == 0:
        return 0.0
    mean = total / x.size
    return float(np.sqrt(np.sum((x - mean) ** 2) / (x.size * total ** 2)))


def max_min_fair_shares(demands, capacity: float) -> np.ndarray:
    """Max-min fair allocation of ``capacity`` among flows with demands.

    ``demands`` may contain ``inf`` for elastic flows.  Classic water-filling.
    """
    d = np.asarray(demands, dtype=float)
    if capacity < 0:
        raise ConfigError("capacity must be non-negative")
    if np.any(d < 0):
        raise ConfigError("demands must be non-negative")
    alloc = np.zeros_like(d)
    remaining = capacity
    unsatisfied = np.ones_like(d, dtype=bool)
    while unsatisfied.any() and remaining > 1e-12:
        share = remaining / unsatisfied.sum()
        limited = unsatisfied & (d - alloc <= share)
        if limited.any():
            grant = d[limited] - alloc[limited]
            alloc[limited] = d[limited]
            remaining -= grant.sum()
            unsatisfied &= ~limited
        else:
            alloc[unsatisfied] += share
            remaining = 0.0
    return alloc
