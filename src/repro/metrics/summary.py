"""Run summaries and distribution helpers shared by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..env.multiflow import ScenarioResult
from .convergence import (
    convergence_report,
    mean_convergence_time,
    mean_stability,
)


@dataclass(frozen=True)
class RunSummary:
    """Headline numbers of one scenario run."""

    scheme: str
    utilization: float
    mean_jain: float
    mean_rtt_ms: float
    mean_loss_rate: float
    convergence_time_s: float
    stability_mbps: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "scheme": self.scheme,
            "utilization": self.utilization,
            "mean_jain": self.mean_jain,
            "mean_rtt_ms": self.mean_rtt_ms,
            "mean_loss_rate": self.mean_loss_rate,
            "convergence_time_s": self.convergence_time_s,
            "stability_mbps": self.stability_mbps,
        }


def summarize(result: ScenarioResult, scheme: str,
              penalty_s: float | None = None) -> RunSummary:
    """Compute the standard summary of a run."""
    reports = convergence_report(result)
    return RunSummary(
        scheme=scheme,
        utilization=result.utilization(),
        mean_jain=result.mean_jain(),
        mean_rtt_ms=result.mean_rtt_s() * 1e3,
        mean_loss_rate=result.mean_loss_rate(),
        convergence_time_s=mean_convergence_time(reports, penalty_s=penalty_s),
        stability_mbps=mean_stability(reports),
    )


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns sorted values and cumulative probabilities."""
    x = np.sort(np.asarray(values, dtype=float))
    if x.size == 0:
        return x, x
    return x, np.arange(1, x.size + 1) / x.size


def percentile_summary(values, percentiles=(5, 25, 50, 75, 95)) -> dict[int, float]:
    """Named percentiles of a sample."""
    arr = np.asarray(values, dtype=float)
    return {p: float(np.percentile(arr, p)) for p in percentiles}
