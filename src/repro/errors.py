"""Exception hierarchy for the Astraea reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class TransportError(SimulationError):
    """The socket datapath hit a wire-protocol failure (a frame that
    cannot be decoded, an impossible header field)."""


class TransportStalledError(TransportError):
    """The reliable-UDP sender gave up on a segment: every retransmission
    attempt (or the whole no-progress budget) was exhausted without an
    acknowledgement — the loopback analogue of a broken connection.

    ``flow_id`` and ``seq`` name the segment that stalled (``seq`` is
    ``None`` when the stall is a whole-transfer deadline), ``attempts``
    how many times it was sent.
    """

    def __init__(self, message: str, *, flow_id: int | None = None,
                 seq: int | None = None,
                 attempts: int | None = None) -> None:
        super().__init__(message)
        self.flow_id = flow_id
        self.seq = seq
        self.attempts = attempts


class TaskError(ReproError):
    """A parallel-map worker failed.

    Carries the originating task's context so a failure deep inside a
    sweep names the exact cell that died: ``index`` is the task's
    position in the submitted sequence, ``context`` a human-readable
    description of its payload (e.g. ``"cell fluid/cubic/blackout"``),
    and ``cause_type`` the exception class name raised in the worker.
    The original traceback rides along as ``__cause__``.
    """

    def __init__(self, message: str, *, index: int | None = None,
                 context: str | None = None,
                 cause_type: str | None = None) -> None:
        super().__init__(message)
        self.index = index
        self.context = context
        self.cause_type = cause_type


class ModelError(ReproError):
    """A model bundle could not be loaded or has incompatible shapes."""


class CorruptModelError(ModelError):
    """A bundle file exists but its bytes are damaged (truncated zip,
    garbage payload, unreadable arrays)."""


class ModelValidationError(ModelError):
    """A bundle file is readable but violates the bundle contract
    (missing/ill-typed metadata, parameter count or shape mismatch)."""


class TrainingInstabilityWarning(UserWarning):
    """A recoverable training fault was absorbed: a divergence rollback,
    or a quarantined episode (the message carries the scenario seed so
    the failure is reproducible in isolation)."""


class ModelFallbackWarning(UserWarning):
    """A default policy bundle was unusable and a fallback was taken.

    Emitted exactly once per resolution by
    :func:`repro.core.policy.load_default_policy`; the message names the
    offending file, the reason, and the chosen fallback.
    """


class ShardFailureWarning(UserWarning):
    """A fleet shard failed and was quarantined: the fleet run continued
    without it, and the message names the shard index, the fleet seed,
    and the derived shard seed so the failure is reproducible in
    isolation (``build_scenario("fleet", seed=..., shard_index=...)``)."""


class CheckpointError(ModelError):
    """A training checkpoint is missing, damaged, or incompatible with
    the resuming configuration."""


class TrainingDivergedError(ReproError):
    """Training hit non-finite losses/parameters/actions and the
    divergence guard exhausted its rollback budget (or the training loop
    exhausted its consecutive-episode-failure budget)."""


class ServiceError(ReproError):
    """The inference service was used incorrectly."""


class InvalidStateError(ServiceError):
    """A submitted inference state is malformed (wrong shape or
    non-finite entries) and no fallback path is configured."""


class DeadlineExceededError(ServiceError):
    """One or more requests aged past the service deadline and no
    fallback path is configured to absorb them.

    The exception is raised only *after* the rest of the flush window
    was served, so no healthy request is ever discarded along with the
    overdue ones: ``served`` carries the ``{request_id: action}``
    answers of every request that was still serveable, and ``missed``
    lists the request ids that actually exceeded the deadline.
    """

    def __init__(self, message: str, *,
                 missed: list[int] | None = None,
                 served: dict[int, float] | None = None) -> None:
        super().__init__(message)
        self.missed = list(missed) if missed is not None else []
        self.served = dict(served) if served is not None else {}


class ProtocolError(ServiceError):
    """A daemon client sent a frame the wire protocol cannot parse
    (bad length prefix, oversized frame, non-JSON body, unknown verb,
    missing fields)."""


class AdmissionRejectedError(ServiceError):
    """The serving daemon refused a request because its in-flight
    ceiling was reached (admission control, not a malformed request)."""


class ServiceConnectError(ServiceError):
    """The client could not reach a daemon: every connect attempt of the
    jittered-backoff retry loop failed.  ``attempts`` records how many
    were made; the last socket error rides along as ``__cause__``."""

    def __init__(self, message: str, *, attempts: int | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts


class ServiceTimeoutError(ServiceError):
    """A daemon request produced no response within its per-request
    timeout.  The request may still be served later; the client has
    stopped waiting so a stalled connection cannot hang the caller."""
