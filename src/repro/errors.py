"""Exception hierarchy for the Astraea reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class ModelError(ReproError):
    """A model bundle could not be loaded or has incompatible shapes."""


class ServiceError(ReproError):
    """The inference service was used incorrectly."""
