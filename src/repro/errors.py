"""Exception hierarchy for the Astraea reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class ModelError(ReproError):
    """A model bundle could not be loaded or has incompatible shapes."""


class CorruptModelError(ModelError):
    """A bundle file exists but its bytes are damaged (truncated zip,
    garbage payload, unreadable arrays)."""


class ModelValidationError(ModelError):
    """A bundle file is readable but violates the bundle contract
    (missing/ill-typed metadata, parameter count or shape mismatch)."""


class ModelFallbackWarning(UserWarning):
    """A default policy bundle was unusable and a fallback was taken.

    Emitted exactly once per resolution by
    :func:`repro.core.policy.load_default_policy`; the message names the
    offending file, the reason, and the chosen fallback.
    """


class ServiceError(ReproError):
    """The inference service was used incorrectly."""
