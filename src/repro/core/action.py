"""Action block (§3.3): multiplicative cwnd mapping of Eq. 3.

The model outputs an action ``a`` in (-1, 1); the window update is

    cwnd' = cwnd * (1 + alpha a)    if a >= 0
    cwnd' = cwnd / (1 - alpha a)    otherwise

which is symmetric in log-space (a and -a cancel exactly) and bounds the
per-MTP change to a factor of ``1 ± alpha``.  The pacing rate is the new
window divided by the smoothed RTT.
"""

from __future__ import annotations

import math

from ..config import ACTION_ALPHA
from ..errors import ModelError
from ..netsim.fluid import MIN_CWND_PKTS


def apply_action(cwnd_pkts: float, action: float,
                 alpha: float = ACTION_ALPHA) -> float:
    """Eq. 3: map action in [-1, 1] to the next congestion window."""
    if not -1.0 <= action <= 1.0:
        raise ModelError(f"action must lie in [-1, 1], got {action}")
    if alpha <= 0 or alpha >= 1:
        raise ModelError(f"alpha must lie in (0, 1), got {alpha}")
    if action >= 0:
        new = cwnd_pkts * (1.0 + alpha * action)
    else:
        new = cwnd_pkts / (1.0 - alpha * action)
    return max(new, MIN_CWND_PKTS)


def invert_action(cwnd_pkts: float, next_cwnd_pkts: float,
                  alpha: float = ACTION_ALPHA) -> float:
    """The action that maps ``cwnd`` to ``next_cwnd`` (clipped to [-1, 1]).

    Useful for tests and for distilling rule-based controllers into the
    action space.
    """
    if cwnd_pkts <= 0 or next_cwnd_pkts <= 0:
        raise ModelError("windows must be positive")
    ratio = next_cwnd_pkts / cwnd_pkts
    if ratio >= 1.0:
        action = (ratio - 1.0) / alpha
    else:
        action = (1.0 - 1.0 / ratio) / alpha
    return max(-1.0, min(1.0, action))


def pacing_from_cwnd(cwnd_pkts: float, srtt_s: float) -> float:
    """Pacing rate (packets/s) = cwnd / sRTT (§3.3)."""
    if srtt_s <= 0:
        raise ModelError("srtt must be positive")
    return cwnd_pkts / srtt_s


def max_growth_per_second(alpha: float, mtp_s: float) -> float:
    """Multiplicative growth factor per second at full-throttle action.

    Documents the responsiveness bound alpha imposes: e.g. the default
    alpha=0.025 at a 30 ms MTP allows at most ~2.28x growth per second.
    """
    if mtp_s <= 0:
        raise ModelError("mtp must be positive")
    return math.exp(math.log(1.0 + alpha) / mtp_s)
