"""Policy bundles: serialisable trained actors.

A :class:`PolicyBundle` holds everything needed to execute a trained
Astraea (or Aurora/Orca) policy: the actor MLP parameters plus the
architecture and action metadata.  Bundles serialise to ``.npz`` files;
the package ships pretrained bundles under ``repro/models/`` which
:func:`load_default_policy` resolves.

Loading is defensive: a bundle file that is damaged on disk raises
:class:`~repro.errors.CorruptModelError`, one whose metadata or parameter
shapes violate the bundle contract raises
:class:`~repro.errors.ModelValidationError` — never a raw stdlib
exception.  :func:`load_default_policy` additionally degrades through a
per-scheme fallback chain (requested bundle → alternates → ``None``)
with a single :class:`~repro.errors.ModelFallbackWarning`, so a corrupt
shipped artifact can never crash a controller: ``None`` makes
:class:`~repro.core.astraea.AstraeaController` (and the Aurora/Orca
wrappers) fall back to their analytic reference policies.
"""

from __future__ import annotations

import json
import warnings
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import ACTION_ALPHA, HISTORY_LENGTH, HIDDEN_LAYERS
from ..errors import (
    CorruptModelError,
    ModelError,
    ModelFallbackWarning,
    ModelValidationError,
)
from ..rl.nn import MLP

MODELS_DIR = Path(__file__).resolve().parent.parent / "models"
DEFAULT_POLICY_NAMES = {
    "astraea": "astraea_pretrained.npz",
    "aurora": "aurora_pretrained.npz",
    "orca": "orca_pretrained.npz",
}
# Degradation order per scheme: the default bundle first, then any
# shipped alternates that can stand in for it.  A corrupt/invalid entry
# falls through to the next; an exhausted chain resolves to ``None``
# (= the analytic reference policy at the controller layer).
FALLBACK_POLICY_NAMES = {
    "astraea": ("astraea_pretrained.npz", "astraea_alt_homogeneous.npz"),
    "aurora": ("aurora_pretrained.npz",),
    "orca": ("orca_pretrained.npz",),
}

_META_SCHEMA = {
    # key -> (accepted types, predicate on the parsed value)
    "scheme": (str, lambda v: bool(v)),
    "history": (int, lambda v: v > 0),
    "alpha": ((int, float), lambda v: v > 0),
    "in_dim": (int, lambda v: v > 0),
    "out_dim": (int, lambda v: v > 0),
    "hidden": (list, lambda v: len(v) > 0
               and all(isinstance(h, int) and h > 0 for h in v)),
    "output": (str, lambda v: v in ("linear", "tanh")),
}


def validate_meta(meta: object, source: str = "bundle") -> dict:
    """Check a parsed ``meta`` document against the bundle contract.

    Returns the meta dict on success; raises
    :class:`~repro.errors.ModelValidationError` naming the first violated
    field otherwise.
    """
    if not isinstance(meta, dict):
        raise ModelValidationError(
            f"{source}: meta must be a JSON object, got "
            f"{type(meta).__name__}")
    for key, (types, ok) in _META_SCHEMA.items():
        if key not in meta:
            raise ModelValidationError(f"{source}: meta missing key {key!r}")
        value = meta[key]
        if not isinstance(value, types) or isinstance(value, bool):
            raise ModelValidationError(
                f"{source}: meta[{key!r}] has type {type(value).__name__}")
        if not ok(value):
            raise ModelValidationError(
                f"{source}: meta[{key!r}] = {value!r} is out of contract")
    from .state import LOCAL_FEATURES

    if meta["in_dim"] != LOCAL_FEATURES * meta["history"]:
        raise ModelValidationError(
            f"{source}: in_dim {meta['in_dim']} does not match "
            f"{LOCAL_FEATURES} features x history {meta['history']}")
    return meta


@dataclass
class PolicyBundle:
    """A trained deterministic actor plus its execution metadata."""

    actor: MLP
    history: int = HISTORY_LENGTH
    alpha: float = ACTION_ALPHA
    scheme: str = "astraea"
    metadata: dict | None = None

    def act(self, local_state: np.ndarray) -> float:
        """Greedy action in (-1, 1) for a single stacked local state."""
        out = self.actor.infer(local_state)
        return float(np.clip(out[0, 0], -0.999, 0.999))

    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Serialise the bundle to an ``.npz`` file; returns the path."""
        path = Path(path)
        hidden = tuple(layer.W.shape[1] for layer in self.actor.layers[:-1])
        meta = {
            "scheme": self.scheme,
            "history": self.history,
            "alpha": self.alpha,
            "in_dim": self.actor.in_dim,
            "out_dim": self.actor.out_dim,
            "hidden": list(hidden),
            "output": self.actor.output,
            "extra": self.metadata or {},
        }
        arrays = {f"param_{i}": p for i, p in enumerate(self.actor.get_state())}
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, meta=json.dumps(meta), **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PolicyBundle":
        """Load a bundle previously written by :meth:`save`.

        Raises :class:`~repro.errors.ModelError` if the file is absent,
        :class:`~repro.errors.CorruptModelError` if its bytes are damaged
        (truncated/non-zip/unreadable arrays), and
        :class:`~repro.errors.ModelValidationError` if it parses but
        violates the bundle contract (meta schema, parameter count or
        shapes vs. the declared architecture).  Stdlib exceptions never
        leak.
        """
        path = Path(path)
        if not path.exists():
            raise ModelError(f"no policy bundle at {path}")
        try:
            # Own the handle: np.load leaks it (ResourceWarning) when it
            # throws mid-parse on damaged bytes.
            with open(path, "rb") as fh, \
                    np.load(fh, allow_pickle=False) as data:
                files = set(data.files)
                if "meta" not in files:
                    raise ModelValidationError(
                        f"{path}: bundle has no 'meta' entry")
                raw_meta = str(data["meta"])
                n_params = len([k for k in files if k.startswith("param_")])
                state = []
                for i in range(n_params):
                    key = f"param_{i}"
                    if key not in files:
                        raise ModelValidationError(
                            f"{path}: parameter arrays are not contiguous "
                            f"({key} missing among {n_params})")
                    state.append(data[key])
        except ModelError:
            raise
        except (zipfile.BadZipFile, zlib.error, ValueError, KeyError,
                OSError, EOFError) as exc:
            raise CorruptModelError(
                f"{path}: unreadable policy bundle ({exc})") from exc
        try:
            meta = json.loads(raw_meta)
        except json.JSONDecodeError as exc:
            raise ModelValidationError(
                f"{path}: meta is not valid JSON ({exc})") from exc
        validate_meta(meta, source=str(path))
        actor = MLP(meta["in_dim"], tuple(meta["hidden"]), meta["out_dim"],
                    output=meta["output"])
        try:
            actor.set_state(state)
        except ModelError as exc:
            raise ModelValidationError(
                f"{path}: parameters do not fit the declared "
                f"{meta['hidden']} architecture ({exc})") from exc
        extra = meta.get("extra")
        if extra is not None and not isinstance(extra, dict):
            raise ModelValidationError(
                f"{path}: meta['extra'] must be an object when present")
        return cls(actor=actor, history=meta["history"],
                   alpha=float(meta["alpha"]), scheme=meta["scheme"],
                   metadata=extra or {})


def default_policy_path(scheme: str = "astraea") -> Path:
    """Where the shipped pretrained bundle for ``scheme`` lives."""
    try:
        return MODELS_DIR / DEFAULT_POLICY_NAMES[scheme]
    except KeyError:
        raise ModelError(f"no default policy defined for {scheme!r}") from None


def fallback_policy_paths(scheme: str = "astraea") -> list[Path]:
    """The degradation chain for ``scheme``: default bundle, then alternates.

    Paths are resolved against :data:`MODELS_DIR` at call time so tests
    can point the loader at a scratch directory.
    """
    if scheme not in FALLBACK_POLICY_NAMES:
        raise ModelError(f"no default policy defined for {scheme!r}")
    return [MODELS_DIR / name for name in FALLBACK_POLICY_NAMES[scheme]]


_POLICY_CACHE: dict[str, PolicyBundle | None] = {}


def load_default_policy(scheme: str = "astraea") -> PolicyBundle | None:
    """The shipped pretrained bundle, or ``None`` if none is usable.

    Resolution walks the scheme's fallback chain
    (:func:`fallback_policy_paths`): a bundle that is absent, corrupt, or
    schema-invalid falls through to the next candidate; an exhausted
    chain yields ``None``, which the controllers translate into their
    analytic reference fallback.  Skipping a *present* bundle emits one
    :class:`~repro.errors.ModelFallbackWarning` naming the file and the
    reason — it never raises.

    Results (including absence) are cached per scheme for the process; a
    failed load is not poisoned permanently — :func:`clear_policy_cache`
    forces re-resolution, e.g. after ``repro models regenerate`` repairs
    the file.
    """
    if scheme not in _POLICY_CACHE:
        bundle, skipped = None, []
        for path in fallback_policy_paths(scheme):
            if not path.exists():
                continue
            try:
                bundle = PolicyBundle.load(path)
                break
            except ModelError as exc:
                skipped.append(f"{path.name}: {exc}")
        if skipped:
            chosen = (f"fell back to {Path(path).name}" if bundle is not None
                      else "degrading to the analytic reference policy")
            warnings.warn(
                f"unusable {scheme} policy bundle(s) — {'; '.join(skipped)} "
                f"— {chosen}; run 'python -m repro models verify' / "
                f"'... models regenerate' to repair",
                ModelFallbackWarning, stacklevel=2)
        _POLICY_CACHE[scheme] = bundle
    return _POLICY_CACHE[scheme]


def resolve_policy(policy: "PolicyBundle | str | None", scheme: str,
                   *, use_default: bool = True) -> "PolicyBundle | None":
    """Normalise a controller's ``policy`` argument into a bundle.

    * ``None`` — the scheme's default chain when ``use_default`` (Astraea
      auto-loads; Aurora/Orca keep their behavioural models), else ``None``.
    * ``"default"`` / ``"pretrained"`` — the default chain explicitly.
    * any other ``str`` — an explicit bundle path; load errors propagate
      as typed :class:`~repro.errors.ModelError`\\ s (an explicitly named
      file that cannot be used is a hard error, not a silent fallback).
    * a :class:`PolicyBundle` — passed through.
    """
    if policy is None:
        return load_default_policy(scheme) if use_default else None
    if isinstance(policy, str):
        if policy in ("default", "pretrained"):
            return load_default_policy(scheme)
        return PolicyBundle.load(policy)
    return policy


def clear_policy_cache() -> None:
    """Forget cached default policies (used by tests and after training)."""
    _POLICY_CACHE.clear()


def new_actor(history: int = HISTORY_LENGTH,
              hidden: tuple[int, ...] = HIDDEN_LAYERS,
              seed: int = 0) -> MLP:
    """A freshly initialised Astraea actor network."""
    from .state import LOCAL_FEATURES

    return MLP(LOCAL_FEATURES * history, hidden, 1, output="tanh", seed=seed)
