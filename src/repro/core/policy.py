"""Policy bundles: serialisable trained actors.

A :class:`PolicyBundle` holds everything needed to execute a trained
Astraea (or Aurora/Orca) policy: the actor MLP parameters plus the
architecture and action metadata.  Bundles serialise to ``.npz`` files;
the package ships pretrained bundles under ``repro/models/`` which
:func:`load_default_policy` resolves (benchmarks fall back to the analytic
reference policy when a bundle is absent — see
:class:`repro.core.reference.AstraeaReference`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import ACTION_ALPHA, HISTORY_LENGTH, HIDDEN_LAYERS
from ..errors import ModelError
from ..rl.nn import MLP

MODELS_DIR = Path(__file__).resolve().parent.parent / "models"
DEFAULT_POLICY_NAMES = {
    "astraea": "astraea_pretrained.npz",
    "aurora": "aurora_pretrained.npz",
    "orca": "orca_pretrained.npz",
}


@dataclass
class PolicyBundle:
    """A trained deterministic actor plus its execution metadata."""

    actor: MLP
    history: int = HISTORY_LENGTH
    alpha: float = ACTION_ALPHA
    scheme: str = "astraea"
    metadata: dict | None = None

    def act(self, local_state: np.ndarray) -> float:
        """Greedy action in (-1, 1) for a single stacked local state."""
        out = self.actor.forward(np.atleast_2d(local_state))
        return float(np.clip(out[0, 0], -0.999, 0.999))

    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Serialise the bundle to an ``.npz`` file; returns the path."""
        path = Path(path)
        hidden = tuple(layer.W.shape[1] for layer in self.actor.layers[:-1])
        meta = {
            "scheme": self.scheme,
            "history": self.history,
            "alpha": self.alpha,
            "in_dim": self.actor.in_dim,
            "out_dim": self.actor.out_dim,
            "hidden": list(hidden),
            "output": self.actor.output,
            "extra": self.metadata or {},
        }
        arrays = {f"param_{i}": p for i, p in enumerate(self.actor.get_state())}
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, meta=json.dumps(meta), **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PolicyBundle":
        """Load a bundle previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ModelError(f"no policy bundle at {path}")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            n_params = len([k for k in data.files if k.startswith("param_")])
            state = [data[f"param_{i}"] for i in range(n_params)]
        actor = MLP(meta["in_dim"], tuple(meta["hidden"]), meta["out_dim"],
                    output=meta["output"])
        actor.set_state(state)
        return cls(actor=actor, history=meta["history"], alpha=meta["alpha"],
                   scheme=meta["scheme"], metadata=meta.get("extra") or {})


def default_policy_path(scheme: str = "astraea") -> Path:
    """Where the shipped pretrained bundle for ``scheme`` lives."""
    try:
        return MODELS_DIR / DEFAULT_POLICY_NAMES[scheme]
    except KeyError:
        raise ModelError(f"no default policy defined for {scheme!r}") from None


_POLICY_CACHE: dict[str, PolicyBundle | None] = {}


def load_default_policy(scheme: str = "astraea") -> PolicyBundle | None:
    """The shipped pretrained bundle, or ``None`` if not present.

    Results (including absence) are cached per scheme for the process.
    """
    if scheme not in _POLICY_CACHE:
        path = default_policy_path(scheme)
        _POLICY_CACHE[scheme] = PolicyBundle.load(path) if path.exists() else None
    return _POLICY_CACHE[scheme]


def clear_policy_cache() -> None:
    """Forget cached default policies (used by tests and after training)."""
    _POLICY_CACHE.clear()


def new_actor(history: int = HISTORY_LENGTH,
              hidden: tuple[int, ...] = HIDDEN_LAYERS,
              seed: int = 0) -> MLP:
    """A freshly initialised Astraea actor network."""
    from .state import LOCAL_FEATURES

    return MLP(LOCAL_FEATURES * history, hidden, 1, output="tanh", seed=seed)
