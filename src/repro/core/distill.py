"""Policy distillation (the paper's future-work direction, §5.4).

The paper notes Astraea's overhead could be further reduced by
hierarchical designs (Spine) and in-kernel model execution (LiteFlow) —
both of which require a *much smaller* network than the 256/128/64 actor.
This module implements the standard route there: distil the trained
teacher into a tiny student MLP by regressing the teacher's actions over
the state distribution the policy actually visits.

Workflow::

    states  = collect_states(bundle, scenarios)     # on-policy states
    student = distill_policy(bundle, states)        # small PolicyBundle
    report  = evaluate_distillation(bundle, student, states)

The distillation benchmark (``benchmarks/test_ablation_distill.py``)
shows the student preserves the congestion behaviour at a fraction of
the inference cost.
"""

from __future__ import annotations

import numpy as np

from ..config import LinkConfig, ScenarioConfig
from ..errors import ModelError
from ..netsim.flowgen import staggered_flows
from ..rl.nn import MLP
from ..rl.optim import Adam
from .astraea import AstraeaController
from .policy import PolicyBundle

STUDENT_HIDDEN = (16, 16)


class _RecordingController(AstraeaController):
    """AstraeaController that logs every stacked state it acts on."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.recorded: list[np.ndarray] = []

    def on_interval(self, stats):
        decision = super().on_interval(stats)
        self.recorded.append(self.state_block.input_vector())
        return decision


def default_collection_scenarios() -> list[ScenarioConfig]:
    """A small diverse scenario set for on-policy state collection."""
    out = []
    for bw, rtt, n in ((100.0, 30.0, 3), (50.0, 80.0, 2), (150.0, 15.0, 4)):
        link = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=1.0)
        flows = staggered_flows(n, cc="astraea", interval_s=5.0,
                                duration_s=20.0)
        out.append(ScenarioConfig(link=link, flows=flows, duration_s=30.0))
    return out


def collect_states(teacher: PolicyBundle,
                   scenarios: list[ScenarioConfig] | None = None,
                   ) -> np.ndarray:
    """Run the teacher through scenarios, recording its input states."""
    from ..env import run_scenario

    scenarios = scenarios or default_collection_scenarios()
    states: list[np.ndarray] = []
    for scenario in scenarios:
        controllers = [_RecordingController(policy=teacher)
                       for _ in scenario.flows]
        run_scenario(scenario, controllers=controllers)
        for ctl in controllers:
            states.extend(ctl.recorded)
    if not states:
        raise ModelError("state collection produced no samples")
    return np.vstack(states)


def distill_policy(teacher: PolicyBundle, states: np.ndarray,
                   hidden: tuple[int, ...] = STUDENT_HIDDEN,
                   epochs: int = 200, batch_size: int = 256,
                   lr: float = 1e-3, seed: int = 0) -> PolicyBundle:
    """Regress a small student actor onto the teacher's actions."""
    states = np.asarray(states, dtype=float)
    if states.ndim != 2 or states.shape[1] != teacher.actor.in_dim:
        raise ModelError(
            f"states must be (n, {teacher.actor.in_dim}), got {states.shape}")
    targets = teacher.actor.forward(states)
    student = MLP(teacher.actor.in_dim, hidden, 1, output="tanh", seed=seed)
    opt = Adam(student.parameters(), student.gradients(), lr=lr)
    rng = np.random.default_rng(seed)
    n = states.shape[0]
    for _ in range(epochs):
        idx = rng.integers(0, n, size=min(batch_size, n))
        pred = student.forward(states[idx])
        err = pred - targets[idx]
        student.zero_grad()
        student.backward(2.0 * err / len(idx))
        opt.step()
    return PolicyBundle(actor=student, history=teacher.history,
                        alpha=teacher.alpha, scheme=teacher.scheme,
                        metadata={"distilled_from": teacher.metadata or {},
                                  "hidden": list(hidden)})


def parameter_count(bundle: PolicyBundle) -> int:
    """Total scalar parameters in a bundle's actor."""
    return int(sum(p.size for p in bundle.actor.parameters()))


def evaluate_distillation(teacher: PolicyBundle, student: PolicyBundle,
                          states: np.ndarray) -> dict[str, float]:
    """Agreement and size statistics between teacher and student."""
    t = teacher.actor.forward(states)[:, 0]
    s = student.actor.forward(states)[:, 0]
    return {
        "mean_abs_error": float(np.mean(np.abs(t - s))),
        "sign_agreement": float(np.mean(np.sign(t) == np.sign(s))),
        "teacher_params": parameter_count(teacher),
        "student_params": parameter_count(student),
        "compression": parameter_count(teacher)
        / max(parameter_count(student), 1),
    }
