"""Policy distillation (the paper's future-work direction, §5.4).

The paper notes Astraea's overhead could be further reduced by
hierarchical designs (Spine) and in-kernel model execution (LiteFlow) —
both of which require a *much smaller* network than the 256/128/64 actor.
This module implements the standard route there: distil the trained
teacher into a tiny student MLP by regressing the teacher's actions over
the state distribution the policy actually visits.

Workflow::

    states  = collect_states(bundle, scenarios)     # on-policy states
    student = distill_policy(bundle, states)        # small PolicyBundle
    report  = evaluate_distillation(bundle, student, states)

The distillation benchmark (``benchmarks/test_ablation_distill.py``)
shows the student preserves the congestion behaviour at a fraction of
the inference cost.

The same machinery also runs the other way — *up* from the analytic
reference policy into a full-size actor bundle.
:func:`collect_reference_dataset` records (stacked local state, closed-
form action) pairs from :class:`~repro.core.reference.AstraeaReference`
(or Aurora's behavioural model) driving diverse scenarios, and
:func:`regenerate_default_bundle` fits the paper's 256/128/64 actor to
them deterministically.  This is how the shipped bundles under
``repro/models/`` are (re)built: ``python -m repro models regenerate``.
"""

from __future__ import annotations

import numpy as np

from ..config import HIDDEN_LAYERS, LinkConfig, ScenarioConfig
from ..errors import ModelError
from ..netsim.flowgen import staggered_flows
from ..rl.nn import MLP
from ..rl.optim import Adam
from .astraea import AstraeaController
from .policy import PolicyBundle

STUDENT_HIDDEN = (16, 16)


class _RecordingController(AstraeaController):
    """AstraeaController that logs every stacked state it acts on."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.recorded: list[np.ndarray] = []

    def on_interval(self, stats):
        decision = super().on_interval(stats)
        self.recorded.append(self.state_block.input_vector())
        return decision


def default_collection_scenarios() -> list[ScenarioConfig]:
    """A small diverse scenario set for on-policy state collection."""
    out = []
    for bw, rtt, n in ((100.0, 30.0, 3), (50.0, 80.0, 2), (150.0, 15.0, 4)):
        link = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=1.0)
        flows = staggered_flows(n, cc="astraea", interval_s=5.0,
                                duration_s=20.0)
        out.append(ScenarioConfig(link=link, flows=flows, duration_s=30.0))
    return out


def collect_states(teacher: PolicyBundle,
                   scenarios: list[ScenarioConfig] | None = None,
                   ) -> np.ndarray:
    """Run the teacher through scenarios, recording its input states."""
    from ..env import run_scenario

    scenarios = scenarios or default_collection_scenarios()
    states: list[np.ndarray] = []
    for scenario in scenarios:
        controllers = [_RecordingController(policy=teacher)
                       for _ in scenario.flows]
        run_scenario(scenario, controllers=controllers)
        for ctl in controllers:
            states.extend(ctl.recorded)
    if not states:
        raise ModelError("state collection produced no samples")
    return np.vstack(states)


def fit_actor(actor: MLP, states: np.ndarray, targets: np.ndarray,
              epochs: int = 200, batch_size: int = 256,
              lr: float = 1e-3, seed: int = 0) -> MLP:
    """Minibatch MSE regression of an actor onto target actions.

    The shared supervised core of both distillation directions (big
    teacher → small student, analytic reference → full-size bundle).
    """
    states = np.asarray(states, dtype=float)
    targets = np.atleast_2d(np.asarray(targets, dtype=float))
    if targets.shape[0] == 1 and states.shape[0] != 1:
        targets = targets.T
    opt = Adam(actor.parameters(), actor.gradients(), lr=lr)
    rng = np.random.default_rng(seed)
    n = states.shape[0]
    for _ in range(epochs):
        idx = rng.integers(0, n, size=min(batch_size, n))
        pred = actor.forward(states[idx])
        err = pred - targets[idx]
        actor.zero_grad()
        actor.backward(2.0 * err / len(idx))
        opt.step()
    return actor


def distill_policy(teacher: PolicyBundle, states: np.ndarray,
                   hidden: tuple[int, ...] = STUDENT_HIDDEN,
                   epochs: int = 200, batch_size: int = 256,
                   lr: float = 1e-3, seed: int = 0) -> PolicyBundle:
    """Regress a small student actor onto the teacher's actions."""
    states = np.asarray(states, dtype=float)
    if states.ndim != 2 or states.shape[1] != teacher.actor.in_dim:
        raise ModelError(
            f"states must be (n, {teacher.actor.in_dim}), got {states.shape}")
    targets = teacher.actor.infer(states)
    student = MLP(teacher.actor.in_dim, hidden, 1, output="tanh", seed=seed)
    fit_actor(student, states, targets, epochs=epochs,
              batch_size=batch_size, lr=lr, seed=seed)
    return PolicyBundle(actor=student, history=teacher.history,
                        alpha=teacher.alpha, scheme=teacher.scheme,
                        metadata={"distilled_from": teacher.metadata or {},
                                  "hidden": list(hidden)})


def parameter_count(bundle: PolicyBundle) -> int:
    """Total scalar parameters in a bundle's actor."""
    return int(sum(p.size for p in bundle.actor.parameters()))


# ----------------------------------------------------------------------
# Regeneration: analytic reference -> full-size shipped bundle.


def _recording_reference(history: int):
    """An ``astraea-ref`` controller that labels its own state stream.

    Runs the analytic reference policy unchanged while mirroring the
    deployed controller's :class:`~repro.core.state.LocalStateBlock`, so
    every MTP yields an on-policy (stacked state, closed-form action)
    training pair.
    """
    from .reference import AstraeaReference
    from .state import LocalStateBlock

    class Recorder(AstraeaReference):
        def __init__(self):
            # Attributes exist before super().__init__ triggers reset().
            self.block = LocalStateBlock(history=history)
            self.states: list[np.ndarray] = []
            self.actions: list[float] = []
            super().__init__()

        def reset(self):
            super().reset()
            self.block.reset()

        def on_interval(self, stats):
            # Label with the pure policy action (no probe drains): the
            # deployed AstraeaController supplies probing/guards itself.
            self.states.append(self.block.update(stats))
            self.actions.append(self.peek_action(stats))
            return super().on_interval(stats)

    return Recorder()


def _recording_aurora(history: int):
    """Aurora's calibrated behavioural model as a labelling teacher."""
    from ..cc.aurora import Aurora

    class Recorder(Aurora):
        def __init__(self):
            self.states: list[np.ndarray] = []
            self.actions: list[float] = []
            super().__init__(history=history)

        def on_interval(self, stats):
            decision = super().on_interval(stats)
            # _fallback_action is idempotent for a given stats record, so
            # re-evaluating it here purely for the label is safe.
            self.states.append(self.state_block.input_vector())
            self.actions.append(self._fallback_action(stats))
            return decision

    return Recorder()


def _scenario(bw: float, rtt: float, n_flows: int, cc: str,
              interval_s: float, flow_duration_s: float,
              duration_s: float, extra_rtt_ms: tuple[float, ...] = (),
              ) -> ScenarioConfig:
    link = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=1.0)
    flows = staggered_flows(n_flows, cc=cc, interval_s=interval_s,
                            duration_s=flow_duration_s)
    if extra_rtt_ms:
        from dataclasses import replace

        flows = tuple(
            replace(f, extra_rtt_ms=extra_rtt_ms[i % len(extra_rtt_ms)])
            for i, f in enumerate(flows))
    return ScenarioConfig(link=link, flows=flows, duration_s=duration_s)


def reference_regen_scenarios() -> list[ScenarioConfig]:
    """The diverse scenario mix behind ``astraea_pretrained.npz``.

    Spans the bandwidth/RTT/flow-count ranges the tier-1 suite and the
    paper's quick-fairness gate exercise: a slow link, the canonical
    100 Mbps three-flow stagger, high-RTT, many-flow and mid-range cases,
    including RTT-heterogeneous flows.
    """
    return [
        _scenario(12.0, 30.0, 1, "astraea-ref", 0.01, 20.0, 25.0),
        _scenario(100.0, 30.0, 3, "astraea-ref", 10.0, 30.0, 50.0),
        _scenario(50.0, 80.0, 2, "astraea-ref", 5.0, 20.0, 30.0),
        _scenario(150.0, 15.0, 4, "astraea-ref", 5.0, 20.0, 30.0),
        _scenario(30.0, 50.0, 2, "astraea-ref", 8.0, 20.0, 30.0,
                  extra_rtt_ms=(0.0, 40.0)),
    ]


def homogeneous_regen_scenarios() -> list[ScenarioConfig]:
    """The homogeneous-only mix behind ``astraea_alt_homogeneous.npz``."""
    return [
        _scenario(100.0, 30.0, 3, "astraea-ref", 10.0, 30.0, 50.0),
        _scenario(50.0, 30.0, 2, "astraea-ref", 5.0, 20.0, 30.0),
    ]


def aurora_regen_scenarios() -> list[ScenarioConfig]:
    """Single-flow-dominated mix for the Aurora baseline bundle."""
    return [
        _scenario(100.0, 30.0, 1, "aurora", 0.01, 25.0, 30.0),
        _scenario(30.0, 60.0, 1, "aurora", 0.01, 20.0, 25.0),
        _scenario(80.0, 20.0, 2, "aurora", 5.0, 20.0, 30.0),
    ]


def collect_reference_dataset(scenarios: list[ScenarioConfig],
                              teacher: str = "reference",
                              history: int | None = None,
                              ) -> tuple[np.ndarray, np.ndarray]:
    """On-policy (states, actions) pairs from an analytic teacher.

    ``teacher`` selects the labelling controller: ``"reference"`` for
    :class:`~repro.core.reference.AstraeaReference`, ``"aurora"`` for
    Aurora's behavioural model.
    """
    from ..config import HISTORY_LENGTH
    from ..env import run_scenario

    history = history if history is not None else HISTORY_LENGTH
    makers = {"reference": _recording_reference, "aurora": _recording_aurora}
    if teacher not in makers:
        raise ModelError(f"unknown regeneration teacher {teacher!r}")
    states: list[np.ndarray] = []
    actions: list[float] = []
    for scenario in scenarios:
        recorders = [makers[teacher](history) for _ in scenario.flows]
        run_scenario(scenario, controllers=recorders)
        for rec in recorders:
            states.extend(rec.states)
            actions.extend(rec.actions)
    if not states:
        raise ModelError("reference dataset collection produced no samples")
    return np.vstack(states), np.asarray(actions, dtype=float)


# Recipes for every shipped bundle: which teacher labels the data, which
# scenario mix generates it, and the bundle-level metadata to stamp.
REGEN_RECIPES: dict[str, dict] = {
    "astraea_pretrained.npz": {
        "scheme": "astraea",
        "teacher": "reference",
        "scenarios": reference_regen_scenarios,
    },
    "astraea_alt_homogeneous.npz": {
        "scheme": "astraea",
        "teacher": "reference",
        "scenarios": homogeneous_regen_scenarios,
    },
    "aurora_pretrained.npz": {
        "scheme": "aurora",
        "teacher": "aurora",
        "scenarios": aurora_regen_scenarios,
    },
}


def regenerate_default_bundle(name: str, path=None, *,
                              epochs: int = 3000, batch_size: int = 512,
                              lr: float = 1e-3, seed: int = 0,
                              hidden: tuple[int, ...] = HIDDEN_LAYERS,
                              ) -> tuple["PolicyBundle", dict]:
    """Deterministically rebuild one shipped bundle from its recipe.

    Collects the recipe's on-policy dataset, fits the paper's full-size
    actor to the analytic teacher's actions, and (when ``path`` is not
    ``None``) saves the result.  Everything is seeded, so the same
    inputs reproduce the same bytes.  Returns the bundle and a report
    dict (sample count, final MAE, recipe provenance).
    """
    if name not in REGEN_RECIPES:
        raise ModelError(
            f"no regeneration recipe for {name!r} "
            f"(known: {', '.join(sorted(REGEN_RECIPES))})")
    recipe = REGEN_RECIPES[name]
    states, actions = collect_reference_dataset(
        recipe["scenarios"](), teacher=recipe["teacher"])
    actor = MLP(states.shape[1], hidden, 1, output="tanh", seed=seed)
    fit_actor(actor, states, actions, epochs=epochs,
              batch_size=batch_size, lr=lr, seed=seed)
    mae = float(np.mean(np.abs(actor.infer(states)[:, 0] - actions)))
    report = {
        "recipe": name,
        "teacher": recipe["teacher"],
        "samples": int(states.shape[0]),
        "epochs": epochs,
        "seed": seed,
        "mae": mae,
    }
    bundle = PolicyBundle(
        actor=actor, scheme=recipe["scheme"],
        metadata={"generator": "repro models regenerate", **report})
    if path is not None:
        bundle.save(path)
    return bundle, report


def evaluate_distillation(teacher: PolicyBundle, student: PolicyBundle,
                          states: np.ndarray) -> dict[str, float]:
    """Agreement and size statistics between teacher and student."""
    t = teacher.actor.infer(states)[:, 0]
    s = student.actor.infer(states)[:, 0]
    return {
        "mean_abs_error": float(np.mean(np.abs(t - s))),
        "sign_agreement": float(np.mean(np.sign(t) == np.sign(s))),
        "teacher_params": parameter_count(teacher),
        "student_params": parameter_count(student),
        "compression": parameter_count(teacher)
        / max(parameter_count(student), 1),
    }
