"""Reward block (§3.3): the global reward of Eqs. 4-8.

The reward is computed centrally from the latest MTP statistics of *all*
active flows — this is what makes fairness and stability directly
optimisable.  Terms:

* ``R_thr`` (Eq. 4): aggregate throughput over link capacity.
* ``R_loss`` (Eq. 4): mean per-flow loss-to-throughput ratio.
* ``R_lat`` (Eq. 5): latency inflation beyond a ``(1+beta)`` tolerance of
  the base delay, weighted by the aggregate pacing rate so that pushing
  traffic into an already-inflated queue is what gets punished.  Normalised
  by the link BDP so the term is dimensionless across conditions.
* ``R_fair`` (Eq. 6): std-dev of per-flow *average* throughputs (averaged
  over the last ``w`` MTPs, Eq. 7), normalised by the total — zero at the
  fair point and, unlike the Jain index, still sensitive near it (Fig. 4).
* ``R_stab`` (Eq. 6): mean per-flow coefficient of variation of throughput
  over the ``w``-MTP history.

The total (Eq. 8) is a linear combination with the Table 4 coefficients,
bounded to ``(-0.1, 0.1)`` per MTP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import LinkConfig, RewardConfig
from ..errors import ModelError
from ..units import mbps_to_pps


@dataclass(frozen=True)
class FlowSnapshot:
    """Per-flow inputs to the reward at one global step.

    ``avg_thr_pps`` and ``thr_std_pps`` are computed over the flow's last
    ``w`` MTPs (the state block maintains them); the remaining fields come
    from the flow's most recent MTP record.
    """

    throughput_pps: float
    avg_thr_pps: float
    thr_std_pps: float
    avg_rtt_s: float
    loss_pps: float
    pacing_pps: float


@dataclass(frozen=True)
class RewardTerms:
    """The individual reward components plus the bounded total."""

    throughput: float
    latency: float
    loss: float
    fairness: float
    stability: float
    total: float


def fairness_term(avg_throughputs) -> float:
    """Eq. 6, R_fair: normalised cross-flow std-dev of average throughput."""
    x = np.asarray(avg_throughputs, dtype=float)
    if x.size == 0:
        raise ModelError("fairness term needs at least one flow")
    total = x.sum()
    if total <= 0 or not np.isfinite(total):
        return 0.0
    # Work on normalised shares: numerically identical to Eq. 6 but immune
    # to overflow/underflow of total**2 at extreme magnitudes.
    shares = x / total
    return float(np.sqrt(np.sum((shares - 1.0 / x.size) ** 2) / x.size))


def stability_term(avg_throughputs, thr_stds) -> float:
    """Eq. 6, R_stab: mean per-flow coefficient of variation."""
    avg = np.asarray(avg_throughputs, dtype=float)
    std = np.asarray(thr_stds, dtype=float)
    if avg.size == 0:
        raise ModelError("stability term needs at least one flow")
    if avg.shape != std.shape:
        raise ModelError("avg/std arrays must align")
    cv = np.where(avg > 1e-9, std / np.maximum(avg, 1e-9), 0.0)
    return float(np.mean(np.minimum(cv, 4.0)))


class RewardBlock:
    """Computes the global reward from all active flows' snapshots."""

    def __init__(self, link: LinkConfig, config: RewardConfig | None = None):
        self.link = link
        self.config = config or RewardConfig()

    def compute(self, snapshots: list[FlowSnapshot],
                capacity_pps: float | None = None) -> RewardTerms:
        """Evaluate Eqs. 4-8 for one global step.

        ``capacity_pps`` overrides the link's nominal capacity for
        variable-bandwidth (trace-driven) training scenarios.
        """
        if not snapshots:
            raise ModelError("reward needs at least one active flow")
        cfg = self.config
        c = capacity_pps if capacity_pps is not None else \
            mbps_to_pps(self.link.bandwidth_mbps)
        if c <= 0:
            raise ModelError("link capacity must be positive")

        thr = np.array([s.throughput_pps for s in snapshots])
        avg_thr = np.array([s.avg_thr_pps for s in snapshots])
        thr_std = np.array([s.thr_std_pps for s in snapshots])
        lat = np.array([s.avg_rtt_s for s in snapshots])
        loss = np.array([s.loss_pps for s in snapshots])
        pacing = np.array([s.pacing_pps for s in snapshots])

        r_thr = min(float(thr.sum() / c), 1.5)

        loss_ratio = np.where(thr > 1e-9,
                              loss / np.maximum(thr, 1e-9),
                              np.where(loss > 0, 1.0, 0.0))
        r_loss = float(np.mean(np.minimum(loss_ratio, 1.0)))

        base = self.link.rtt_s
        tolerance = (1.0 + cfg.beta) * base
        avg_lat = float(lat.mean())
        if avg_lat > tolerance:
            # "Total increased latency of all sending packets", made
            # dimensionless: inflation (in base-RTT units) times the
            # aggregate pacing rate relative to capacity.
            r_lat = ((avg_lat - tolerance) / base) * float(pacing.sum()) / c
            r_lat = min(r_lat, 4.0)
        else:
            r_lat = 0.0

        r_fair = fairness_term(avg_thr)
        r_stab = stability_term(avg_thr, thr_std)

        total = (cfg.c_thr * r_thr
                 - cfg.c_lat * r_lat
                 - cfg.c_loss * r_loss
                 - cfg.c_fair * r_fair
                 - cfg.c_stab * r_stab)
        total = float(np.clip(total, -cfg.bound, cfg.bound))
        return RewardTerms(
            throughput=r_thr,
            latency=r_lat,
            loss=r_loss,
            fairness=r_fair,
            stability=r_stab,
            total=total,
        )
