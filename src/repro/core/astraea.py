"""The Astraea congestion controller (deployment-phase agent).

Each flow loads one RL agent with the trained policy and performs pure
local inference: per MTP the state block folds the newest packet
statistics, the actor maps the stacked local state to an action, and the
action block turns it into the next congestion window with pacing
``cwnd / sRTT``.  No global information is used at deployment (§3.1).

If no trained bundle is supplied and none shipped is usable — absent,
corrupt, or schema-invalid, per the fallback chain of
:func:`repro.core.policy.load_default_policy` — the controller falls
back to the analytic reference policy (:mod:`repro.core.reference`), which
has the same state -> action structure the trained model learns (Fig. 17);
benchmarks report which backend was used.
"""

from __future__ import annotations

from ..cc.base import CongestionController, Decision, register
from ..config import ACTION_ALPHA, HISTORY_LENGTH, MTP_S
from ..netsim.stats import MtpStats
from .action import apply_action, pacing_from_cwnd
from .policy import PolicyBundle, resolve_policy
from .state import LocalStateBlock


@register("astraea")
class AstraeaController(CongestionController):
    """Astraea in inference mode: local state -> actor -> Eq. 3 window."""

    SLOW_START_GROWTH = 1.5
    SLOW_START_BACKLOG_EXIT = 10.0   # packets queued before handover
    SLOW_START_LOSS_EXIT = 0.01
    PROBE_INTERVAL_S = 5.0           # periodic drain cadence
    PROBE_INTERVALS = 3              # drain duration in MTPs
    IDLE_RATIO = 1.05                # below this latency ratio the path is
                                     # congestion-free: never decrease
    IDLE_ACTION = 0.5
    BLOAT_RATIO = 3.0                # above this ratio, always back off
    BLOAT_ACTION = -0.5
    RTT_WINDOW_S = 10.0

    def __init__(self, mtp_s: float = MTP_S,
                 policy: PolicyBundle | str | None = None,
                 alpha: float | None = None,
                 history: int = HISTORY_LENGTH,
                 use_pacing: bool = True,
                 slow_start: bool = True,
                 probe_rtt: bool = True,
                 guards: bool = True):
        super().__init__(mtp_s)
        self.slow_start_enabled = slow_start
        self.probe_rtt_enabled = probe_rtt
        self.guards_enabled = guards
        # None resolves through the default fallback chain: shipped bundle
        # -> shipped alternates -> the analytic reference (below).  A
        # corrupt shipped bundle therefore degrades with a warning instead
        # of crashing construction; an explicit path raises typed errors.
        self.policy = policy = resolve_policy(policy, "astraea")
        if policy is not None:
            history = policy.history
            alpha = alpha if alpha is not None else policy.alpha
        self.alpha = alpha if alpha is not None else ACTION_ALPHA
        self.use_pacing = use_pacing
        self._fallback = None
        if self.policy is None:
            from .reference import AstraeaReference

            self._fallback = AstraeaReference(mtp_s=mtp_s, alpha=self.alpha)
        self.state_block = LocalStateBlock(history=history)
        self.reset()

    @property
    def backend(self) -> str:
        """``"model"`` when a trained bundle drives decisions."""
        return "model" if self.policy is not None else "reference"

    def reset(self) -> None:
        self.state_block.reset()
        self.cwnd = self.initial_cwnd
        self._in_slow_start = self.slow_start_enabled
        self._rtt_min = float("inf")
        self._rtt_samples: list[tuple[float, float]] = []
        self._next_probe_s: float | None = None
        self._drain_left = 0
        if self._fallback is not None:
            self._fallback.reset()

    def _windowed_rtt_min(self, now: float, sample: float) -> float:
        """Sliding-window minimum RTT for the deployment guards."""
        self._rtt_samples.append((now, sample))
        horizon = now - self.RTT_WINDOW_S
        self._rtt_samples = [(t, r) for t, r in self._rtt_samples
                             if t >= horizon]
        return min(r for _, r in self._rtt_samples)

    def _guarded(self, action: float, stats: MtpStats) -> float:
        """Deployment guard rails around the raw policy action.

        Two standard kernel-datapath safety rules, each active only where
        *any* congestion controller's correct response is unambiguous:

        * idle guard — base-RTT latency and no loss means the path carries
          no congestion signal at all; decreasing there only wastes
          capacity (the failure mode of a policy extrapolating far outside
          its training envelope, e.g. a 10 Gbps or 800 ms path).
        * bufferbloat guard — latency several times the observed floor
          must trigger back-off regardless of what the model says.

        Inside the normal operating band the policy's action passes
        through untouched, so fairness/convergence dynamics are the
        model's own.  Disable with ``guards=False`` (EXPERIMENTS.md notes
        which appendix scenarios rely on them).
        """
        if not self.guards_enabled:
            return action
        rtt_min = self._windowed_rtt_min(stats.time_s, stats.min_rtt_s)
        ratio = stats.avg_rtt_s / max(rtt_min, 1e-9)
        if ratio < self.IDLE_RATIO and stats.loss_rate < 0.01:
            return max(action, self.IDLE_ACTION)
        if ratio > self.BLOAT_RATIO:
            return min(action, self.BLOAT_ACTION)
        return action

    def _probe_action(self, now: float) -> float | None:
        """Periodic short drain (the role BBR's PROBE_RTT plays).

        A standing queue biases every flow's minimum-latency observation —
        a late joiner can only measure the true base RTT when the queue
        empties — and biased observations are what let competing flows
        settle into a stable-but-unfair split.  Every few seconds the
        controller briefly sheds window so the bottleneck drains and the
        state block's latency floor refreshes.  This deployment-side
        mechanism is a reproduction addition (documented in
        EXPERIMENTS.md); disable with ``probe_rtt=False`` to see the raw
        policy's asymptotic behaviour.
        """
        if not self.probe_rtt_enabled:
            return None
        if self._next_probe_s is None:
            self._next_probe_s = now + self.PROBE_INTERVAL_S
        if now >= self._next_probe_s:
            self._drain_left = self.PROBE_INTERVALS
            self._next_probe_s = now + self.PROBE_INTERVAL_S
        if self._drain_left > 0:
            self._drain_left -= 1
            return -1.0
        return None

    def _slow_start_step(self, stats: MtpStats) -> Decision | None:
        """Kernel-TCP-style ramp before the agent takes over (§4).

        Returns the slow-start decision, or ``None`` once handed over.
        """
        self._rtt_min = min(self._rtt_min, stats.min_rtt_s)
        rtt = max(stats.avg_rtt_s, self._rtt_min, 1e-6)
        backlog = stats.cwnd_pkts * (1.0 - self._rtt_min / rtt)
        if backlog > self.SLOW_START_BACKLOG_EXIT \
                or stats.loss_rate > self.SLOW_START_LOSS_EXIT:
            self._in_slow_start = False
            self.cwnd = max(self.cwnd / self.SLOW_START_GROWTH, 2.0)
            return None
        # ACK-clocked growth: at most one packet per delivered ACK.
        self.cwnd = min(self.cwnd * self.SLOW_START_GROWTH,
                        self.cwnd + max(stats.delivered_pkts, 1.0))
        pacing = pacing_from_cwnd(self.cwnd, max(stats.srtt_s, 1e-6)) \
            if self.use_pacing else None
        return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)

    def on_interval(self, stats: MtpStats) -> Decision:
        if self._fallback is not None:
            decision = self._fallback.on_interval(stats)
            self.cwnd = decision.cwnd_pkts
            return decision
        state = self.state_block.update(stats)
        if self._in_slow_start:
            decision = self._slow_start_step(stats)
            if decision is not None:
                return decision
        action = self._probe_action(stats.time_s)
        if action is None:
            action = self._guarded(self.policy.act(state), stats)
        self.cwnd = apply_action(self.cwnd, action, self.alpha)
        pacing = pacing_from_cwnd(self.cwnd, max(stats.srtt_s, 1e-6)) \
            if self.use_pacing else None
        return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)
