"""Astraea core: state/action/reward blocks, agents, learner, training."""

from .action import apply_action, invert_action, pacing_from_cwnd
from .artifacts import (
    ArtifactCheck,
    VerifyReport,
    load_manifest,
    update_manifest,
    validate_bundle_file,
    verify_models,
)
from .astraea import AstraeaController
from .distill import (
    collect_reference_dataset,
    collect_states,
    distill_policy,
    evaluate_distillation,
    parameter_count,
    regenerate_default_bundle,
)
from .policy import (
    PolicyBundle,
    clear_policy_cache,
    default_policy_path,
    fallback_policy_paths,
    load_default_policy,
    new_actor,
    resolve_policy,
)
from .reference import AstraeaReference
from .reward import FlowSnapshot, RewardBlock, RewardTerms
from .state import (
    GLOBAL_FEATURES,
    LOCAL_FEATURES,
    LocalStateBlock,
    global_state_vector,
    local_feature_vector,
)

__all__ = [
    "apply_action",
    "invert_action",
    "pacing_from_cwnd",
    "collect_states",
    "collect_reference_dataset",
    "distill_policy",
    "evaluate_distillation",
    "parameter_count",
    "regenerate_default_bundle",
    "AstraeaController",
    "AstraeaReference",
    "ArtifactCheck",
    "VerifyReport",
    "load_manifest",
    "update_manifest",
    "validate_bundle_file",
    "verify_models",
    "PolicyBundle",
    "load_default_policy",
    "default_policy_path",
    "fallback_policy_paths",
    "clear_policy_cache",
    "new_actor",
    "resolve_policy",
    "RewardBlock",
    "RewardTerms",
    "FlowSnapshot",
    "LocalStateBlock",
    "local_feature_vector",
    "global_state_vector",
    "LOCAL_FEATURES",
    "GLOBAL_FEATURES",
]
