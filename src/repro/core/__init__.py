"""Astraea core: state/action/reward blocks, agents, learner, training."""

from .action import apply_action, invert_action, pacing_from_cwnd
from .astraea import AstraeaController
from .distill import (
    collect_states,
    distill_policy,
    evaluate_distillation,
    parameter_count,
)
from .policy import (
    PolicyBundle,
    clear_policy_cache,
    default_policy_path,
    load_default_policy,
    new_actor,
)
from .reference import AstraeaReference
from .reward import FlowSnapshot, RewardBlock, RewardTerms
from .state import (
    GLOBAL_FEATURES,
    LOCAL_FEATURES,
    LocalStateBlock,
    global_state_vector,
    local_feature_vector,
)

__all__ = [
    "apply_action",
    "invert_action",
    "pacing_from_cwnd",
    "collect_states",
    "distill_policy",
    "evaluate_distillation",
    "parameter_count",
    "AstraeaController",
    "AstraeaReference",
    "PolicyBundle",
    "load_default_policy",
    "default_policy_path",
    "clear_policy_cache",
    "new_actor",
    "RewardBlock",
    "RewardTerms",
    "FlowSnapshot",
    "LocalStateBlock",
    "local_feature_vector",
    "global_state_vector",
    "LOCAL_FEATURES",
    "GLOBAL_FEATURES",
]
