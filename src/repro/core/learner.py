"""The Learner (§3.1/§3.4): policy store, replay, and update bursts.

The Learner owns the shared actor/critic networks (all flow agents execute
the same policy), the experience replay memory, and the update schedule of
Table 4: every ``model_update_interval`` seconds of environment time it
performs ``model_update_steps`` gradient steps on sampled batches.

Checkpoints (:meth:`Learner.save_checkpoint`) persist the *complete*
learner — actor, both critics and all three target networks — which is
what makes fine-tuning stable: resuming from an actor-only bundle pits a
good policy against freshly initialised critics, and the first actor
updates then chase random value estimates (a failure mode we hit; see
docs/architecture.md §2).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..config import TrainingConfig
from ..errors import ModelError
from ..rl.replay import ReplayBuffer
from ..rl.td3 import TD3Learner
from .policy import PolicyBundle
from .state import GLOBAL_FEATURES, LOCAL_FEATURES


class Learner:
    """Shared-policy learner with the paper's update cadence."""

    def __init__(self, cfg: TrainingConfig | None = None,
                 use_global: bool = True, seed: int | None = None):
        self.cfg = cfg or TrainingConfig()
        seed = self.cfg.seed if seed is None else seed
        self.local_dim = LOCAL_FEATURES * self.cfg.history_length
        self.global_dim = GLOBAL_FEATURES
        self.use_global = use_global
        self.td3 = TD3Learner(self.local_dim, self.global_dim, action_dim=1,
                              cfg=self.cfg, use_global=use_global, seed=seed)
        self.replay = ReplayBuffer(self.cfg.replay_capacity, self.local_dim,
                                   self.global_dim, action_dim=1, seed=seed)
        self._last_update_env_s = 0.0
        self.total_updates = 0
        self.total_transitions = 0

    # ------------------------------------------------------------------

    def act(self, local_state: np.ndarray, noise_std: float = 0.0) -> float:
        """Shared-policy action for one stacked local state."""
        return float(self.td3.act(local_state[None, :], noise_std)[0, 0])

    def add_transition(self, global_state, local_state, action: float,
                       reward: float, next_global, next_local,
                       done: bool = False) -> None:
        """Store one (g, s, a, r, g', s') tuple in replay memory."""
        self.replay.add(local_state, global_state, np.array([action]), reward,
                        next_local, next_global, done)
        self.total_transitions += 1

    @property
    def warm(self) -> bool:
        """Whether replay holds enough experience to start updating."""
        return len(self.replay) >= max(self.cfg.warmup_transitions,
                                       self.cfg.batch_size)

    def update_burst(self) -> dict[str, float]:
        """Run one burst of ``model_update_steps`` gradient steps."""
        if not self.warm:
            return {"critic_loss": float("nan"), "actor_loss": float("nan")}
        losses = {}
        for _ in range(self.cfg.update_steps):
            losses = self.td3.update(self.replay.sample(self.cfg.batch_size))
            self.total_updates += 1
        return losses

    def maybe_update(self, env_now_s: float) -> dict[str, float] | None:
        """Update burst if the env-time update interval elapsed."""
        if env_now_s - self._last_update_env_s < self.cfg.update_interval_s:
            return None
        self._last_update_env_s = env_now_s
        return self.update_burst()

    def reset_update_clock(self) -> None:
        """Start a new episode's env-time update schedule."""
        self._last_update_env_s = 0.0

    # ------------------------------------------------------------------

    def snapshot_policy(self, scheme: str = "astraea",
                        metadata: dict | None = None) -> PolicyBundle:
        """An immutable copy of the current actor as a PolicyBundle."""
        return PolicyBundle(
            actor=self.td3.actor.clone(),
            history=self.cfg.history_length,
            scheme=scheme,
            metadata=metadata,
        )

    def load_policy(self, bundle: PolicyBundle) -> None:
        """Warm-start the actor (and its target) from a bundle.

        Prefer :meth:`load_checkpoint` when one is available — an
        actor-only warm start leaves the critics random, which requires
        an actor-freeze warmup (``TrainingConfig.actor_warmup_updates``)
        to avoid destroying the warm policy.
        """
        if bundle.actor.in_dim != self.local_dim:
            raise ModelError(
                f"bundle input dim {bundle.actor.in_dim} != learner "
                f"local dim {self.local_dim}")
        self.td3.actor.set_state(bundle.actor.get_state())
        self.td3.actor_target.set_state(bundle.actor.get_state())

    # ------------------------------------------------------------------

    _CHECKPOINT_NETS = ("actor", "critic1", "critic2", "actor_target",
                        "critic1_target", "critic2_target")

    def save_checkpoint(self, path: str | Path) -> Path:
        """Persist actor, critics and targets to one ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {}
        for net_name in self._CHECKPOINT_NETS:
            net = getattr(self.td3, net_name)
            for i, p in enumerate(net.get_state()):
                arrays[f"{net_name}__{i}"] = p
        meta = {
            "local_dim": self.local_dim,
            "global_dim": self.global_dim,
            "use_global": self.use_global,
            "hidden_layers": list(self.cfg.hidden_layers),
            "total_updates": self.total_updates,
        }
        np.savez(path, meta=json.dumps(meta), **arrays)
        return path

    def load_checkpoint(self, path: str | Path) -> None:
        """Restore a full checkpoint written by :meth:`save_checkpoint`."""
        path = Path(path)
        if not path.exists():
            raise ModelError(f"no checkpoint at {path}")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta["local_dim"] != self.local_dim or \
                    meta["global_dim"] != self.global_dim:
                raise ModelError(
                    "checkpoint dimensions do not match this learner")
            if meta["use_global"] != self.use_global:
                raise ModelError(
                    "checkpoint critic topology (use_global) mismatch")
            for net_name in self._CHECKPOINT_NETS:
                net = getattr(self.td3, net_name)
                n = len(net.get_state())
                state = [data[f"{net_name}__{i}"] for i in range(n)]
                net.set_state(state)
            self.total_updates = int(meta.get("total_updates", 0))
