"""The Learner (§3.1/§3.4): policy store, replay, and update bursts.

The Learner owns the shared actor/critic networks (all flow agents execute
the same policy), the experience replay memory, and the update schedule of
Table 4: every ``model_update_interval`` seconds of environment time it
performs ``model_update_steps`` gradient steps on sampled batches.

Checkpoints (:meth:`Learner.save_checkpoint`) persist the *complete*
learner — actor, both critics and all three target networks — which is
what makes fine-tuning stable: resuming from an actor-only bundle pits a
good policy against freshly initialised critics, and the first actor
updates then chase random value estimates (a failure mode we hit; see
docs/architecture.md §2).
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from ..config import TrainingConfig
from ..errors import ModelError, TrainingDivergedError, TrainingInstabilityWarning
from ..rl.replay import ReplayBuffer
from ..rl.td3 import TD3Learner
from .policy import PolicyBundle
from .state import GLOBAL_FEATURES, LOCAL_FEATURES


class DivergenceGuard:
    """Rolls the TD3 networks back when an update burst goes non-finite.

    State machine (docs/architecture.md §Runtime resilience): after every
    healthy burst the guard snapshots all six networks plus both Adam
    states; when a burst produces a non-finite critic loss, non-finite
    parameters, or a non-finite probe action, it restores the snapshot and
    decays both learning rates by ``lr_decay``.  ``budget`` *consecutive*
    rollbacks without an intervening healthy burst raise
    :class:`TrainingDivergedError`; any healthy burst resets the count.

    The actor loss is deliberately not checked: TD3's delayed policy
    updates report ``actor_loss = nan`` on non-actor steps as a sentinel,
    so actor divergence is caught through the parameter and probe checks
    instead.
    """

    def __init__(self, td3: TD3Learner, budget: int = 3,
                 lr_decay: float = 0.5):
        if budget < 1:
            raise ModelError("rollback budget must be >= 1")
        if not 0.0 < lr_decay <= 1.0:
            raise ModelError("rollback LR decay must be in (0, 1]")
        self.td3 = td3
        self.budget = budget
        self.lr_decay = lr_decay
        self.rollbacks = 0
        self.consecutive = 0
        self._probe = np.zeros((1, td3.local_dim))
        self._snapshot = td3.state_dict()

    def refresh(self) -> None:
        """Re-snapshot after an external restore (checkpoint load)."""
        self.consecutive = 0
        self._snapshot = self.td3.state_dict()

    def healthy(self, losses: dict[str, float] | None = None) -> bool:
        """Whether the learner state (and last losses) are all finite."""
        if losses:
            critic_loss = losses.get("critic_loss")
            if critic_loss is not None and not np.isfinite(critic_loss):
                return False
        if not self.td3.params_finite():
            return False
        return bool(np.isfinite(self.td3.act(self._probe)).all())

    def after_burst(self, losses: dict[str, float]) -> bool:
        """Check one finished update burst; returns True if rolled back."""
        if self.healthy(losses):
            self.consecutive = 0
            self._snapshot = self.td3.state_dict()
            return False
        self.rollback("non-finite losses/parameters after update burst")
        return True

    def rollback(self, reason: str) -> None:
        """Restore the last good snapshot and decay the learning rates."""
        self.consecutive += 1
        self.rollbacks += 1
        if self.consecutive > self.budget:
            raise TrainingDivergedError(
                f"divergence guard exhausted its rollback budget "
                f"({self.budget}): {reason}")
        self.td3.load_state_dict(self._snapshot)
        self.td3.scale_learning_rates(self.lr_decay)
        # Keep the decayed LR across further rollbacks to the same
        # snapshot (load_state_dict restored the pre-decay value).
        self._snapshot["actor_opt"]["lr"] = self.td3.actor_opt.lr
        self._snapshot["critic_opt"]["lr"] = self.td3.critic_opt.lr
        warnings.warn(
            f"divergence rollback {self.consecutive}/{self.budget}: "
            f"{reason}; learning rates decayed by {self.lr_decay}",
            TrainingInstabilityWarning, stacklevel=3)


class Learner:
    """Shared-policy learner with the paper's update cadence."""

    def __init__(self, cfg: TrainingConfig | None = None,
                 use_global: bool = True, seed: int | None = None):
        self.cfg = cfg or TrainingConfig()
        seed = self.cfg.seed if seed is None else seed
        self.local_dim = LOCAL_FEATURES * self.cfg.history_length
        self.global_dim = GLOBAL_FEATURES
        self.use_global = use_global
        self.td3 = TD3Learner(self.local_dim, self.global_dim, action_dim=1,
                              cfg=self.cfg, use_global=use_global, seed=seed)
        self.replay = ReplayBuffer(self.cfg.replay_capacity, self.local_dim,
                                   self.global_dim, action_dim=1, seed=seed)
        self.guard = DivergenceGuard(self.td3,
                                     budget=self.cfg.rollback_budget,
                                     lr_decay=self.cfg.rollback_lr_decay)
        self._last_update_env_s = 0.0
        self.total_updates = 0
        self.total_transitions = 0
        self._deferred: list | None = None

    # ------------------------------------------------------------------

    def act(self, local_state: np.ndarray, noise_std: float = 0.0) -> float:
        """Shared-policy action for one stacked local state.

        A non-finite action triggers a guard rollback and a retry,
        capped at the guard's rollback budget per call: an actor that
        stays non-finite through every restored snapshot raises
        :class:`TrainingDivergedError` instead of spinning.
        """
        return float(self.act_batch(local_state[None, :], noise_std)[0])

    def act_batch(self, local_states: np.ndarray,
                  noise_std: float = 0.0) -> np.ndarray:
        """Shared-policy actions for a ``(k, local_dim)`` stack of states.

        Row ``i`` is bitwise identical to ``act(local_states[i])`` run in
        sequence — the forward kernel is row-consistent and the noise
        stream consumes identically (see :meth:`TD3Learner.act`).  Any
        non-finite row triggers a guard rollback and a full re-draw of
        the batch, bounded by the rollback budget.
        """
        actions = self.td3.act(local_states, noise_std)[:, 0]
        retries = 0
        while not np.isfinite(actions).all():
            if retries >= self.guard.budget:
                raise TrainingDivergedError(
                    f"actor output stayed non-finite through {retries} "
                    f"rollback retries")
            self.guard.rollback("non-finite action from actor")
            actions = self.td3.act(local_states, noise_std)[:, 0]
            retries += 1
        return actions

    def add_transition(self, global_state, local_state, action: float,
                       reward: float, next_global, next_local,
                       done: bool = False) -> None:
        """Store one (g, s, a, r, g', s') tuple in replay memory.

        In deferred mode (:meth:`set_deferred`) the tuple is buffered in
        arrival order and lands in replay via one
        :meth:`~repro.rl.replay.ReplayBuffer.add_batch` flush before the
        next update burst — identical final replay contents and cursor.
        """
        if self._deferred is not None:
            self._deferred.append((np.asarray(local_state, dtype=float),
                                   np.asarray(global_state, dtype=float),
                                   float(action), float(reward),
                                   np.asarray(next_local, dtype=float),
                                   np.asarray(next_global, dtype=float),
                                   float(done)))
        else:
            self.replay.add(local_state, global_state, np.array([action]),
                            reward, next_local, next_global, done)
        self.total_transitions += 1

    def set_deferred(self, deferred: bool) -> None:
        """Toggle deferred transition buffering (the batched-rollout mode).

        Turning it off flushes anything still pending.
        """
        if deferred:
            if self._deferred is None:
                self._deferred = []
        else:
            self.flush_transitions()
            self._deferred = None

    def flush_transitions(self) -> None:
        """Write all buffered transitions to replay in one block."""
        pending = self._deferred
        if not pending:
            return
        self.replay.add_batch(
            np.stack([t[0] for t in pending]),
            np.stack([t[1] for t in pending]),
            np.array([[t[2]] for t in pending]),
            np.array([t[3] for t in pending]),
            np.stack([t[4] for t in pending]),
            np.stack([t[5] for t in pending]),
            np.array([t[6] for t in pending]))
        pending.clear()

    @property
    def warm(self) -> bool:
        """Whether replay holds enough experience to start updating.

        Buffered-but-unflushed transitions count: the serial path would
        already have them in replay at the same point in the episode.
        """
        pending = len(self._deferred) if self._deferred is not None else 0
        return len(self.replay) + pending >= max(self.cfg.warmup_transitions,
                                                 self.cfg.batch_size)

    def update_burst(self) -> dict[str, float]:
        """Run one burst of ``model_update_steps`` gradient steps.

        The burst runs with NumPy float warnings silenced: a blow-up mid
        burst must reach the divergence guard as non-finite values, not
        as a stderr warning or (under ``np.errstate`` strictness) a raw
        FloatingPointError.  The guard then rolls back or raises a typed
        :class:`TrainingDivergedError`.
        """
        if not self.warm:
            return {"critic_loss": float("nan"), "actor_loss": float("nan")}
        self.flush_transitions()
        losses = {}
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for _ in range(self.cfg.update_steps):
                losses = self.td3.update(
                    self.replay.sample(self.cfg.batch_size))
                self.total_updates += 1
        self.guard.after_burst(losses)
        return losses

    def maybe_update(self, env_now_s: float) -> dict[str, float] | None:
        """Update burst if the env-time update interval elapsed."""
        if env_now_s - self._last_update_env_s < self.cfg.update_interval_s:
            return None
        self._last_update_env_s = env_now_s
        return self.update_burst()

    def reset_update_clock(self) -> None:
        """Start a new episode's env-time update schedule."""
        self._last_update_env_s = 0.0

    # ------------------------------------------------------------------

    def snapshot_policy(self, scheme: str = "astraea",
                        metadata: dict | None = None) -> PolicyBundle:
        """An immutable copy of the current actor as a PolicyBundle."""
        return PolicyBundle(
            actor=self.td3.actor.clone(),
            history=self.cfg.history_length,
            scheme=scheme,
            metadata=metadata,
        )

    def load_policy(self, bundle: PolicyBundle) -> None:
        """Warm-start the actor (and its target) from a bundle.

        Prefer :meth:`load_checkpoint` when one is available — an
        actor-only warm start leaves the critics random, which requires
        an actor-freeze warmup (``TrainingConfig.actor_warmup_updates``)
        to avoid destroying the warm policy.
        """
        if bundle.actor.in_dim != self.local_dim:
            raise ModelError(
                f"bundle input dim {bundle.actor.in_dim} != learner "
                f"local dim {self.local_dim}")
        self.td3.actor.set_state(bundle.actor.get_state())
        self.td3.actor_target.set_state(bundle.actor.get_state())
        self.guard.refresh()

    # ------------------------------------------------------------------

    _CHECKPOINT_NETS = ("actor", "critic1", "critic2", "actor_target",
                        "critic1_target", "critic2_target")

    def save_checkpoint(self, path: str | Path) -> Path:
        """Persist actor, critics and targets to one ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {}
        for net_name in self._CHECKPOINT_NETS:
            net = getattr(self.td3, net_name)
            for i, p in enumerate(net.get_state()):
                arrays[f"{net_name}__{i}"] = p
        meta = {
            "local_dim": self.local_dim,
            "global_dim": self.global_dim,
            "use_global": self.use_global,
            "hidden_layers": list(self.cfg.hidden_layers),
            "total_updates": self.total_updates,
        }
        np.savez(path, meta=json.dumps(meta), **arrays)
        return path

    def load_checkpoint(self, path: str | Path) -> None:
        """Restore a full checkpoint written by :meth:`save_checkpoint`."""
        path = Path(path)
        if not path.exists():
            raise ModelError(f"no checkpoint at {path}")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta["local_dim"] != self.local_dim or \
                    meta["global_dim"] != self.global_dim:
                raise ModelError(
                    "checkpoint dimensions do not match this learner")
            if meta["use_global"] != self.use_global:
                raise ModelError(
                    "checkpoint critic topology (use_global) mismatch")
            for net_name in self._CHECKPOINT_NETS:
                net = getattr(self.td3, net_name)
                n = len(net.get_state())
                state = [data[f"{net_name}__{i}"] for i in range(n)]
                net.set_state(state)
            self.total_updates = int(meta.get("total_updates", 0))
        self.guard.refresh()
