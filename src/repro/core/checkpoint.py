"""Crash-safe training checkpoints with bit-exact resume.

A training checkpoint captures *everything* the training loop needs to
continue as if the process had never died: all six TD3 networks, both
Adam optimisers (moments, step count, learning rate), the replay buffer
contents and cursor, the best-actor-so-far snapshot, the training
history, and the exact states of every random stream the loop consumes
(the scenario-sampling generator, the replay sampler, and the TD3
exploration/target-noise generator).  Together with the deterministic
per-``(seed, episode, flow)`` exploration streams of
:class:`~repro.env.episode.TrainFlowController`, restoring all of this
makes a resumed run produce bit-identical ``episode_rewards`` to an
uninterrupted one.

Write protocol (no torn checkpoints):

1. the array payload lands in a versioned ``state-ep*.npz`` written via
   temp-file + ``os.replace``;
2. the ``checkpoint.json`` manifest — naming that payload file and its
   SHA-256 — is atomically replaced;
3. payload files the manifest no longer references are deleted.

A kill between (1) and (2) leaves the manifest pointing at the previous
payload, which is still on disk: the resume simply continues from the
older checkpoint.  A manifest whose payload is missing or whose digest
does not match raises :class:`~repro.errors.CheckpointError`, as does
resuming under a :class:`~repro.config.TrainingConfig` that differs from
the one that produced the checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields
from pathlib import Path

import numpy as np

from ..config import TrainingConfig
from ..errors import CheckpointError
from ..persist import sha256_file, write_json
from .learner import Learner

CHECKPOINT_FORMAT = 1
MANIFEST_NAME = "checkpoint.json"

_REPLAY_ARRAYS = ("_local", "_global", "_action", "_reward",
                  "_next_local", "_next_global", "_done")


def config_fingerprint(cfg: TrainingConfig) -> str:
    """Content hash of a training config; resume requires an exact match."""
    blob = json.dumps(asdict(cfg), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class ResumeState:
    """What :func:`load_training_checkpoint` hands back to the train loop."""

    episode: int            # next episode index to run
    noise: float            # exploration noise at that point
    history_dict: dict      # TrainingHistory fields (loop rebuilds the object)
    best_state: list[np.ndarray]  # best-scoring actor parameters so far
    loop_state: dict        # extra loop counters (consecutive failures, ...)


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def _set_rng_state(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


def _atomic_savez(path: Path, arrays: dict[str, np.ndarray]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, path)


def save_training_checkpoint(directory: str | Path, *, learner: Learner,
                             rng: np.random.Generator, episode: int,
                             noise: float, history_dict: dict,
                             best_state: list[np.ndarray],
                             loop_state: dict | None = None) -> Path:
    """Write one complete checkpoint; returns the manifest path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload_name = f"state-ep{episode:06d}.npz"
    payload = directory / payload_name

    arrays: dict[str, np.ndarray] = {}
    td3_state = learner.td3.state_dict()
    for net_name, params in td3_state["nets"].items():
        for i, p in enumerate(params):
            arrays[f"net__{net_name}__{i}"] = p
    for opt_key in ("actor_opt", "critic_opt"):
        opt = td3_state[opt_key]
        for i, m in enumerate(opt["m"]):
            arrays[f"{opt_key}__m__{i}"] = m
        for i, v in enumerate(opt["v"]):
            arrays[f"{opt_key}__v__{i}"] = v
    replay = learner.replay
    size = len(replay)
    for name in _REPLAY_ARRAYS:
        arrays[f"replay{name}"] = getattr(replay, name)[:size]
    for i, p in enumerate(best_state):
        arrays[f"best__{i}"] = p
    _atomic_savez(payload, arrays)

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "payload": payload_name,
        "payload_sha256": sha256_file(payload),
        "episode": int(episode),
        "noise": float(noise),
        "history": history_dict,
        "loop_state": loop_state or {},
        "config": asdict(learner.cfg),
        "config_fingerprint": config_fingerprint(learner.cfg),
        "use_global": learner.use_global,
        "td3_updates": int(td3_state["updates"]),
        "opt_meta": {
            key: {"t": td3_state[key]["t"], "lr": td3_state[key]["lr"]}
            for key in ("actor_opt", "critic_opt")
        },
        "replay": {"size": size, "cursor": replay._cursor},
        "learner": {"total_updates": learner.total_updates,
                    "total_transitions": learner.total_transitions},
        "rng": {
            "loop": _rng_state(rng),
            "replay": _rng_state(replay._rng),
            "td3": _rng_state(learner.td3._rng),
        },
    }
    manifest_path = write_json(directory / MANIFEST_NAME, manifest)
    for stale in directory.glob("state-ep*.npz"):
        if stale.name != payload_name:
            stale.unlink(missing_ok=True)
    return manifest_path


def load_training_checkpoint(directory: str | Path, learner: Learner,
                             rng: np.random.Generator) -> ResumeState:
    """Restore a checkpoint into ``learner`` and ``rng``; returns the
    loop-level state the caller must adopt.

    Raises :class:`CheckpointError` on a missing/damaged checkpoint or a
    config mismatch.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint manifest: {exc}") from exc
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {manifest.get('format')!r}")
    if manifest.get("config_fingerprint") != config_fingerprint(learner.cfg):
        changed = _config_diff(manifest.get("config", {}), learner.cfg)
        raise CheckpointError(
            "checkpoint was written under a different TrainingConfig"
            + (f" (differs in: {', '.join(changed)})" if changed else ""))
    if manifest.get("use_global") != learner.use_global:
        raise CheckpointError("checkpoint critic topology (use_global) "
                              "does not match this learner")

    payload = directory / manifest["payload"]
    if not payload.exists():
        raise CheckpointError(f"checkpoint payload missing: {payload}")
    if sha256_file(payload) != manifest["payload_sha256"]:
        raise CheckpointError(
            f"checkpoint payload {payload.name} fails its SHA-256 check "
            "(truncated or corrupted write)")

    try:
        with np.load(payload, allow_pickle=False) as data:
            td3_state = {
                "nets": {}, "updates": manifest["td3_updates"],
            }
            for net_name in learner.td3.NETS:
                n = len(getattr(learner.td3, net_name).get_state())
                td3_state["nets"][net_name] = [
                    data[f"net__{net_name}__{i}"] for i in range(n)]
            for opt_key, opt in (("actor_opt", learner.td3.actor_opt),
                                 ("critic_opt", learner.td3.critic_opt)):
                n = len(opt.params)
                td3_state[opt_key] = {
                    "m": [data[f"{opt_key}__m__{i}"] for i in range(n)],
                    "v": [data[f"{opt_key}__v__{i}"] for i in range(n)],
                    "t": manifest["opt_meta"][opt_key]["t"],
                    "lr": manifest["opt_meta"][opt_key]["lr"],
                }
            learner.td3.load_state_dict(td3_state)

            replay = learner.replay
            size = int(manifest["replay"]["size"])
            if size > replay.capacity:
                raise CheckpointError(
                    "checkpoint replay buffer exceeds configured capacity")
            for name in _REPLAY_ARRAYS:
                stored = data[f"replay{name}"]
                if stored.shape[1:] != getattr(replay, name).shape[1:]:
                    raise CheckpointError(
                        f"checkpoint replay array {name} has incompatible "
                        "width for this learner")
                getattr(replay, name)[:size] = stored
            replay._size = size
            replay._cursor = int(manifest["replay"]["cursor"])

            n_best = sum(1 for k in data.files if k.startswith("best__"))
            best_state = [data[f"best__{i}"] for i in range(n_best)]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint payload is missing array {exc}") from exc

    learner.total_updates = int(manifest["learner"]["total_updates"])
    learner.total_transitions = int(manifest["learner"]["total_transitions"])
    _set_rng_state(rng, manifest["rng"]["loop"])
    _set_rng_state(replay._rng, manifest["rng"]["replay"])
    _set_rng_state(learner.td3._rng, manifest["rng"]["td3"])
    learner.guard.refresh()

    return ResumeState(
        episode=int(manifest["episode"]),
        noise=float(manifest["noise"]),
        history_dict=manifest["history"],
        best_state=best_state,
        loop_state=manifest.get("loop_state", {}),
    )


def _config_diff(stored: dict, cfg: TrainingConfig) -> list[str]:
    """Names of top-level config fields that differ (for error messages)."""
    current = asdict(cfg)
    names = []
    for f in fields(cfg):
        if json.dumps(stored.get(f.name), sort_keys=True, default=str) != \
                json.dumps(current.get(f.name), sort_keys=True, default=str):
            names.append(f.name)
    return names
