"""Crash-safe training checkpoints with bit-exact resume.

A training checkpoint captures *everything* the training loop needs to
continue as if the process had never died: all six TD3 networks, both
Adam optimisers (moments, step count, learning rate), the replay buffer
contents and cursor, the best-actor-so-far snapshot, the training
history, and the exact states of every random stream the loop consumes
(the scenario-sampling generator, the replay sampler, and the TD3
exploration/target-noise generator).  Together with the deterministic
per-``(seed, episode, flow)`` exploration streams of
:class:`~repro.env.episode.TrainFlowController`, restoring all of this
makes a resumed run produce bit-identical ``episode_rewards`` to an
uninterrupted one.

Write protocol (no torn checkpoints):

1. the array payload lands in a versioned ``state-ep*.npz`` written via
   temp-file + ``os.replace``;
2. the ``checkpoint.json`` manifest — naming the retained payload set
   (newest first, up to ``keep_last``) with per-payload SHA-256 and
   loop state — is atomically replaced;
3. payload files the manifest no longer references are deleted.

A kill between (1) and (2) leaves the manifest pointing at the previous
payload set, which is still on disk: the resume simply continues from
the older checkpoint.  Rotation (``keep_last > 1``) keeps the last N
payloads, each with its full loop state, and the resume loads the
*newest valid* one — a damaged or missing newest payload falls back to
the next-newest instead of failing the run.  Only when no retained
payload survives does :class:`~repro.errors.CheckpointError` rise, as
it does when resuming under a :class:`~repro.config.TrainingConfig`
that differs from the one that produced the checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields
from pathlib import Path

import numpy as np

from ..config import TrainingConfig
from ..errors import CheckpointError
from ..persist import sha256_file, write_json
from .learner import Learner

CHECKPOINT_FORMAT = 2
#: Formats this module can still resume from (1 = single-payload).
READABLE_FORMATS = (1, 2)
MANIFEST_NAME = "checkpoint.json"

_REPLAY_ARRAYS = ("_local", "_global", "_action", "_reward",
                  "_next_local", "_next_global", "_done")


def config_fingerprint(cfg: TrainingConfig) -> str:
    """Content hash of a training config; resume requires an exact match."""
    blob = json.dumps(asdict(cfg), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class ResumeState:
    """What :func:`load_training_checkpoint` hands back to the train loop."""

    episode: int            # next episode index to run
    noise: float            # exploration noise at that point
    history_dict: dict      # TrainingHistory fields (loop rebuilds the object)
    best_state: list[np.ndarray]  # best-scoring actor parameters so far
    loop_state: dict        # extra loop counters (consecutive failures, ...)


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def _set_rng_state(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


def _atomic_savez(path: Path, arrays: dict[str, np.ndarray]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, path)


def _prior_entries(directory: Path, fingerprint: str,
                   use_global: bool) -> list[dict]:
    """Entries of an existing manifest this run can legitimately extend.

    A manifest from a different config/topology (or a damaged one) is
    ignored: its payloads belong to another run and will be pruned.
    """
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return []
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, OSError):
        return []
    if manifest.get("format") not in READABLE_FORMATS:
        return []
    if manifest.get("config_fingerprint") != fingerprint or \
            manifest.get("use_global") != use_global:
        return []
    return _manifest_entries(manifest)


def _manifest_entries(manifest: dict) -> list[dict]:
    """The checkpoint entries of a manifest, newest first.

    Format 2 stores them under ``checkpoints``; a format-1 manifest is a
    single entry spread over the top level.
    """
    if manifest.get("format") == 1:
        keys = ("payload", "payload_sha256", "episode", "noise", "history",
                "loop_state", "td3_updates", "opt_meta", "replay", "learner",
                "rng")
        return [{k: manifest[k] for k in keys if k in manifest}]
    return list(manifest.get("checkpoints", []))


def save_training_checkpoint(directory: str | Path, *, learner: Learner,
                             rng: np.random.Generator, episode: int,
                             noise: float, history_dict: dict,
                             best_state: list[np.ndarray],
                             loop_state: dict | None = None,
                             keep_last: int = 1) -> Path:
    """Write one complete checkpoint; returns the manifest path.

    ``keep_last`` rotates payload files: the manifest names the retained
    set (this checkpoint plus up to ``keep_last - 1`` predecessors, each
    with its own loop state and SHA-256) and any older payloads are
    pruned from disk.
    """
    if keep_last < 1:
        raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload_name = f"state-ep{episode:06d}.npz"
    payload = directory / payload_name

    arrays: dict[str, np.ndarray] = {}
    td3_state = learner.td3.state_dict()
    for net_name, params in td3_state["nets"].items():
        for i, p in enumerate(params):
            arrays[f"net__{net_name}__{i}"] = p
    for opt_key in ("actor_opt", "critic_opt"):
        opt = td3_state[opt_key]
        for i, m in enumerate(opt["m"]):
            arrays[f"{opt_key}__m__{i}"] = m
        for i, v in enumerate(opt["v"]):
            arrays[f"{opt_key}__v__{i}"] = v
    replay = learner.replay
    size = len(replay)
    for name in _REPLAY_ARRAYS:
        arrays[f"replay{name}"] = getattr(replay, name)[:size]
    for i, p in enumerate(best_state):
        arrays[f"best__{i}"] = p

    fingerprint = config_fingerprint(learner.cfg)
    prior = _prior_entries(directory, fingerprint, learner.use_global)
    _atomic_savez(payload, arrays)

    entry = {
        "payload": payload_name,
        "payload_sha256": sha256_file(payload),
        "episode": int(episode),
        "noise": float(noise),
        "history": history_dict,
        "loop_state": loop_state or {},
        "td3_updates": int(td3_state["updates"]),
        "opt_meta": {
            key: {"t": td3_state[key]["t"], "lr": td3_state[key]["lr"]}
            for key in ("actor_opt", "critic_opt")
        },
        "replay": {"size": size, "cursor": replay._cursor},
        "learner": {"total_updates": learner.total_updates,
                    "total_transitions": learner.total_transitions},
        "rng": {
            "loop": _rng_state(rng),
            "replay": _rng_state(replay._rng),
            "td3": _rng_state(learner.td3._rng),
        },
    }
    entries = [entry] + [e for e in prior
                         if e.get("payload") != payload_name]
    entries = entries[:keep_last]
    retained = {e["payload"] for e in entries}

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "config": asdict(learner.cfg),
        "config_fingerprint": fingerprint,
        "use_global": learner.use_global,
        # Mirror of the newest entry's identity, for humans and tools.
        "payload": payload_name,
        "episode": int(episode),
        "checkpoints": entries,
    }
    manifest_path = write_json(directory / MANIFEST_NAME, manifest)
    for stale in directory.glob("state-ep*.npz"):
        if stale.name not in retained:
            stale.unlink(missing_ok=True)
    return manifest_path


def _select_entry(directory: Path, entries: list[dict]) -> dict:
    """The newest entry whose payload exists and passes its digest.

    Rotation keeps several payloads precisely so that a damaged newest
    one degrades to the next-newest instead of killing the resume; the
    exhausted case reports every candidate's failure.
    """
    failures = []
    for entry in entries:
        payload = directory / entry["payload"]
        if not payload.exists():
            failures.append(f"{entry['payload']}: missing")
            continue
        if sha256_file(payload) != entry["payload_sha256"]:
            failures.append(f"{entry['payload']}: SHA-256 mismatch "
                            "(truncated or corrupted write)")
            continue
        return entry
    raise CheckpointError(
        "no retained checkpoint payload is loadable: " + "; ".join(failures)
        if failures else "checkpoint manifest names no payloads")


def load_training_checkpoint(directory: str | Path, learner: Learner,
                             rng: np.random.Generator) -> ResumeState:
    """Restore a checkpoint into ``learner`` and ``rng``; returns the
    loop-level state the caller must adopt.

    Loads the newest *valid* retained payload (rotation keeps up to
    ``keep_last``).  Raises :class:`CheckpointError` when none is
    loadable, the manifest is damaged, or the config does not match.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint manifest: {exc}") from exc
    if manifest.get("format") not in READABLE_FORMATS:
        raise CheckpointError(
            f"unsupported checkpoint format {manifest.get('format')!r}")
    if manifest.get("config_fingerprint") != config_fingerprint(learner.cfg):
        changed = _config_diff(manifest.get("config", {}), learner.cfg)
        raise CheckpointError(
            "checkpoint was written under a different TrainingConfig"
            + (f" (differs in: {', '.join(changed)})" if changed else ""))
    if manifest.get("use_global") != learner.use_global:
        raise CheckpointError("checkpoint critic topology (use_global) "
                              "does not match this learner")

    entry = _select_entry(directory, _manifest_entries(manifest))
    payload = directory / entry["payload"]

    try:
        with np.load(payload, allow_pickle=False) as data:
            td3_state = {
                "nets": {}, "updates": entry["td3_updates"],
            }
            for net_name in learner.td3.NETS:
                n = len(getattr(learner.td3, net_name).get_state())
                td3_state["nets"][net_name] = [
                    data[f"net__{net_name}__{i}"] for i in range(n)]
            for opt_key, opt in (("actor_opt", learner.td3.actor_opt),
                                 ("critic_opt", learner.td3.critic_opt)):
                n = len(opt.params)
                td3_state[opt_key] = {
                    "m": [data[f"{opt_key}__m__{i}"] for i in range(n)],
                    "v": [data[f"{opt_key}__v__{i}"] for i in range(n)],
                    "t": entry["opt_meta"][opt_key]["t"],
                    "lr": entry["opt_meta"][opt_key]["lr"],
                }
            learner.td3.load_state_dict(td3_state)

            replay = learner.replay
            size = int(entry["replay"]["size"])
            if size > replay.capacity:
                raise CheckpointError(
                    "checkpoint replay buffer exceeds configured capacity")
            for name in _REPLAY_ARRAYS:
                stored = data[f"replay{name}"]
                if stored.shape[1:] != getattr(replay, name).shape[1:]:
                    raise CheckpointError(
                        f"checkpoint replay array {name} has incompatible "
                        "width for this learner")
                getattr(replay, name)[:size] = stored
            replay._size = size
            replay._cursor = int(entry["replay"]["cursor"])

            n_best = sum(1 for k in data.files if k.startswith("best__"))
            best_state = [data[f"best__{i}"] for i in range(n_best)]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint payload is missing array {exc}") from exc

    learner.total_updates = int(entry["learner"]["total_updates"])
    learner.total_transitions = int(entry["learner"]["total_transitions"])
    _set_rng_state(rng, entry["rng"]["loop"])
    _set_rng_state(replay._rng, entry["rng"]["replay"])
    _set_rng_state(learner.td3._rng, entry["rng"]["td3"])
    learner.guard.refresh()

    return ResumeState(
        episode=int(entry["episode"]),
        noise=float(entry["noise"]),
        history_dict=entry["history"],
        best_state=best_state,
        loop_state=entry.get("loop_state", {}),
    )


def _config_diff(stored: dict, cfg: TrainingConfig) -> list[str]:
    """Names of top-level config fields that differ (for error messages)."""
    current = asdict(cfg)
    names = []
    for f in fields(cfg):
        if json.dumps(stored.get(f.name), sort_keys=True, default=str) != \
                json.dumps(current.get(f.name), sort_keys=True, default=str):
            names.append(f.name)
    return names
