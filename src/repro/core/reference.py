"""Analytic reference policy with the learned policy's structure (§5.5).

Fig. 17 of the paper visualises what the trained model converges to: for
every flow the action *decreases monotonically with observed delay*,
crossing zero at an equilibrium delay that depends on the flow's
throughput; because all flows sharing a bottleneck observe the same
queueing delay, flows on the wrong side of their equilibrium shed or gain
bandwidth until everyone sits at the common fair point.

``AstraeaReference`` distils exactly that structure into a closed-form
controller in Astraea's own action space (Eq. 3 window updates, action in
[-1, 1]):

* it estimates its own queued backlog ``diff = cwnd * (1 - rtt_min/rtt)``
  (the delay signal),
* drives it toward a fixed per-flow target backlog.  Every flow holding the
  same absolute backlog pins the fair share exactly (a flow's throughput is
  proportional to its share of the bottleneck queue), and makes the
  zero-crossing delay ``rtt_min * (1 + target/cwnd)`` — *lower* for
  higher-throughput flows, which is the orientation that makes the
  bandwidth-transfer argument of §5.5 self-consistent and stable
  (EXPERIMENTS.md discusses the sign convention),
* tolerates random loss below one percent (loss resilience, App. B.2) and
  backs off sharply on heavy loss or bufferbloat,
* hands over from a standard slow-start ramp on connection start, exactly
  as the kernel-TCP integration of §4 does before the agent's bounded
  multiplicative updates take over.

It serves three roles: a deterministic test oracle for the environment, a
calibrated fallback when no trained bundle is available, and the
interpretation baseline for the Fig. 17 benchmark.
"""

from __future__ import annotations

import numpy as np

from ..cc.base import CongestionController, Decision, register
from ..config import ACTION_ALPHA, MTP_S
from ..netsim.stats import MtpStats
from .action import apply_action, pacing_from_cwnd


@register("astraea-ref")
class AstraeaReference(CongestionController):
    """Closed-form embodiment of the learned Astraea policy structure."""

    GAIN = 1.0
    TARGET_PKTS = 5.0           # per-flow queued-backlog target
    LOSS_TOLERANCE = 0.01       # below this, loss is treated as stochastic
    LOSS_BACKOFF_GAIN = 30.0
    BUFFERBLOAT_RATIO = 3.0     # rtt above this multiple of base forces backoff
    SLOW_START_GROWTH = 1.5     # per-interval growth during handover
    RTT_WINDOW_S = 10.0         # sliding window for the rtt_min filter
    PROBE_INTERVAL_S = 5.0      # how often the policy drains to re-sample rtt_min
    PROBE_INTERVALS = 3         # drain duration in monitoring intervals

    def __init__(self, mtp_s: float = MTP_S, alpha: float = ACTION_ALPHA,
                 use_pacing: bool = True, slow_start: bool = True,
                 target_pkts: float | None = None):
        super().__init__(mtp_s)
        self.alpha = alpha
        self.use_pacing = use_pacing
        self.slow_start_enabled = slow_start
        self.target_pkts = target_pkts if target_pkts is not None \
            else self.TARGET_PKTS
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self._rtt_samples: list[tuple[float, float]] = []
        self._in_slow_start = self.slow_start_enabled
        self._next_probe_s: float | None = None
        self._drain_left = 0

    # ------------------------------------------------------------------

    def _rtt_min(self, now: float, sample: float) -> float:
        """Sliding-window minimum RTT, so stale baselines expire.

        A late joiner never sees an empty queue, so a lifetime minimum would
        overestimate the base RTT and make it hold extra backlog; periodic
        drains (below) plus this window keep the estimate honest.
        """
        self._rtt_samples.append((now, sample))
        horizon = now - self.RTT_WINDOW_S
        self._rtt_samples = [(t, r) for t, r in self._rtt_samples
                             if t >= horizon]
        return min(r for _, r in self._rtt_samples)

    def _signals(self, stats: MtpStats) -> tuple[float, float, float]:
        """(rtt_min, rtt, own queued backlog) from the latest MTP."""
        rtt_min = self._rtt_min(stats.time_s, stats.min_rtt_s)
        rtt = max(stats.avg_rtt_s, rtt_min)
        diff = stats.cwnd_pkts * (1.0 - rtt_min / rtt)
        return rtt_min, rtt, diff

    def policy_action(self, rtt_min: float, rtt: float, diff: float,
                      loss_rate: float) -> float:
        """The closed-form policy: action in [-1, 1] from the raw signals.

        Pure function of its arguments — no probe/drain bookkeeping — so
        it can label states for distillation
        (:func:`repro.core.distill.collect_reference_dataset`) as well as
        drive :meth:`action_for`.
        """
        action = self.GAIN * (self.target_pkts - diff) / self.target_pkts
        # Loss response: tolerate stochastic loss, back off on congestion loss.
        if loss_rate > self.LOSS_TOLERANCE:
            backoff = min(self.LOSS_BACKOFF_GAIN * loss_rate, 1.0)
            action = min(action, -backoff)
        # Bufferbloat guard.
        if rtt > self.BUFFERBLOAT_RATIO * rtt_min:
            action = min(action, -0.5)
        return float(np.clip(action, -1.0, 1.0))

    def peek_action(self, stats: MtpStats) -> float:
        """The policy's action for ``stats`` without mutating any state.

        Unlike :meth:`action_for` this neither advances the probe-drain
        schedule nor pushes into the sliding RTT window, so it can be
        called alongside the live controller (the distillation recorder
        does exactly that).
        """
        horizon = stats.time_s - self.RTT_WINDOW_S
        samples = [r for t, r in self._rtt_samples if t >= horizon]
        rtt_min = min(samples + [stats.min_rtt_s])
        rtt = max(stats.avg_rtt_s, rtt_min)
        diff = stats.cwnd_pkts * (1.0 - rtt_min / rtt)
        return self.policy_action(rtt_min, rtt, diff, stats.loss_rate)

    def action_for(self, stats: MtpStats) -> float:
        """The policy's raw action in [-1, 1] (exposed for Fig. 17)."""
        rtt_min, rtt, diff = self._signals(stats)

        # Periodic short drain: briefly shed window so the bottleneck queue
        # empties and every flow re-samples the true base RTT (the same
        # role BBR's PROBE_RTT plays).
        now = stats.time_s
        if self._next_probe_s is None:
            self._next_probe_s = now + self.PROBE_INTERVAL_S
        if now >= self._next_probe_s:
            self._drain_left = self.PROBE_INTERVALS
            self._next_probe_s = now + self.PROBE_INTERVAL_S
        if self._drain_left > 0:
            self._drain_left -= 1
            return -1.0

        return self.policy_action(rtt_min, rtt, diff, stats.loss_rate)

    def on_interval(self, stats: MtpStats) -> Decision:
        if self._in_slow_start:
            _, _, diff = self._signals(stats)
            congested = (diff > 2.0 * self.target_pkts
                         or stats.loss_rate > self.LOSS_TOLERANCE)
            if congested:
                # Hand over to the policy, undoing the last overshoot.
                self._in_slow_start = False
                self.cwnd = max(self.cwnd / self.SLOW_START_GROWTH, 2.0)
            else:
                # ACK-clocked growth: at most one packet per delivered ACK.
                self.cwnd = min(self.cwnd * self.SLOW_START_GROWTH,
                                self.cwnd + max(stats.delivered_pkts, 1.0))
                pacing = pacing_from_cwnd(self.cwnd, max(stats.srtt_s, 1e-6)) \
                    if self.use_pacing else None
                return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)
        action = self.action_for(stats)
        self.cwnd = apply_action(self.cwnd, action, self.alpha)
        pacing = pacing_from_cwnd(self.cwnd, max(stats.srtt_s, 1e-6)) \
            if self.use_pacing else None
        return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)
