"""State block (§3.3): local per-flow features and the global state.

The local state contains the eight normalised statistics the paper lists,
computed per MTP and stacked over a ``w``-deep history (Table 4: w=5).
All ratios are normalised so the agent sees similar inputs across network
conditions; the raw maximum-throughput and minimum-latency features are
kept (scaled to O(1) units) so the agent can still discriminate network
characteristics — e.g. act more conservatively on high-RTT links.

The global state follows Table 2 exactly: aggregated throughput / latency /
cwnd statistics across all active flows plus the link's base delay, buffer
size and bandwidth.  It is consumed only by the centralised critic during
training and never by the deployed policy.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..config import HISTORY_LENGTH, LinkConfig
from ..errors import ModelError
from ..netsim.stats import MtpStats
from ..units import mbps_to_pps, pps_to_mbps

LOCAL_FEATURES = 8
GLOBAL_FEATURES = 12

# Scales that bring raw quantities to O(1); shared by training & inference.
_THR_MAX_SCALE_MBPS = 200.0
_LAT_SCALE_S = 0.2
_NUM_FLOW_SCALE = 10.0
_BUFFER_BDP_SCALE = 8.0
_RATIO_CLIP = 6.0


def local_feature_vector(stats: MtpStats, thr_max_pps: float,
                         lat_min_s: float) -> np.ndarray:
    """The eight per-MTP local features of §3.3."""
    thr_max = max(thr_max_pps, 1e-6)
    lat_min = max(lat_min_s, 1e-6)
    bdp_est = max(thr_max * lat_min, 1e-6)
    features = np.array([
        stats.throughput_pps / thr_max,                       # thr ratio
        pps_to_mbps(thr_max) / _THR_MAX_SCALE_MBPS,           # thr_max (raw)
        stats.avg_rtt_s / lat_min,                            # latency ratio
        lat_min / _LAT_SCALE_S,                               # lat_min (raw)
        stats.cwnd_pkts / bdp_est,                            # relative cwnd
        stats.loss_pps / thr_max,                             # loss ratio
        stats.pkts_in_flight / max(stats.cwnd_pkts, 1.0),     # inflight ratio
        stats.pacing_pps / thr_max,                           # pacing ratio
    ])
    return np.clip(features, 0.0, _RATIO_CLIP)


class LocalStateBlock:
    """Per-flow feature extractor with a ``w``-deep history stack.

    Tracks the flow's historical maximum throughput and minimum latency,
    produces the 8-feature vector per MTP, and stacks the last ``w``
    vectors as the model input (dimension ``8 * w``).
    """

    def __init__(self, history: int = HISTORY_LENGTH):
        if history <= 0:
            raise ModelError("history length must be positive")
        self.history = history
        self.reset()

    @property
    def input_dim(self) -> int:
        return LOCAL_FEATURES * self.history

    def reset(self) -> None:
        self._frames: deque[np.ndarray] = deque(maxlen=self.history)
        self.thr_max_pps = 0.0
        self.lat_min_s = float("inf")
        self.thr_history_pps: deque[float] = deque(maxlen=self.history)

    def update(self, stats: MtpStats) -> np.ndarray:
        """Fold one MTP of statistics; returns the stacked input vector."""
        self.thr_max_pps = max(self.thr_max_pps, stats.throughput_pps)
        self.lat_min_s = min(self.lat_min_s, stats.min_rtt_s)
        if self.lat_min_s == float("inf") or self.lat_min_s <= 0:
            self.lat_min_s = max(stats.srtt_s, 1e-3)
        self.thr_history_pps.append(stats.throughput_pps)
        frame = local_feature_vector(stats, self.thr_max_pps, self.lat_min_s)
        self._frames.append(frame)
        return self.input_vector()

    def input_vector(self) -> np.ndarray:
        """Current stacked history, zero-padded on the left if young."""
        frames = list(self._frames)
        pad = self.history - len(frames)
        if pad > 0:
            frames = [np.zeros(LOCAL_FEATURES)] * pad + frames
        return np.concatenate(frames)

    def avg_throughput_pps(self) -> float:
        """Mean throughput over the last ``w`` MTPs (Eq. 7)."""
        if not self.thr_history_pps:
            return 0.0
        return float(np.mean(self.thr_history_pps))

    def throughput_std_pps(self) -> float:
        """Std-dev of throughput over the last ``w`` MTPs (for R_stab)."""
        if len(self.thr_history_pps) < 2:
            return 0.0
        return float(np.std(self.thr_history_pps))


def global_state_vector(flow_stats: list[MtpStats], link: LinkConfig,
                        ) -> np.ndarray:
    """The Table 2 global state, normalised to O(1) features.

    ``flow_stats`` holds the most recent MTP record of every active flow.
    """
    c_pps = mbps_to_pps(link.bandwidth_mbps)
    bdp = max(c_pps * link.rtt_s, 1e-6)
    if not flow_stats:
        thr = lat = cwnd = loss = np.zeros(1)
        n = 0
    else:
        thr = np.array([s.throughput_pps for s in flow_stats])
        lat = np.array([s.avg_rtt_s for s in flow_stats])
        cwnd = np.array([s.cwnd_pkts for s in flow_stats])
        loss = np.array([s.loss_rate for s in flow_stats])
        n = len(flow_stats)
    vec = np.array([
        thr.sum() / c_pps,                                    # ovr_thr
        thr.min() / c_pps,                                    # min_thr
        thr.max() / c_pps,                                    # max_thr
        min(lat.mean() / link.rtt_s, _RATIO_CLIP),            # avg_lat
        cwnd.min() / bdp,                                     # min_cwnd
        cwnd.max() / bdp,                                     # max_cwnd
        cwnd.mean() / bdp,                                    # avg_cwnd
        loss.mean(),                                          # loss_ratio
        n / _NUM_FLOW_SCALE,                                  # num_flow
        link.one_way_delay_s / (_LAT_SCALE_S / 2.0),          # d0
        link.buffer_size_packets / bdp / _BUFFER_BDP_SCALE,   # buf
        link.bandwidth_mbps / _THR_MAX_SCALE_MBPS,            # c
    ])
    return np.clip(vec, 0.0, _RATIO_CLIP)
