"""Model-artifact integrity: checksummed manifest and verification.

The repo ships pretrained policy bundles (``repro/models/*.npz``) whose
corruption is exactly the deployment-fragility failure mode experimental
studies of learning-based CC warn about: a damaged artifact must be
*detected* (checksums, structural validation) and *survivable* (the
fallback chain in :func:`repro.core.policy.load_default_policy`).  This
module is the detection half:

* ``MANIFEST.json`` next to the bundles records every shipped artifact's
  SHA-256, size and provenance.
* :func:`verify_models` checks each manifest entry end-to-end — file
  present, digest matches, zip container intact, bundle loads and
  validates — and flags ``.npz`` files present on disk but absent from
  the manifest.
* :func:`update_manifest` re-stamps entries after regeneration
  (``python -m repro models regenerate``).

``python -m repro models verify`` exposes this as a CI gate: any status
other than ``ok`` exits non-zero naming the offending file.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import (
    CorruptModelError,
    ModelError,
    ModelValidationError,
)


def _persist():
    # Imported lazily: repro.persist pulls in the whole env package, which
    # itself imports repro.core (this package) at import time.
    from .. import persist

    return persist

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1


def models_dir(override: str | Path | None = None) -> Path:
    """The directory holding shipped bundles (default: the package's)."""
    if override is not None:
        return Path(override)
    from .policy import MODELS_DIR

    return MODELS_DIR


def manifest_path(directory: str | Path | None = None) -> Path:
    return models_dir(directory) / MANIFEST_NAME


def load_manifest(directory: str | Path | None = None) -> dict:
    """Parse ``MANIFEST.json``; raises typed errors on damage.

    Returns the manifest document (``{"version": ..., "artifacts":
    {name: entry}}``).  A missing manifest raises
    :class:`~repro.errors.ModelError`; an unparsable or ill-formed one
    raises :class:`~repro.errors.ModelValidationError`.
    """
    path = manifest_path(directory)
    if not path.exists():
        raise ModelError(f"no manifest at {path}")
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ModelValidationError(
            f"{path}: manifest is not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("artifacts"), dict):
        raise ModelValidationError(
            f"{path}: manifest must be an object with an 'artifacts' map")
    for name, entry in doc["artifacts"].items():
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("sha256"), str):
            raise ModelValidationError(
                f"{path}: artifact entry {name!r} lacks a sha256 digest")
    return doc


def manifest_entry(path: str | Path, **provenance: object) -> dict:
    """A manifest record for one artifact file as it exists on disk."""
    path = Path(path)
    entry = {
        "sha256": _persist().sha256_file(path),
        "size_bytes": path.stat().st_size,
    }
    entry.update(provenance)
    return entry


def update_manifest(names_to_entries: dict[str, dict],
                    directory: str | Path | None = None) -> Path:
    """Merge entries into the manifest (creating it if absent)."""
    try:
        doc = load_manifest(directory)
    except ModelError:
        doc = {"version": MANIFEST_VERSION, "artifacts": {}}
    doc["version"] = MANIFEST_VERSION
    doc["artifacts"].update(names_to_entries)
    doc["artifacts"] = dict(sorted(doc["artifacts"].items()))
    return _persist().write_json(manifest_path(directory), doc)


# ----------------------------------------------------------------------


@dataclass
class ArtifactCheck:
    """Outcome of verifying one artifact."""

    name: str
    status: str           # ok | missing | checksum-mismatch | corrupt |
                          # invalid | unlisted
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class VerifyReport:
    """Outcome of verifying a whole models directory."""

    checks: list[ArtifactCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[ArtifactCheck]:
        return [c for c in self.checks if not c.ok]


def validate_bundle_file(path: str | Path) -> None:
    """Structurally validate one ``.npz`` bundle; raises typed errors.

    Checks the zip container first (cheap, catches truncation without
    parsing arrays), then performs a full
    :meth:`~repro.core.policy.PolicyBundle.load` round-trip.
    """
    from .policy import PolicyBundle

    path = Path(path)
    if not path.exists():
        raise ModelError(f"no policy bundle at {path}")
    if not zipfile.is_zipfile(path):
        raise CorruptModelError(f"{path}: not a zip container (truncated or "
                                f"overwritten .npz)")
    PolicyBundle.load(path)


def verify_models(directory: str | Path | None = None) -> VerifyReport:
    """Verify every manifest-listed artifact plus stray ``.npz`` files."""
    directory = models_dir(directory)
    report = VerifyReport()
    try:
        doc = load_manifest(directory)
    except ModelError as exc:
        report.checks.append(
            ArtifactCheck(name=MANIFEST_NAME, status="invalid",
                          detail=str(exc)))
        doc = {"artifacts": {}}
    listed = doc["artifacts"]
    for name, entry in listed.items():
        path = directory / name
        if not path.exists():
            report.checks.append(
                ArtifactCheck(name=name, status="missing",
                              detail="listed in manifest, absent on disk"))
            continue
        digest = _persist().sha256_file(path)
        if digest != entry["sha256"]:
            report.checks.append(ArtifactCheck(
                name=name, status="checksum-mismatch",
                detail=f"manifest {entry['sha256'][:12]}…, "
                       f"disk {digest[:12]}…"))
            continue
        if path.suffix == ".npz":
            try:
                validate_bundle_file(path)
            except CorruptModelError as exc:
                report.checks.append(ArtifactCheck(
                    name=name, status="corrupt", detail=str(exc)))
                continue
            except ModelError as exc:
                report.checks.append(ArtifactCheck(
                    name=name, status="invalid", detail=str(exc)))
                continue
        report.checks.append(ArtifactCheck(name=name, status="ok"))
    for path in sorted(directory.glob("*.npz")):
        if path.name not in listed:
            report.checks.append(ArtifactCheck(
                name=path.name, status="unlisted",
                detail="on disk but not covered by the manifest"))
    return report
