"""Offline training drivers (§3.4 + Appendix A).

:func:`train_astraea` runs the full multi-agent training: every episode
samples a fresh environment from the Table 3 ranges (bandwidth, base RTT,
buffer factor, 2-5 flows with randomised starts, durations and RTT
heterogeneity), collects shared-policy experience with exploration noise,
and updates actor/critics on the Table 4 cadence.  Periodic greedy
evaluations on held-out scenarios track the best policy seen, which is
what gets bundled.

:func:`train_aurora` reuses the identical harness but with single-flow
episodes and Aurora's *local* Eq. 1 reward — which is precisely how the
original Aurora is trained, and why the resulting policy is unfair under
competition (Fig. 1a).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..config import (
    FlowConfig,
    LinkConfig,
    RewardConfig,
    ScenarioConfig,
    TrainingConfig,
)
from ..errors import (
    SimulationError,
    TrainingDivergedError,
    TrainingInstabilityWarning,
)
from ..netsim.flowgen import randomized_training_flows, staggered_flows
from .learner import Learner
from .policy import PolicyBundle


@dataclass
class TrainingHistory:
    """Per-episode and per-evaluation records of a training run."""

    episode_rewards: list[float] = field(default_factory=list)
    eval_episodes: list[int] = field(default_factory=list)
    eval_jain: list[float] = field(default_factory=list)
    eval_utilization: list[float] = field(default_factory=list)
    eval_score: list[float] = field(default_factory=list)
    best_score: float = float("-inf")
    best_episode: int = -1
    wall_time_s: float = 0.0
    #: Episodes quarantined by the fault-isolation wrapper (their reward
    #: slot holds NaN so episode indices stay aligned with the list).
    failed_episodes: list[int] = field(default_factory=list)


CROSS_TRAFFIC_PROB = 0.35
"""Fraction of training episodes that include an unresponsive or CUBIC
competitor.  Competing against flows the agents cannot drain from the
queue is what teaches the policy to hold its ground instead of yielding
like a pure delay-based scheme (the TCP-friendliness property, §5.3.1)."""


def sample_training_scenario(cfg: TrainingConfig, rng: np.random.Generator,
                             cross_traffic: bool = True,
                             fault_prob: float | None = None,
                             ) -> ScenarioConfig:
    """One randomised training environment from the Table 3 ranges.

    ``fault_prob`` (default: ``cfg.fault_prob``) is the probability that
    the episode carries a sampled :class:`~repro.netsim.faults.FaultSchedule`
    — link blackouts, bandwidth flaps, loss bursts, delay spikes —
    hardening the policy against impairments the Table 3 ranges never
    produce.  With a probability of 0 the random stream is consumed
    exactly as before the fault subsystem existed, so fault-free runs
    stay bit-compatible with older ones.
    """
    bw = float(np.exp(rng.uniform(np.log(cfg.bandwidth_mbps[0]),
                                  np.log(cfg.bandwidth_mbps[1]))))
    rtt = float(rng.uniform(*cfg.rtt_ms))
    buf = float(np.exp(rng.uniform(np.log(cfg.buffer_bdp[0]),
                                   np.log(cfg.buffer_bdp[1]))))
    n = int(rng.integers(cfg.flow_count[0], cfg.flow_count[1] + 1))
    seed = int(rng.integers(0, 2 ** 31 - 1))
    link = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=buf)
    flows = list(randomized_training_flows(n, cfg.episode_duration_s,
                                           seed=seed))
    if cross_traffic and rng.random() < CROSS_TRAFFIC_PROB:
        if rng.random() < 0.5:
            competitor = FlowConfig(
                cc="cubic", start_s=0.0, duration_s=cfg.episode_duration_s)
        else:
            competitor = FlowConfig(
                cc="constant-rate", start_s=0.0,
                duration_s=cfg.episode_duration_s,
                cc_kwargs={"rate_mbps": float(bw * rng.uniform(0.2, 0.5))})
        flows.append(competitor)
    faults = None
    fault_prob = cfg.fault_prob if fault_prob is None else fault_prob
    if fault_prob > 0.0 and rng.random() < fault_prob:
        from ..netsim.faults import FaultSchedule

        faults = FaultSchedule.sample(cfg.episode_duration_s,
                                      seed=int(rng.integers(0, 2 ** 31 - 1)))
    return ScenarioConfig(link=link, flows=tuple(flows),
                          duration_s=cfg.episode_duration_s, seed=seed,
                          faults=faults)


def _random_initial_cwnds(link: LinkConfig, n: int,
                          rng: np.random.Generator) -> list[float]:
    """Log-uniform initial windows between 4 packets and 2x the link BDP.

    Randomised starting windows give the replay buffer coverage of the
    whole operating range long before the (slow, multiplicative) policy
    random-walk could reach it.
    """
    bdp = link.buffer_size_packets / max(link.buffer_bdp, 1e-6)
    hi = max(2.0 * bdp, 16.0)
    return [float(np.exp(rng.uniform(np.log(4.0), np.log(hi))))
            for _ in range(n)]


def evaluate_policy(bundle: PolicyBundle, bandwidth_mbps: float = 100.0,
                    rtt_ms: float = 30.0, n_flows: int = 3,
                    duration_s: float = 60.0, interval_s: float = 15.0,
                    rtt_range_ms: tuple[float, float] | None = None,
                    ) -> dict[str, float]:
    """Greedy-policy evaluation on a multi-flow scenario.

    By default flows are homogeneous and staggered; passing
    ``rtt_range_ms`` instead starts ``n_flows`` long-running flows with
    base RTTs evenly spanning the range (the Fig. 8 RTT-fairness shape).
    """
    from ..env import run_scenario
    from ..netsim.flowgen import heterogeneous_rtt_flows
    from .astraea import AstraeaController

    link = LinkConfig(bandwidth_mbps=bandwidth_mbps, rtt_ms=rtt_ms,
                      buffer_bdp=1.0)
    if rtt_range_ms is not None:
        flows = heterogeneous_rtt_flows(n_flows, "astraea", rtt_range_ms,
                                        link_rtt_ms=rtt_ms)
    else:
        flow_len = duration_s - interval_s * (n_flows - 1) / 2.0
        flows = staggered_flows(n_flows, cc="astraea", interval_s=interval_s,
                                duration_s=flow_len)
    scenario = ScenarioConfig(link=link, flows=flows, duration_s=duration_s)
    controllers = [AstraeaController(policy=bundle) for _ in flows]
    result = run_scenario(scenario, controllers=controllers)
    jain = result.mean_jain()
    util = result.utilization()
    rtt_ratio = result.mean_rtt_s() / link.rtt_s
    loss = result.mean_loss_rate()
    score = (jain if np.isfinite(jain) else 0.0) * min(util, 1.0) \
        - 0.05 * max(rtt_ratio - 2.0, 0.0) - 0.5 * loss
    return {"jain": jain, "utilization": util, "rtt_ratio": rtt_ratio,
            "loss": loss, "score": score}


#: Held-out evaluation scenarios used to select the best checkpoint; the
#: second config guards against overfitting the canonical 100/30 setting.
EVAL_SCENARIOS = (
    {"bandwidth_mbps": 100.0, "rtt_ms": 30.0, "n_flows": 3,
     "duration_s": 60.0, "interval_s": 15.0},
    {"bandwidth_mbps": 60.0, "rtt_ms": 80.0, "n_flows": 3,
     "duration_s": 50.0, "interval_s": 12.0},
    # RTT heterogeneity (the Fig. 8 shape): 4 flows, 30-150 ms base RTT.
    {"bandwidth_mbps": 100.0, "rtt_ms": 30.0, "n_flows": 4,
     "duration_s": 50.0, "rtt_range_ms": (30.0, 150.0)},
)


def evaluate_friendliness(bundle: PolicyBundle,
                          duration_s: float = 40.0) -> float:
    """Throughput ratio of one Astraea flow against one CUBIC flow.

    1.0 is perfectly friendly; near 0 means the policy yields like a pure
    delay-based scheme; >> 1 means it bullies AIMD traffic.
    """
    from ..env import run_scenario
    from .astraea import AstraeaController

    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc="astraea", start_s=0.0),
             FlowConfig(cc="cubic", start_s=0.0))
    scenario = ScenarioConfig(link=link, flows=flows, duration_s=duration_s)
    controllers = [AstraeaController(policy=bundle), None]
    result = run_scenario(scenario, controllers=controllers)
    skip = duration_s / 3.0
    mine = result.flow_mean_throughput(0, skip_s=skip)
    cubic = result.flow_mean_throughput(1, skip_s=skip)
    return float(mine / max(cubic, 1e-6))


def _eval_task(payload) -> dict[str, float] | float:
    """Module-level evaluation worker (spawn-picklable for parallel_map).

    Each payload carries the policy bundle plus either one held-out
    scenario spec or the friendliness probe — fully self-contained, so
    evaluations run identically in-process or on a pool worker.
    """
    bundle, kind, spec = payload
    if kind == "policy":
        return evaluate_policy(bundle, **spec)
    return evaluate_friendliness(bundle)


def _describe_eval(payload) -> str:
    _, kind, spec = payload
    return f"eval {kind}" + (f" {spec}" if spec else "")


def evaluate_policy_multi(bundle: PolicyBundle,
                          workers: int | None = None) -> dict[str, float]:
    """Average :func:`evaluate_policy` over the held-out scenario set, plus
    a TCP-friendliness term in the selection score.

    ``workers`` parallelises the (independent, internally seeded)
    evaluation scenarios through :func:`repro.parallel.parallel_map`;
    results are order-stable, so the averaged metrics — and therefore
    best-checkpoint selection — are identical at any worker count.
    """
    from ..parallel import parallel_map

    payloads = [(bundle, "policy", spec) for spec in EVAL_SCENARIOS]
    payloads.append((bundle, "friendliness", None))
    results = parallel_map(_eval_task, payloads, workers=workers,
                           describe=_describe_eval)
    rows = results[:-1]
    out = {key: float(np.mean([r[key] for r in rows])) for key in rows[0]}
    ratio = results[-1]
    # Friendly in [0, 1]: 1 at parity, decaying towards starving or bullying.
    friendliness = min(ratio, 1.0) if ratio <= 1.0 else max(0.0,
                                                            2.0 - ratio / 2.0)
    out["friendliness_ratio"] = ratio
    out["score"] = 0.75 * out["score"] + 0.25 * min(friendliness, 1.0)
    return out


def train_astraea(cfg: TrainingConfig | None = None, use_global: bool = True,
                  eval_every: int = 25, verbose: bool = False,
                  init_policy: PolicyBundle | None = None,
                  checkpoint_dir: str | Path | None = None,
                  resume_from: str | Path | None = None,
                  checkpoint_keep: int = 1,
                  workers: int | None = None,
                  ) -> tuple[PolicyBundle, TrainingHistory]:
    """Full offline multi-agent training; returns the best policy bundle.

    ``init_policy`` warm-starts the actor (fine-tuning an earlier bundle).

    ``workers`` parallelises the periodic held-out evaluation pass and,
    when ``cfg.parallel_envs > 1``, the per-stride episode rollouts
    (frozen-policy collection through
    :class:`~repro.env.pool.EnvironmentPool` — bit-identical at any
    worker count, so checkpoint resume stays exact);
    ``checkpoint_keep`` retains the last N checkpoint payloads for
    rollback instead of exactly one.

    ``checkpoint_dir`` enables periodic crash-safe checkpoints (every
    ``cfg.checkpoint_every`` episodes); ``resume_from`` restores one and
    continues the run **bit-compatibly** — the resumed run's
    ``episode_rewards`` match an uninterrupted run exactly.  When
    resuming, new checkpoints keep landing in ``resume_from`` unless a
    separate ``checkpoint_dir`` is given.

    Episodes that die inside the simulator are quarantined: the failure
    is logged with the scenario seed, the reward slot records NaN, and
    training continues — until ``cfg.max_consecutive_failures`` episodes
    fail back-to-back, which raises
    :class:`~repro.errors.TrainingDivergedError`.
    """
    from ..env.episode import run_training_episode
    from .checkpoint import load_training_checkpoint, save_training_checkpoint

    cfg = cfg or TrainingConfig()
    rng = np.random.default_rng(cfg.seed)
    learner = Learner(cfg, use_global=use_global)
    if init_policy is not None:
        learner.load_policy(init_policy)
    history = TrainingHistory()
    best_state = learner.td3.actor.get_state()
    noise = cfg.exploration_noise
    first_episode = 0
    prior_wall_s = 0.0
    consecutive_failures = 0
    if resume_from is not None:
        resume = load_training_checkpoint(resume_from, learner, rng)
        first_episode = resume.episode
        noise = resume.noise
        history = TrainingHistory(**resume.history_dict)
        prior_wall_s = history.wall_time_s
        best_state = resume.best_state or best_state
        consecutive_failures = int(
            resume.loop_state.get("consecutive_failures", 0))
        if checkpoint_dir is None:
            checkpoint_dir = resume_from
    start = time.monotonic()

    def _maybe_checkpoint(episode: int) -> None:
        """Checkpoint on the cfg.checkpoint_every cadence (and at the end)."""
        if checkpoint_dir is None:
            return
        nxt = episode + cfg.parallel_envs
        stride = max(cfg.checkpoint_every, cfg.parallel_envs)
        if nxt % stride < cfg.parallel_envs or nxt >= cfg.episodes:
            history.wall_time_s = prior_wall_s + (time.monotonic() - start)
            save_training_checkpoint(
                checkpoint_dir, learner=learner, rng=rng, episode=nxt,
                noise=noise, history_dict=history.__dict__.copy(),
                best_state=best_state,
                loop_state={"consecutive_failures": consecutive_failures},
                keep_last=checkpoint_keep)
    for episode in range(first_episode, cfg.episodes, cfg.parallel_envs):
        # Draw everything random *before* running, so a quarantined
        # episode consumes exactly the same stream as a healthy one
        # (bit-exact resume depends on it).
        if cfg.parallel_envs == 1:
            scenarios = [sample_training_scenario(cfg, rng)]
            initials = [_random_initial_cwnds(scenarios[0].link,
                                              len(scenarios[0].flows), rng)]
        else:
            # Appendix A: several environment instances share the learner.
            scenarios = [sample_training_scenario(cfg, rng)
                         for _ in range(cfg.parallel_envs)]
            initials = [_random_initial_cwnds(sc.link, len(sc.flows), rng)
                        for sc in scenarios]
        try:
            if cfg.parallel_envs == 1:
                stats = run_training_episode(
                    learner, scenarios[0], noise_std=noise,
                    initial_cwnds=initials[0], reward_config=cfg.reward,
                    episode=episode)
            else:
                from ..env.pool import EnvironmentPool

                pool = EnvironmentPool(
                    learner, scenarios, noise_std=noise,
                    initial_cwnds=initials, reward_config=cfg.reward,
                    episodes=[episode + i for i in range(cfg.parallel_envs)],
                    workers=workers)
                stats = pool.run()
        except TrainingDivergedError:
            raise  # guard exhaustion is terminal, never quarantined
        except (SimulationError, FloatingPointError) as exc:
            consecutive_failures += 1
            history.failed_episodes.append(episode)
            history.episode_rewards.append(float("nan"))
            seeds = [sc.seed for sc in scenarios]
            warnings.warn(
                f"episode {episode} quarantined (scenario seeds {seeds}): "
                f"{type(exc).__name__}: {exc}",
                TrainingInstabilityWarning, stacklevel=2)
            if consecutive_failures > cfg.max_consecutive_failures:
                raise TrainingDivergedError(
                    f"{consecutive_failures} consecutive episode failures "
                    f"(budget {cfg.max_consecutive_failures}); last: "
                    f"{exc}") from exc
            noise = max(noise * cfg.exploration_decay ** cfg.parallel_envs,
                        0.02)
            _maybe_checkpoint(episode)
            continue
        consecutive_failures = 0
        history.episode_rewards.append(stats.mean_reward)
        noise = max(noise * cfg.exploration_decay ** cfg.parallel_envs, 0.02)

        last = episode + cfg.parallel_envs >= cfg.episodes
        eval_stride = max(eval_every, cfg.parallel_envs)
        due = (episode + cfg.parallel_envs) % eval_stride < cfg.parallel_envs
        if learner.warm and (due or last):
            bundle = learner.snapshot_policy()
            metrics = evaluate_policy_multi(bundle, workers=workers)
            history.eval_episodes.append(episode)
            history.eval_jain.append(metrics["jain"])
            history.eval_utilization.append(metrics["utilization"])
            history.eval_score.append(metrics["score"])
            if metrics["score"] > history.best_score:
                history.best_score = metrics["score"]
                history.best_episode = episode
                best_state = learner.td3.actor.get_state()
            if verbose:
                print(f"[train_astraea] ep={episode} "
                      f"reward={stats.mean_reward:.4f} "
                      f"jain={metrics['jain']:.3f} "
                      f"util={metrics['utilization']:.3f} "
                      f"friend={metrics.get('friendliness_ratio', 0.0):.2f} "
                      f"score={metrics['score']:.3f} noise={noise:.3f}",
                      flush=True)
        _maybe_checkpoint(episode)

    history.wall_time_s = prior_wall_s + (time.monotonic() - start)
    learner.td3.actor.set_state(best_state)
    bundle = learner.snapshot_policy(metadata={
        "episodes": cfg.episodes,
        "best_episode": history.best_episode,
        "best_score": history.best_score,
        "use_global": use_global,
    })
    return bundle, history


def train_aurora(cfg: TrainingConfig | None = None, verbose: bool = False,
                 ) -> tuple[PolicyBundle, TrainingHistory]:
    """Train the Aurora baseline: single flow, local Eq. 1 reward."""
    from ..cc.aurora import aurora_reward
    from ..env.episode import run_training_episode
    from ..units import mbps_to_pps

    cfg = cfg or TrainingConfig()
    rng = np.random.default_rng(cfg.seed + 1000)
    learner = Learner(cfg, use_global=True)
    history = TrainingHistory()
    noise = cfg.exploration_noise
    start = time.monotonic()

    def local_reward(stats, link) -> float:
        thr_frac = stats.throughput_pps / mbps_to_pps(link.bandwidth_mbps)
        r = aurora_reward(thr_frac, stats.avg_rtt_s, link.rtt_s,
                          stats.loss_rate)
        # Keep the magnitude comparable with Astraea's bounded reward.
        return float(np.clip(r / 100.0, -0.1, 0.1))

    for episode in range(cfg.episodes):
        scenario = sample_training_scenario(cfg, rng)
        # Aurora trains single-flow: one long-running flow per episode.
        flows = (FlowConfig(cc="astraea", start_s=0.0,
                            duration_s=scenario.duration_s),)
        scenario = ScenarioConfig(link=scenario.link, flows=flows,
                                  duration_s=scenario.duration_s,
                                  seed=scenario.seed)
        initial = _random_initial_cwnds(scenario.link, 1, rng)
        stats = run_training_episode(learner, scenario, noise_std=noise,
                                     initial_cwnds=initial,
                                     local_reward=local_reward,
                                     episode=episode)
        history.episode_rewards.append(stats.mean_reward)
        noise = max(noise * cfg.exploration_decay, 0.02)
        if verbose and episode % 25 == 24:
            print(f"[train_aurora] ep={episode} "
                  f"reward={stats.mean_reward:.4f}", flush=True)

    history.wall_time_s = time.monotonic() - start
    bundle = learner.snapshot_policy(scheme="aurora",
                                     metadata={"episodes": cfg.episodes})
    return bundle, history
