"""Deterministic process-pool map: the parallel execution layer.

Every sweep in this repository is an embarrassingly parallel cross
product — (scheme x fault x engine) cells, per-seed benchmark trials,
held-out evaluation scenarios — whose tasks each carry their own seed
and share no mutable state.  :func:`parallel_map` runs such a task list
on a spawn-context process pool while keeping the *results* in
submission order, so a parallel run is bit-identical to the serial one
(modulo wall-clock instrumentation) and golden/regression tests hold at
any worker count.

Determinism contract
--------------------
* ``fn`` must be a module-level callable and every payload must carry
  everything the task needs — including its seed.  Workers never share
  RNG streams, caches or open files with the parent.
* Results are returned ordered by payload index regardless of which
  worker finished first; downstream aggregation therefore sees the same
  sequence the serial path produces.
* ``workers <= 1`` short-circuits to a plain in-process loop: no
  subprocesses, no pickling, bit-identical results — the path coverage
  tools and debuggers should use.
* ``progress`` fires in *completion* order with a monotone done-count
  (1, 2, ..., total); under the serial path completion order equals
  submission order.

Failure semantics
-----------------
A worker exception is wrapped in :class:`~repro.errors.TaskError`
naming the failing task (index + ``describe(payload)``), with the
original exception chained as ``__cause__``.  ``KeyboardInterrupt`` is
never wrapped: pending tasks are cancelled, the pool is shut down
without waiting, and the interrupt propagates so callers can avoid
writing partial artifacts.

Worker counts resolve as ``workers`` argument > ``REPRO_WORKERS``
environment variable > 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from .errors import ConfigError, TaskError

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: argument > ``REPRO_WORKERS`` env > 1.

    ``0`` and ``1`` both mean "serial, in-process".  Negative counts are
    rejected; so is a non-integer environment value.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigError(
                f"{WORKERS_ENV}={raw!r} is not an integer") from None
    workers = int(workers)
    if workers < 0:
        raise ConfigError(f"worker count must be >= 0, got {workers}")
    return workers


def _describe(payload: object, describe: Callable[[object], str] | None,
              index: int) -> str:
    if describe is not None:
        return describe(payload)
    text = repr(payload)
    return text if len(text) <= 120 else text[:117] + "..."


def _wrap_failure(exc: BaseException, index: int, payload: object,
                  describe: Callable[[object], str] | None) -> TaskError:
    context = _describe(payload, describe, index)
    return TaskError(
        f"task {index} ({context}) failed: "
        f"{type(exc).__name__}: {exc}",
        index=index, context=context, cause_type=type(exc).__name__)


def _serial_map(fn, payloads, progress, describe):
    results = []
    total = len(payloads)
    for index, payload in enumerate(payloads):
        try:
            result = fn(payload)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            raise _wrap_failure(exc, index, payload, describe) from exc
        results.append(result)
        if progress is not None:
            progress(index + 1, total, index, result)
    return results


def parallel_map(fn: Callable, payloads: Sequence, *,
                 workers: int | None = None,
                 progress: Callable[[int, int, int, object], None]
                 | None = None,
                 describe: Callable[[object], str] | None = None) -> list:
    """Map ``fn`` over ``payloads`` on a process pool; ordered results.

    Parameters
    ----------
    fn:
        A picklable module-level callable of one argument.  Each call
        must be self-contained and deterministic given its payload.
    payloads:
        The task payloads, each carrying its own seed/configuration.
    workers:
        Process count; ``None`` defers to ``REPRO_WORKERS`` (default 1).
        ``0``/``1`` run serially in-process.
    progress:
        Optional ``(done, total, index, result)`` callback, fired in
        completion order with ``done`` counting monotonically up.
    describe:
        Optional ``payload -> str`` used in :class:`TaskError` messages.

    Returns the results ordered by payload index.  Raises
    :class:`~repro.errors.TaskError` on the first worker failure and
    re-raises ``KeyboardInterrupt`` after cancelling pending work.
    """
    payloads = list(payloads)
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(payloads) <= 1:
        return _serial_map(fn, payloads, progress, describe)

    total = len(payloads)
    results: list = [None] * total
    n_workers = min(n_workers, total)
    context = multiprocessing.get_context("spawn")
    executor = ProcessPoolExecutor(max_workers=n_workers,
                                   mp_context=context)
    try:
        index_of = {executor.submit(fn, payload): i
                    for i, payload in enumerate(payloads)}
        pending = set(index_of)
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                index = index_of[future]
                try:
                    result = future.result()
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    raise _wrap_failure(exc, index, payloads[index],
                                        describe) from exc
                results[index] = result
                done_count += 1
                if progress is not None:
                    progress(done_count, total, index, result)
        executor.shutdown(wait=True)
    except BaseException:
        # Graceful interrupt/failure shutdown: drop queued tasks, do not
        # block on in-flight ones, and let the exception propagate so the
        # caller can skip writing partial artifacts.
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    return results
