"""Persistence: scenarios and results as JSON files.

Lets experiments be described, shared and replayed without writing
Python — the CLI (`python -m repro ...`) builds on this:

* :func:`scenario_to_dict` / :func:`scenario_from_dict` — round-trip a
  :class:`~repro.config.ScenarioConfig` through plain JSON data.
* :func:`save_result` / :func:`load_result` — persist a
  :class:`~repro.env.multiflow.ScenarioResult`'s full per-interval logs.
* :func:`write_json` / :func:`sha256_file` — low-level atomic-write and
  content-hash helpers shared with the model-artifact integrity layer
  (:mod:`repro.core.artifacts`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

from .config import FlowConfig, LinkConfig, ScenarioConfig
from .env.multiflow import FlowLog, ScenarioResult
from .errors import ConfigError


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Atomically write ``text``: no torn files on interruption.

    The payload lands in a sibling temp file first and is then renamed
    over the target, so readers either see the old content or the new —
    never a truncated document (the failure mode the model-artifact
    integrity layer exists to catch).  Because the caller serialises
    *before* this runs, a serialisation failure leaves the previous
    file untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def write_json(path: str | Path, data: object, indent: int | None = 2) -> Path:
    """Atomically write ``data`` as JSON via :func:`write_text_atomic`."""
    return write_text_atomic(
        path, json.dumps(data, indent=indent, sort_keys=False) + "\n")


def sha256_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while chunk := fh.read(chunk_size):
            digest.update(chunk)
    return digest.hexdigest()


def scenario_to_dict(scenario: ScenarioConfig) -> dict:
    """A JSON-serialisable description of a scenario."""
    out = {
        "link": asdict(scenario.link),
        "flows": [asdict(f) for f in scenario.flows],
        "duration_s": scenario.duration_s,
        "mtp_s": scenario.mtp_s,
        "tick_s": scenario.tick_s,
        "seed": scenario.seed,
        "trace": scenario.trace,
        "trace_kwargs": scenario.trace_kwargs,
    }
    if scenario.faults is not None:
        out["faults"] = scenario.faults.to_dicts()
    return out


def scenario_from_dict(data: dict) -> ScenarioConfig:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    from .netsim.faults import FaultSchedule

    try:
        link = LinkConfig(**data["link"])
        flows = tuple(FlowConfig(**f) for f in data["flows"])
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed scenario description: {exc}") from exc
    faults = None
    if data.get("faults"):
        faults = FaultSchedule.from_dicts(data["faults"])
    return ScenarioConfig(
        link=link,
        flows=flows,
        duration_s=data.get("duration_s", 60.0),
        mtp_s=data.get("mtp_s", 0.030),
        tick_s=data.get("tick_s", 0.002),
        seed=data.get("seed", 0),
        trace=data.get("trace"),
        trace_kwargs=data.get("trace_kwargs", {}),
        faults=faults,
    )


def save_scenario(scenario: ScenarioConfig, path: str | Path) -> Path:
    """Write a scenario description to a JSON file."""
    return write_json(path, scenario_to_dict(scenario))


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Read a scenario description from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no scenario file at {path}")
    return scenario_from_dict(json.loads(path.read_text()))


def result_to_dict(result: ScenarioResult) -> dict:
    """A JSON-serialisable dump of a run's full per-interval logs."""
    return {
        "duration_s": result.duration_s,
        "bottleneck_mbps": result.bottleneck_mbps,
        "base_rtt_s": result.base_rtt_s,
        "flows": [
            {
                "cc_name": f.cc_name,
                "start_s": f.start_s,
                "end_s": f.end_s,
                "times": list(f.times),
                "throughput_mbps": list(f.throughput_mbps),
                "rtt_s": list(f.rtt_s),
                "loss_rate": list(f.loss_rate),
                "cwnd_pkts": list(f.cwnd_pkts),
                "send_rate_mbps": list(f.send_rate_mbps),
            }
            for f in result.flows
        ],
    }


def result_from_dict(data: dict) -> ScenarioResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    flows = []
    for f in data["flows"]:
        log = FlowLog(cc_name=f["cc_name"], start_s=f["start_s"],
                      end_s=f["end_s"])
        log.times = list(f["times"])
        log.throughput_mbps = list(f["throughput_mbps"])
        log.rtt_s = list(f["rtt_s"])
        log.loss_rate = list(f["loss_rate"])
        log.cwnd_pkts = list(f["cwnd_pkts"])
        log.send_rate_mbps = list(f["send_rate_mbps"])
        flows.append(log)
    return ScenarioResult(
        flows=flows,
        duration_s=data["duration_s"],
        bottleneck_mbps=data["bottleneck_mbps"],
        base_rtt_s=data["base_rtt_s"],
    )


def save_result(result: ScenarioResult, path: str | Path) -> Path:
    """Write a run's logs to a JSON file."""
    return write_json(path, result_to_dict(result), indent=None)


def load_result(path: str | Path) -> ScenarioResult:
    """Read a run's logs back from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no result file at {path}")
    return result_from_dict(json.loads(path.read_text()))
