"""Astraea reproduction: fair and efficient learning-based congestion control.

A full Python reproduction of "Towards Fair and Efficient Learning-based
Congestion Control" (EuroSys 2024): the multi-flow training environment,
the multi-agent actor-critic training algorithm, the Astraea controller,
the baseline congestion-control schemes it is evaluated against, and the
benchmark harness regenerating every table and figure of the paper.

Quickstart::

    from repro import run_scenario, ScenarioConfig, LinkConfig
    from repro.netsim import staggered_flows

    scenario = ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=100, rtt_ms=30, buffer_bdp=1.0),
        flows=staggered_flows(3, cc="astraea", interval_s=40, duration_s=120),
        duration_s=200,
    )
    result = run_scenario(scenario)
    print(result.jain_index())
"""

from .config import (
    FlowConfig,
    LinkConfig,
    RewardConfig,
    ScenarioConfig,
    TrainingConfig,
)
from .errors import (
    ConfigError,
    ModelError,
    ReproError,
    ServiceError,
    SimulationError,
    TaskError,
)
from .parallel import parallel_map, resolve_workers

__version__ = "1.0.0"

__all__ = [
    "LinkConfig",
    "FlowConfig",
    "ScenarioConfig",
    "RewardConfig",
    "TrainingConfig",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ModelError",
    "ServiceError",
    "TaskError",
    "parallel_map",
    "resolve_workers",
    "run_scenario",
    "run_topology",
    "__version__",
]


def run_scenario(scenario, **kwargs):
    """Run a single-bottleneck scenario; see :func:`repro.env.run_scenario`."""
    from .env import run_scenario as _run

    return _run(scenario, **kwargs)


def run_topology(topology, **kwargs):
    """Run a multi-bottleneck scenario; see :func:`repro.env.run_topology`."""
    from .env import run_topology as _run

    return _run(topology, **kwargs)
