"""Parallel training environments (Appendix A).

The paper trains with four environment instances that share the same
actor/critic networks, which both diversifies the replay buffer within a
wall-clock window and decorrelates consecutive transitions.  This module
implements that as a *frozen-policy stride dispatcher*: at the start of
each stride the :class:`EnvironmentPool` snapshots the shared actor (and
the replay warm flag), rolls every instance's episode out against that
snapshot — in-process or on a :func:`repro.parallel.parallel_map` worker
pool, identically — ships the timestamped transitions back, and replays
the merged stream into the shared Learner in simulated-time order, firing
update bursts on the pooled environment clock.

Because the policy is frozen per stride and the merge order is a pure
function of the collected timestamps, the training trajectory is
bit-identical at any worker count — the property checkpoint resume and
``repro bench train`` rely on.
"""

from __future__ import annotations

import numpy as np

from ..config import RewardConfig, ScenarioConfig, TrainingConfig
from ..core.learner import Learner
from ..core.state import LOCAL_FEATURES
from ..errors import SimulationError
from ..parallel import parallel_map
from ..rl.nn import MLP
from .episode import EpisodeStats, run_training_episode


class FrozenPolicy:
    """Read-only actor snapshot that stands in for the Learner in workers.

    Duck-types the slice of :class:`~repro.core.learner.Learner` that
    :class:`~repro.env.episode.TrainFlowController` and the episode
    runner touch: ``cfg``, ``warm``, the act methods and the update-clock
    reset.  It never owns replay memory or critics — transitions leave
    the worker through the observer's ``transition_sink`` and updates
    happen only in the parent.
    """

    def __init__(self, cfg: TrainingConfig, actor_state: list[np.ndarray],
                 warm: bool):
        self.cfg = cfg
        self.warm = warm
        self.actor = MLP(LOCAL_FEATURES * cfg.history_length,
                         cfg.hidden_layers, 1, output="tanh")
        self.actor.set_state(actor_state)

    def act_batch(self, local_states: np.ndarray,
                  noise_std: float = 0.0) -> np.ndarray:
        """Greedy actions via the row-consistent kernel (no noise: the
        exploration Gaussian lives on the controllers' own streams)."""
        actions = self.actor.infer_rows(local_states)[:, 0]
        if not np.isfinite(actions).all():
            # A worker cannot roll anything back; surface the bad actor
            # as a simulation failure so the stride gets quarantined.
            raise SimulationError("frozen policy produced a non-finite "
                                  "action")
        return np.clip(actions, -0.999, 0.999)

    def act(self, local_state: np.ndarray, noise_std: float = 0.0) -> float:
        return float(self.act_batch(local_state[None, :])[0])

    def reset_update_clock(self) -> None:
        """No-op: the parent owns the update schedule."""


def _rollout_task(payload) -> dict:
    """Module-level rollout worker (spawn-picklable for parallel_map).

    Runs one episode against a frozen actor snapshot and returns the
    timestamped transitions plus the episode counters.  Simulator
    failures are returned as a record — not raised — so every sibling
    episode still completes and the parent can quarantine the stride
    deterministically at any worker count.
    """
    (cfg, actor_state, warm, scenario, noise_std, cwnds, episode,
     reward_config) = payload
    policy = FrozenPolicy(cfg, actor_state, warm)
    captured: list[tuple] = []

    def sink(now, g_prev, s_prev, a_prev, reward, g_now, s_now):
        captured.append((now, g_prev, s_prev, a_prev, reward, g_now, s_now))

    try:
        stats = run_training_episode(
            policy, scenario, noise_std=noise_std, initial_cwnds=cwnds,
            reward_config=reward_config, do_updates=False, episode=episode,
            batched=True, transition_sink=sink)
    except (SimulationError, FloatingPointError) as exc:
        return {"episode": episode,
                "failed": f"{type(exc).__name__}: {exc}"}
    return {"episode": episode, "transitions": captured,
            "counts": (stats.transitions, stats.reward_sum,
                       stats.reward_count)}


def _describe_rollout(payload) -> str:
    return f"rollout episode {payload[6]} (scenario seed {payload[3].seed})"


class EnvironmentPool:
    """Runs several training scenarios against one shared Learner."""

    def __init__(self, learner: Learner, scenarios: list[ScenarioConfig],
                 noise_std: float, initial_cwnds: list[list[float]],
                 reward_config: RewardConfig | None = None,
                 episodes: list[int] | None = None,
                 workers: int | None = None):
        if len(scenarios) != len(initial_cwnds):
            raise ValueError("need one initial-cwnd list per scenario")
        if episodes is None:
            episodes = list(range(len(scenarios)))
        if len(episodes) != len(scenarios):
            raise ValueError("need one episode id per scenario")
        self.learner = learner
        self.scenarios = scenarios
        self.noise_std = noise_std
        self.initial_cwnds = initial_cwnds
        self.reward_config = reward_config
        self.episodes = episodes
        self.workers = workers

    def run(self) -> EpisodeStats:
        """Roll out every instance against a frozen policy, then learn.

        The actor snapshot and warm flag are taken once, up front;
        episodes run independently (serially in-process for
        ``workers <= 1``, on a process pool otherwise — bit-identical
        either way).  The shipped transitions are merged by
        ``(timestamp, instance, arrival)`` and written into replay in
        that order, with update bursts firing whenever the *mean*
        environment time across instances crosses the Table 4 update
        interval — the paper's shared-cadence parallel collection.

        If any episode dies in the simulator the entire stride is
        quarantined: nothing reaches replay and a
        :class:`~repro.errors.SimulationError` propagates to the
        training loop's fault-isolation wrapper.
        """
        actor_state = self.learner.td3.actor.get_state()
        payloads = [
            (self.learner.cfg, actor_state, self.learner.warm, scenario,
             self.noise_std, cwnds, episode, self.reward_config)
            for scenario, cwnds, episode in zip(
                self.scenarios, self.initial_cwnds, self.episodes)
        ]
        results = parallel_map(_rollout_task, payloads, workers=self.workers,
                               describe=_describe_rollout)
        failures = [r for r in results if "failed" in r]
        if failures:
            details = "; ".join(
                f"episode {r['episode']}: {r['failed']}" for r in failures)
            raise SimulationError(
                f"{len(failures)}/{len(results)} pool episodes failed "
                f"({details})")

        merged = sorted(
            (trans[0], k, j, trans)
            for k, result in enumerate(results)
            for j, trans in enumerate(result["transitions"])
        )
        combined = EpisodeStats()
        for result in results:
            transitions, reward_sum, reward_count = result["counts"]
            combined.transitions += transitions
            combined.reward_sum += reward_sum
            combined.reward_count += reward_count

        self.learner.reset_update_clock()
        clocks = np.zeros(len(results))
        self.learner.set_deferred(True)
        try:
            for t, k, _, trans in merged:
                _, g_prev, s_prev, a_prev, reward, g_now, s_now = trans
                self.learner.add_transition(g_prev, s_prev, a_prev, reward,
                                            g_now, s_now)
                clocks[k] = t
                losses = self.learner.maybe_update(float(np.mean(clocks)))
                if losses is not None:
                    combined.update_bursts += 1
                    combined.last_losses = losses
        finally:
            self.learner.set_deferred(False)
        return combined
