"""Parallel training environments (Appendix A).

The paper trains with four environment instances that share the same
actor/critic networks, which both diversifies the replay buffer within a
wall-clock window and decorrelates consecutive transitions.  This module
provides the single-process equivalent: an :class:`EnvironmentPool` that
interleaves several scenario drivers tick-by-tick, so experience from all
instances lands in the shared Learner's replay buffer in (simulated-)
time order, and update bursts fire on the pooled environment clock.
"""

from __future__ import annotations

import numpy as np

from ..config import RewardConfig, ScenarioConfig
from ..core.learner import Learner
from .episode import EpisodeStats, Observer, TrainFlowController
from .multiflow import build_driver


class EnvironmentPool:
    """Interleaves several training scenarios over one shared Learner."""

    def __init__(self, learner: Learner, scenarios: list[ScenarioConfig],
                 noise_std: float, initial_cwnds: list[list[float]],
                 reward_config: RewardConfig | None = None,
                 episodes: list[int] | None = None):
        if len(scenarios) != len(initial_cwnds):
            raise ValueError("need one initial-cwnd list per scenario")
        if episodes is None:
            episodes = list(range(len(scenarios)))
        if len(episodes) != len(scenarios):
            raise ValueError("need one episode id per scenario")
        self.learner = learner
        self._drivers = []
        self._observers = []
        for scenario, cwnds, episode in zip(scenarios, initial_cwnds,
                                            episodes):
            controllers = []
            for flow_index, (cfg_flow, cw) in enumerate(zip(scenario.flows,
                                                            cwnds)):
                if cfg_flow.cc == "astraea":
                    controllers.append(TrainFlowController(
                        learner, noise_std=noise_std,
                        mtp_s=scenario.mtp_s, initial_cwnd=cw,
                        episode=episode, flow_index=flow_index))
                else:
                    from ..cc import create as create_cc

                    controllers.append(create_cc(cfg_flow.cc,
                                                 **cfg_flow.cc_kwargs))
            # Updates are driven by the pool clock, not per instance.
            observer = Observer(learner, scenario.link, scenario.flows,
                                controllers, reward_config=reward_config,
                                do_updates=False)
            self._drivers.append(build_driver(
                scenario, controllers=controllers, on_interval=observer))
            self._observers.append(observer)

    def run(self) -> EpisodeStats:
        """Step all instances round-robin until every one finishes.

        Update bursts fire whenever the *mean* environment time across
        live instances crosses the Table 4 update interval, matching the
        paper's shared-cadence parallel collection.
        """
        self.learner.reset_update_clock()
        combined = EpisodeStats()
        live = list(self._drivers)
        while live:
            for driver in list(live):
                if not driver.step():
                    live.remove(driver)
            if live:
                mean_now = float(np.mean([d.now for d in live]))
                losses = self.learner.maybe_update(mean_now)
                if losses is not None:
                    combined.update_bursts += 1
                    combined.last_losses = losses
        for observer in self._observers:
            combined.transitions += observer.stats.transitions
            combined.reward_sum += observer.stats.reward_sum
            combined.reward_count += observer.stats.reward_count
        return combined
