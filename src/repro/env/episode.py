"""Training-episode machinery: the Controller of §3.2 in code.

During training each flow is driven by a :class:`TrainFlowController`
executing the shared policy with exploration noise.  The
:class:`Observer` gathers the latest per-flow statistics (the paper's
world-observation exchange), compiles the Table 2 global state, evaluates
the global reward, assembles ``(g, s, a, r, g', s')`` transitions, and
tracks per-episode statistics.

:func:`run_training_episode` drives the scenario through the two-phase
driver protocol (:meth:`~repro.env.multiflow.ScenarioDriver.step_collect`
/ :meth:`~repro.env.multiflow.ScenarioDriver.finish_flow`): every pass
first publishes all due flows' stats at the same instant, then selects
actions — per flow, or stacked into a single batched forward for the
whole pass — and finally applies every decision and lets the Learner
update on the Table 4 cadence.  The serial and batched legs are bitwise
identical: the forward kernel is row-consistent, exploration randomness
lives on per-controller streams, and the shared global reward is a
deterministic function of the same published snapshot either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cc.base import CongestionController, Decision
from ..config import (
    ACTION_ALPHA,
    FlowConfig,
    LinkConfig,
    RewardConfig,
    ScenarioConfig,
)
from ..core.action import apply_action, pacing_from_cwnd
from ..core.learner import Learner
from ..core.reward import FlowSnapshot, RewardBlock
from ..core.state import LocalStateBlock, global_state_vector
from ..netsim.stats import MtpStats
from .multiflow import build_driver


class TrainFlowController(CongestionController):
    """Astraea agent in training mode: shared policy plus exploration.

    The initial window is randomised per flow so early training covers the
    state space even while exploration noise is too small to move the
    multiplicative window far within one episode.  Exploration combines
    three mechanisms: uniform random actions until the replay buffer is
    warm, an epsilon of uniform actions afterwards (Gaussian noise added
    after the tanh cannot escape a saturated actor), and the Gaussian
    perturbation itself.  Every random draw — epsilon, uniform action and
    the Gaussian noise — comes from this controller's own stream, so the
    episode's randomness is independent of *how* actions were computed
    (one flow at a time or one stacked batch per pass).

    The decision is split in two: :meth:`begin_interval` folds the new
    stats into the local state block and either stages an exploratory
    action (returning ``None``) or returns the state the policy should
    act on; :meth:`finish_interval` takes the (possibly batched) policy
    action back, perturbs and applies it.  :meth:`on_interval` composes
    the two for standalone use.
    """

    EPSILON_UNIFORM = 0.10

    def __init__(self, learner: Learner, noise_std: float = 0.1,
                 alpha: float = ACTION_ALPHA, mtp_s: float = 0.030,
                 initial_cwnd: float = 10.0, use_pacing: bool = True,
                 episode: int = 0, flow_index: int = 0):
        super().__init__(mtp_s)
        self.learner = learner
        self.noise_std = noise_std
        self.alpha = alpha
        self.use_pacing = use_pacing
        self._initial_cwnd = max(initial_cwnd, 2.0)
        self.state_block = LocalStateBlock(history=learner.cfg.history_length)
        # The exploration stream is a pure function of (learner seed,
        # episode, flow index) — NOT of how many controllers this process
        # ever built.  A class-level counter here once made two same-seed
        # runs in one process diverge, and would have broken bit-exact
        # checkpoint resume.
        self._rng = np.random.default_rng(
            [learner.cfg.seed, episode, flow_index])
        self.reset()

    @property
    def initial_cwnd(self) -> float:
        return self._initial_cwnd

    def reset(self) -> None:
        self.state_block.reset()
        self.cwnd = self._initial_cwnd
        self.last_state: np.ndarray | None = None
        self.last_action: float = 0.0
        self._staged_state: np.ndarray | None = None
        self._staged_action: float | None = None

    def begin_interval(self, stats: MtpStats) -> np.ndarray | None:
        """First half of a decision: observe, and choose *how* to act.

        Returns the local state the shared policy should act on, or
        ``None`` when this interval explores with a uniform random action
        (not warm yet, or the epsilon draw fired) — the uniform action is
        staged internally for :meth:`finish_interval`.
        """
        state = self.state_block.update(stats)
        self._staged_state = state
        if not self.learner.warm \
                or self._rng.random() < self.EPSILON_UNIFORM:
            self._staged_action = float(self._rng.uniform(-0.999, 0.999))
            return None
        self._staged_action = None
        return state

    def finish_interval(self, stats: MtpStats,
                        action: float | None) -> Decision:
        """Second half: perturb and apply the action chosen for this pass.

        ``action`` is the clean policy output for the state returned by
        :meth:`begin_interval` (Gaussian exploration noise is added here,
        from this controller's stream), or ``None`` to use the staged
        uniform action.  Must be preceded by :meth:`begin_interval` on
        the same stats.
        """
        state = self._staged_state
        if action is None:
            action = self._staged_action
        else:
            if self.noise_std > 0:
                action = action + float(self._rng.normal(0.0,
                                                         self.noise_std))
            action = float(np.clip(action, -0.999, 0.999))
        self.cwnd = apply_action(self.cwnd, action, self.alpha)
        self.last_state = state
        self.last_action = action
        pacing = pacing_from_cwnd(self.cwnd, max(stats.srtt_s, 1e-6)) \
            if self.use_pacing else None
        return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)

    def on_interval(self, stats: MtpStats) -> Decision:
        state = self.begin_interval(stats)
        action = None if state is None else self.learner.act(state)
        return self.finish_interval(stats, action)


@dataclass
class EpisodeStats:
    """What one training episode produced."""

    transitions: int = 0
    reward_sum: float = 0.0
    reward_count: int = 0
    update_bursts: int = 0
    last_losses: dict = field(default_factory=dict)

    @property
    def mean_reward(self) -> float:
        return self.reward_sum / self.reward_count if self.reward_count else 0.0


class Observer:
    """Gathers world observations and feeds the Learner (§3.2 Controller).

    ``transition_sink`` redirects assembled transitions away from the
    learner: the rollout workers of :mod:`repro.env.pool` capture them
    (with timestamps) for shipping back to the parent process instead of
    writing a replay buffer they don't own.
    """

    def __init__(self, learner: Learner, link: LinkConfig,
                 flows: tuple[FlowConfig, ...],
                 controllers: list[TrainFlowController],
                 reward_config: RewardConfig | None = None,
                 local_reward=None, do_updates: bool = True,
                 transition_sink=None):
        self.learner = learner
        self.link = link
        self.flows = flows
        self.controllers = controllers
        self.reward_block = RewardBlock(link, reward_config)
        self.local_reward = local_reward
        self.do_updates = do_updates
        self.transition_sink = transition_sink
        self._latest: dict[int, MtpStats] = {}
        self._pending: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}
        self._pass_now: float | None = None
        self._pass_share = False
        self._pass_cache: tuple[float, np.ndarray] | None = None
        self.stats = EpisodeStats()

    # ------------------------------------------------------------------

    def begin_pass(self, now: float, updates: list[tuple[int, MtpStats]],
                   share_reward: bool = False) -> None:
        """Publish all due flows' stats at the same instant.

        The two-phase runner calls this before any controller decides, so
        every agent in the pass observes the identical world snapshot —
        the paper's synchronous world-observation exchange.  With
        ``share_reward`` the (global) reward and global-state vector are
        computed once per pass and reused across the pass's callbacks;
        they are deterministic functions of the snapshot, so sharing is
        bitwise identical to recomputing per flow, and skipping the
        recomputation is most of the batched rollout speedup.
        """
        for idx, stats in updates:
            self._latest[idx] = stats
        self._pass_now = now
        self._pass_share = share_reward and self.local_reward is None
        self._pass_cache = None

    def _active_indices(self, now: float) -> list[int]:
        """Active *agent* flows (cross-traffic competitors are part of the
        environment, not of the cooperating agent population)."""
        return [i for i in self._latest
                if self.flows[i].start_s <= now < self.flows[i].end_s()
                and isinstance(self.controllers[i], TrainFlowController)]

    def _snapshots(self, indices: list[int]) -> list[FlowSnapshot]:
        out = []
        for i in indices:
            s = self._latest[i]
            block = self.controllers[i].state_block
            out.append(FlowSnapshot(
                throughput_pps=s.throughput_pps,
                avg_thr_pps=block.avg_throughput_pps(),
                thr_std_pps=block.throughput_std_pps(),
                avg_rtt_s=s.avg_rtt_s,
                loss_pps=s.loss_pps,
                pacing_pps=s.pacing_pps,
            ))
        return out

    def __call__(self, now: float, idx: int, stats: MtpStats,
                 controller: CongestionController) -> None:
        """The scenario runner's on_interval hook."""
        self._latest[idx] = stats
        if not isinstance(controller, TrainFlowController):
            return  # cross traffic: environment, not an agent
        active = self._active_indices(now)
        if not active:
            return
        if self._pass_share and self._pass_now == now \
                and self._pass_cache is not None:
            reward, g_now = self._pass_cache
        else:
            if self.local_reward is not None:
                reward = self.local_reward(stats, self.link)
            else:
                reward = self.reward_block.compute(
                    self._snapshots(active)).total
            g_now = global_state_vector([self._latest[i] for i in active],
                                        self.link)
            if self._pass_share and self._pass_now == now:
                self._pass_cache = (reward, g_now)
        ctl = self.controllers[idx]
        s_now, a_now = ctl.last_state, ctl.last_action
        if s_now is None:
            # The flow's first on_interval has not produced a state yet
            # (e.g. a freshly reset controller observed out of band); a
            # None here would poison a transition tuple, so skip it.
            self._pending.pop(idx, None)
            return
        if idx in self._pending:
            g_prev, s_prev, a_prev = self._pending[idx]
            if self.transition_sink is not None:
                self.transition_sink(now, g_prev, s_prev, a_prev, reward,
                                     g_now, s_now)
            else:
                self.learner.add_transition(g_prev, s_prev, a_prev, reward,
                                            g_now, s_now)
            self.stats.transitions += 1
            self.stats.reward_sum += reward
            self.stats.reward_count += 1
        self._pending[idx] = (g_now, s_now, a_now)

        if self.do_updates:
            losses = self.learner.maybe_update(now)
            if losses is not None:
                self.stats.update_bursts += 1
                self.stats.last_losses = losses


def _drive_episode(learner, driver, observer, batched: bool,
                   do_updates: bool) -> None:
    """Run one training episode through the two-phase driver protocol.

    Each pass: collect all due flows' stats, publish them at the same
    instant, let every agent choose how to act, compute the policy
    actions — one stacked :meth:`~repro.core.learner.Learner.act_batch`
    call when ``batched``, per-flow :meth:`~repro.core.learner.Learner.act`
    calls otherwise — then apply every decision and give the Learner one
    shot at an update burst.  The two legs are bitwise identical (see the
    module docstring); updates firing at the pass boundary rather than
    inside a flow's callback is what makes that possible.
    """
    while True:
        due = driver.step_collect()
        if due is None:
            break
        now = driver.now
        observer.begin_pass(now, [(rf.index, stats) for rf, stats in due],
                            share_reward=batched)
        needs_policy: list[tuple[int, np.ndarray]] = []
        for slot, (rf, stats) in enumerate(due):
            ctl = rf.controller
            if isinstance(ctl, TrainFlowController):
                state = ctl.begin_interval(stats)
                if state is not None:
                    needs_policy.append((slot, state))
        actions: dict[int, float] = {}
        if needs_policy:
            if batched:
                acts = learner.act_batch(
                    np.stack([state for _, state in needs_policy]))
            else:
                acts = [learner.act(state) for _, state in needs_policy]
            for (slot, _), a in zip(needs_policy, acts):
                actions[slot] = float(a)
        for slot, (rf, stats) in enumerate(due):
            ctl = rf.controller
            if isinstance(ctl, TrainFlowController):
                decision = ctl.finish_interval(stats, actions.get(slot))
            else:
                decision = ctl.on_interval(stats)
            driver.finish_flow(rf, stats, decision)
        if do_updates:
            losses = learner.maybe_update(now)
            if losses is not None:
                observer.stats.update_bursts += 1
                observer.stats.last_losses = losses


def build_training_controllers(learner, scenario: ScenarioConfig,
                               noise_std: float,
                               initial_cwnds: list[float],
                               episode: int = 0) -> list:
    """One controller per flow: agents for ``astraea``, cross traffic else.

    ``learner`` only needs ``cfg.seed``, ``cfg.history_length``, ``warm``
    and the act methods — a frozen policy snapshot
    (:class:`repro.env.pool.FrozenPolicy`) works as well as the live
    :class:`~repro.core.learner.Learner`.
    """
    from ..cc import create as create_cc

    controllers = []
    for flow_index, (cfg_flow, cw) in enumerate(zip(scenario.flows,
                                                    initial_cwnds)):
        if cfg_flow.cc == "astraea":
            controllers.append(TrainFlowController(
                learner, noise_std=noise_std, mtp_s=scenario.mtp_s,
                initial_cwnd=cw, episode=episode, flow_index=flow_index))
        else:
            controllers.append(create_cc(cfg_flow.cc, **cfg_flow.cc_kwargs))
    return controllers


def run_training_episode(learner: Learner, scenario: ScenarioConfig,
                         noise_std: float, initial_cwnds: list[float],
                         reward_config: RewardConfig | None = None,
                         local_reward=None,
                         do_updates: bool = True,
                         episode: int = 0,
                         batched: bool = True,
                         transition_sink=None) -> EpisodeStats:
    """Collect one episode of experience (and update on the Table 4 cadence).

    ``local_reward`` switches the reward from Astraea's global objective to
    a per-flow local function (used to train the Aurora baseline with its
    own Eq. 1 reward in the identical harness).

    Flows whose scheme is not ``"astraea"`` are instantiated from the
    registry and act as environment cross traffic (e.g. a CUBIC competitor
    teaching TCP friendliness); they generate no transitions.

    ``episode`` seeds each flow's exploration stream (together with the
    learner seed and the flow index), which keeps runs reproducible — and
    checkpoint resume bit-exact — regardless of process history.

    ``batched`` selects the fast path: all policy actions of a pass in
    one stacked forward, the shared reward computed once per pass, and
    transitions buffered for block writes into replay.  ``batched=False``
    runs the honest per-flow path; both produce bitwise-identical
    episodes (the contract ``repro bench train`` verifies).

    ``transition_sink`` forwards transitions to a callable instead of the
    learner's replay buffer (the rollout-worker capture path).
    """
    controllers = build_training_controllers(learner, scenario, noise_std,
                                             initial_cwnds, episode=episode)
    observer = Observer(learner, scenario.link, scenario.flows,
                        controllers, reward_config=reward_config,
                        local_reward=local_reward, do_updates=False,
                        transition_sink=transition_sink)
    driver = build_driver(scenario, controllers=controllers,
                          on_interval=observer, align_intervals=True)
    learner.reset_update_clock()
    defer = batched and hasattr(learner, "set_deferred")
    if defer:
        learner.set_deferred(True)
    try:
        _drive_episode(learner, driver, observer, batched=batched,
                       do_updates=do_updates)
    finally:
        if defer:
            learner.set_deferred(False)
    return observer.stats
