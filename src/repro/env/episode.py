"""Training-episode machinery: the Controller of §3.2 in code.

During training each flow is driven by a :class:`TrainFlowController`
executing the shared policy with exploration noise.  The
:class:`Observer` gathers the latest per-flow statistics (the paper's
world-observation exchange), compiles the Table 2 global state, evaluates
the global reward, assembles ``(g, s, a, r, g', s')`` transitions, and
triggers the Learner's update bursts on the Table 4 cadence — all from the
``on_interval`` callback of the scenario runner (the flow-driven control
paradigm: flows request actions, the controller relays).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cc.base import CongestionController, Decision
from ..config import (
    ACTION_ALPHA,
    FlowConfig,
    LinkConfig,
    RewardConfig,
    ScenarioConfig,
)
from ..core.action import apply_action, pacing_from_cwnd
from ..core.learner import Learner
from ..core.reward import FlowSnapshot, RewardBlock
from ..core.state import LocalStateBlock, global_state_vector
from ..netsim.stats import MtpStats
from .multiflow import run_scenario


class TrainFlowController(CongestionController):
    """Astraea agent in training mode: shared policy plus exploration.

    The initial window is randomised per flow so early training covers the
    state space even while exploration noise is too small to move the
    multiplicative window far within one episode.  Exploration combines
    three mechanisms: uniform random actions until the replay buffer is
    warm, an epsilon of uniform actions afterwards (Gaussian noise added
    after the tanh cannot escape a saturated actor), and the Gaussian
    perturbation itself.
    """

    EPSILON_UNIFORM = 0.10

    def __init__(self, learner: Learner, noise_std: float = 0.1,
                 alpha: float = ACTION_ALPHA, mtp_s: float = 0.030,
                 initial_cwnd: float = 10.0, use_pacing: bool = True,
                 episode: int = 0, flow_index: int = 0):
        super().__init__(mtp_s)
        self.learner = learner
        self.noise_std = noise_std
        self.alpha = alpha
        self.use_pacing = use_pacing
        self._initial_cwnd = max(initial_cwnd, 2.0)
        self.state_block = LocalStateBlock(history=learner.cfg.history_length)
        # The exploration stream is a pure function of (learner seed,
        # episode, flow index) — NOT of how many controllers this process
        # ever built.  A class-level counter here once made two same-seed
        # runs in one process diverge, and would have broken bit-exact
        # checkpoint resume.
        self._rng = np.random.default_rng(
            [learner.cfg.seed, episode, flow_index])
        self.reset()

    @property
    def initial_cwnd(self) -> float:
        return self._initial_cwnd

    def reset(self) -> None:
        self.state_block.reset()
        self.cwnd = self._initial_cwnd
        self.last_state: np.ndarray | None = None
        self.last_action: float = 0.0

    def on_interval(self, stats: MtpStats) -> Decision:
        state = self.state_block.update(stats)
        if not self.learner.warm \
                or self._rng.random() < self.EPSILON_UNIFORM:
            action = float(self._rng.uniform(-0.999, 0.999))
        else:
            action = self.learner.act(state, noise_std=self.noise_std)
        self.cwnd = apply_action(self.cwnd, action, self.alpha)
        self.last_state = state
        self.last_action = action
        pacing = pacing_from_cwnd(self.cwnd, max(stats.srtt_s, 1e-6)) \
            if self.use_pacing else None
        return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)


@dataclass
class EpisodeStats:
    """What one training episode produced."""

    transitions: int = 0
    reward_sum: float = 0.0
    reward_count: int = 0
    update_bursts: int = 0
    last_losses: dict = field(default_factory=dict)

    @property
    def mean_reward(self) -> float:
        return self.reward_sum / self.reward_count if self.reward_count else 0.0


class Observer:
    """Gathers world observations and feeds the Learner (§3.2 Controller)."""

    def __init__(self, learner: Learner, link: LinkConfig,
                 flows: tuple[FlowConfig, ...],
                 controllers: list[TrainFlowController],
                 reward_config: RewardConfig | None = None,
                 local_reward=None, do_updates: bool = True):
        self.learner = learner
        self.link = link
        self.flows = flows
        self.controllers = controllers
        self.reward_block = RewardBlock(link, reward_config)
        self.local_reward = local_reward
        self.do_updates = do_updates
        self._latest: dict[int, MtpStats] = {}
        self._pending: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}
        self.stats = EpisodeStats()

    # ------------------------------------------------------------------

    def _active_indices(self, now: float) -> list[int]:
        """Active *agent* flows (cross-traffic competitors are part of the
        environment, not of the cooperating agent population)."""
        return [i for i in self._latest
                if self.flows[i].start_s <= now < self.flows[i].end_s()
                and isinstance(self.controllers[i], TrainFlowController)]

    def _snapshots(self, indices: list[int]) -> list[FlowSnapshot]:
        out = []
        for i in indices:
            s = self._latest[i]
            block = self.controllers[i].state_block
            out.append(FlowSnapshot(
                throughput_pps=s.throughput_pps,
                avg_thr_pps=block.avg_throughput_pps(),
                thr_std_pps=block.throughput_std_pps(),
                avg_rtt_s=s.avg_rtt_s,
                loss_pps=s.loss_pps,
                pacing_pps=s.pacing_pps,
            ))
        return out

    def __call__(self, now: float, idx: int, stats: MtpStats,
                 controller: CongestionController) -> None:
        """The scenario runner's on_interval hook."""
        self._latest[idx] = stats
        if not isinstance(controller, TrainFlowController):
            return  # cross traffic: environment, not an agent
        active = self._active_indices(now)
        if not active:
            return
        if self.local_reward is not None:
            reward = self.local_reward(stats, self.link)
        else:
            reward = self.reward_block.compute(self._snapshots(active)).total
        g_now = global_state_vector([self._latest[i] for i in active],
                                    self.link)
        ctl = self.controllers[idx]
        s_now, a_now = ctl.last_state, ctl.last_action
        if s_now is None:
            # The flow's first on_interval has not produced a state yet
            # (e.g. a freshly reset controller observed out of band); a
            # None here would poison a transition tuple, so skip it.
            self._pending.pop(idx, None)
            return
        if idx in self._pending:
            g_prev, s_prev, a_prev = self._pending[idx]
            self.learner.add_transition(g_prev, s_prev, a_prev, reward,
                                        g_now, s_now)
            self.stats.transitions += 1
            self.stats.reward_sum += reward
            self.stats.reward_count += 1
        self._pending[idx] = (g_now, s_now, a_now)

        if self.do_updates:
            losses = self.learner.maybe_update(now)
            if losses is not None:
                self.stats.update_bursts += 1
                self.stats.last_losses = losses


def run_training_episode(learner: Learner, scenario: ScenarioConfig,
                         noise_std: float, initial_cwnds: list[float],
                         reward_config: RewardConfig | None = None,
                         local_reward=None,
                         do_updates: bool = True,
                         episode: int = 0) -> EpisodeStats:
    """Collect one episode of experience (and update on the Table 4 cadence).

    ``local_reward`` switches the reward from Astraea's global objective to
    a per-flow local function (used to train the Aurora baseline with its
    own Eq. 1 reward in the identical harness).

    Flows whose scheme is not ``"astraea"`` are instantiated from the
    registry and act as environment cross traffic (e.g. a CUBIC competitor
    teaching TCP friendliness); they generate no transitions.

    ``episode`` seeds each flow's exploration stream (together with the
    learner seed and the flow index), which keeps runs reproducible — and
    checkpoint resume bit-exact — regardless of process history.
    """
    controllers: list[CongestionController | None] = []
    for flow_index, (cfg_flow, cw) in enumerate(zip(scenario.flows,
                                                    initial_cwnds)):
        if cfg_flow.cc == "astraea":
            controllers.append(TrainFlowController(
                learner, noise_std=noise_std, mtp_s=scenario.mtp_s,
                initial_cwnd=cw, episode=episode, flow_index=flow_index))
        else:
            controllers.append(None)
    observer_controllers = []
    from ..cc import create as create_cc

    for cfg_flow, ctl in zip(scenario.flows, controllers):
        if ctl is None:
            ctl = create_cc(cfg_flow.cc, **cfg_flow.cc_kwargs)
        observer_controllers.append(ctl)
    observer = Observer(learner, scenario.link, scenario.flows,
                        observer_controllers, reward_config=reward_config,
                        local_reward=local_reward, do_updates=do_updates)
    learner.reset_update_clock()
    run_scenario(scenario, controllers=observer_controllers,
                 on_interval=observer)
    return observer.stats
