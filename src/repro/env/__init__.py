"""Environment runners: scenario execution and RL episode collection."""

from .episode import (
    EpisodeStats,
    Observer,
    TrainFlowController,
    run_training_episode,
)
from .multiflow import (
    FlowLog,
    ScenarioDriver,
    ScenarioResult,
    build_driver,
    run_scenario,
    run_topology,
)
from .packetrun import run_scenario_packet
from .pool import EnvironmentPool

__all__ = [
    "FlowLog",
    "ScenarioResult",
    "ScenarioDriver",
    "build_driver",
    "run_scenario",
    "run_scenario_packet",
    "run_topology",
    "TrainFlowController",
    "Observer",
    "EpisodeStats",
    "run_training_episode",
    "EnvironmentPool",
]
