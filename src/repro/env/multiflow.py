"""Multi-flow scenario runner (§3.2 "Runtime" + "Flow generator").

:func:`run_scenario` builds a :class:`~repro.netsim.fluid.FluidNetwork`
from a :class:`~repro.config.ScenarioConfig`, instantiates one congestion
controller per flow, starts and stops flows at their configured times, and
drives every controller at its own monitoring cadence.  The result records
one row per (flow, monitoring interval) which all metrics and benchmarks
consume.

:func:`run_topology` does the same over a multi-bottleneck
:class:`~repro.netsim.topology.TopologyConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cc import create
from ..cc.base import CongestionController
from ..config import ScenarioConfig
from ..errors import SimulationError
from ..netsim import FluidNetwork, INITIAL_CWND_PKTS
from ..netsim.topology import TopologyConfig
from ..netsim.traces import create_trace
from ..units import mbps_to_pps

#: Scheme names that model unresponsive load (they never react to
#: congestion) — excluded from :meth:`ScenarioResult.foreground_indices`.
UNRESPONSIVE_CCS = frozenset({"constant-rate"})


@dataclass
class FlowLog:
    """Per-monitoring-interval records of one flow."""

    cc_name: str
    start_s: float
    end_s: float
    times: list[float] = field(default_factory=list)
    throughput_mbps: list[float] = field(default_factory=list)
    rtt_s: list[float] = field(default_factory=list)
    loss_rate: list[float] = field(default_factory=list)
    cwnd_pkts: list[float] = field(default_factory=list)
    send_rate_mbps: list[float] = field(default_factory=list)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All series as numpy arrays keyed by field name."""
        return {
            "times": np.asarray(self.times),
            "throughput_mbps": np.asarray(self.throughput_mbps),
            "rtt_s": np.asarray(self.rtt_s),
            "loss_rate": np.asarray(self.loss_rate),
            "cwnd_pkts": np.asarray(self.cwnd_pkts),
            "send_rate_mbps": np.asarray(self.send_rate_mbps),
        }


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    flows: list[FlowLog]
    duration_s: float
    bottleneck_mbps: float
    base_rtt_s: float

    # ------------------------------------------------------------------

    def throughput_matrix(self, grid_s: float = 0.1
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resample all flows onto a common time grid.

        Returns ``(times, matrix, active)`` where ``matrix[i, t]`` is flow
        ``i``'s throughput (Mbps) in the grid slot around ``times[t]`` and
        ``active[i, t]`` marks the slots in which the flow was running.
        """
        if grid_s <= 0:
            raise SimulationError("grid must be positive")
        n_bins = max(int(np.ceil(self.duration_s / grid_s)), 1)
        times = (np.arange(n_bins) + 0.5) * grid_s
        matrix = np.zeros((len(self.flows), n_bins))
        counts = np.zeros((len(self.flows), n_bins))
        active = np.zeros((len(self.flows), n_bins), dtype=bool)
        for i, flow in enumerate(self.flows):
            active[i] = (times >= flow.start_s) & (times < flow.end_s)
            idx = np.minimum((np.asarray(flow.times) / grid_s).astype(int),
                             n_bins - 1)
            np.add.at(matrix[i], idx, np.asarray(flow.throughput_mbps))
            np.add.at(counts[i], idx, 1.0)
            filled = counts[i] > 0
            matrix[i, filled] /= counts[i, filled]
            # Carry the last sample forward through empty slots while active.
            last = 0.0
            for t in range(n_bins):
                if filled[t]:
                    last = matrix[i, t]
                elif active[i, t]:
                    matrix[i, t] = last
        return times, matrix, active

    def foreground_indices(self) -> tuple[int, ...]:
        """Indices of the flows under evaluation.

        Unresponsive cross-traffic (see :data:`UNRESPONSIVE_CCS`) is
        load, not a fairness participant — fairness metrics should not
        reward or punish a scheme for the blaster's fixed share.
        """
        return tuple(i for i, f in enumerate(self.flows)
                     if f.cc_name not in UNRESPONSIVE_CCS)

    def jain_series(self, grid_s: float = 0.1,
                    indices: tuple[int, ...] | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Jain fairness index over time, at slots with >= 2 active flows.

        ``indices`` restricts the index to a subset of flows (e.g.
        :meth:`foreground_indices` to exclude unresponsive cross
        traffic); by default all flows participate.
        """
        from ..metrics.fairness import jain_index

        times, matrix, active = self.throughput_matrix(grid_s)
        if indices is not None:
            sel = np.asarray(indices, dtype=int)
            matrix, active = matrix[sel], active[sel]
        out_t, out_j = [], []
        for t in range(len(times)):
            live = active[:, t]
            if live.sum() >= 2:
                out_t.append(times[t])
                out_j.append(jain_index(matrix[live, t]))
        return np.asarray(out_t), np.asarray(out_j)

    def mean_jain(self, grid_s: float = 0.1, warmup_s: float = 2.0,
                  indices: tuple[int, ...] | None = None) -> float:
        """Average Jain index over all multi-flow slots after a warmup."""
        t, j = self.jain_series(grid_s, indices=indices)
        if len(j) == 0:
            return float("nan")
        keep = t >= (t[0] + warmup_s)
        return float(np.mean(j[keep])) if keep.any() else float(np.mean(j))

    def flow_mean_throughput(self, i: int, skip_s: float = 0.0) -> float:
        """Mean throughput (Mbps) of flow ``i`` after ``skip_s`` of its life."""
        flow = self.flows[i]
        times = np.asarray(flow.times)
        thr = np.asarray(flow.throughput_mbps)
        keep = times >= flow.start_s + skip_s
        return float(np.mean(thr[keep])) if keep.any() else 0.0

    def utilization(self, skip_s: float = 2.0) -> float:
        """Aggregate delivered throughput over capacity, after a warmup."""
        times, matrix, active = self.throughput_matrix()
        total = (matrix * active).sum(axis=0)
        keep = (times >= skip_s) & (active.any(axis=0))
        if not keep.any():
            return 0.0
        return float(np.mean(total[keep]) / self.bottleneck_mbps)

    def mean_rtt_s(self, skip_s: float = 2.0) -> float:
        """Mean RTT across flows and time, after a warmup."""
        values = []
        for flow in self.flows:
            t = np.asarray(flow.times)
            r = np.asarray(flow.rtt_s)
            keep = t >= flow.start_s + skip_s
            if keep.any():
                values.append(r[keep])
        if not values:
            return 0.0
        return float(np.mean(np.concatenate(values)))

    def mean_loss_rate(self, skip_s: float = 2.0) -> float:
        """Mean per-interval loss rate across flows, after a warmup."""
        values = []
        for flow in self.flows:
            t = np.asarray(flow.times)
            l = np.asarray(flow.loss_rate)
            keep = t >= flow.start_s + skip_s
            if keep.any():
                values.append(l[keep])
        if not values:
            return 0.0
        return float(np.mean(np.concatenate(values)))


@dataclass
class _RunningFlow:
    index: int
    engine_id: int
    controller: CongestionController
    next_ctrl_s: float
    end_s: float


class ScenarioDriver:
    """Steppable scenario executor.

    One call to :meth:`step` advances the network by one tick and runs
    every controller whose monitoring interval expired.  ``run_scenario``
    simply steps a driver to completion; the training pool
    (:class:`repro.env.pool.EnvironmentPool`) interleaves several drivers
    to emulate the paper's parallel environment instances (Appendix A).
    """

    def __init__(self, engine: FluidNetwork, scenario_flows, paths,
                 base_rtt_fn, duration_s: float, tick_s: float, controllers,
                 bottleneck_mbps: float, base_rtt_s: float,
                 on_interval=None, align_intervals: bool = False):
        self._engine = engine
        self._flows = scenario_flows
        self._paths = paths
        self._base_rtt_fn = base_rtt_fn
        self.duration_s = duration_s
        self._tick_s = tick_s
        self._controllers = controllers
        self._on_interval = on_interval
        self._align_intervals = align_intervals
        self._logs = [FlowLog(cc_name=f.cc, start_s=f.start_s,
                              end_s=min(f.end_s(), duration_s))
                      for f in scenario_flows]
        self._pending = sorted(range(len(scenario_flows)),
                               key=lambda i: scenario_flows[i].start_s)
        self._running: list[_RunningFlow] = []
        self._bottleneck_mbps = bottleneck_mbps
        self._base_rtt_s = base_rtt_s
        self.done = False

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def engine(self) -> FluidNetwork:
        """The underlying network engine (read-only observer access)."""
        return self._engine

    @property
    def running_flows(self) -> list[_RunningFlow]:
        """Currently active flows (engine id + scenario index pairs)."""
        return list(self._running)

    def _next_deadline(self, now: float, interval_s: float,
                       grid_s: float) -> float:
        """The next controller deadline after ``now``.

        With ``align_intervals`` the deadline snaps up to the next
        multiple of the controller's MTP, so every same-cadence flow of
        the scenario decides in the *same* pass — the property the
        batched training runner needs to stack whole-pool action
        selection into one matmul.  Flows started at staggered offsets
        otherwise keep pairwise-irrational deadlines forever.
        """
        t = now + max(interval_s, self._tick_s)
        if not self._align_intervals or grid_s <= 0:
            return t
        return max(1, int(np.ceil(t / grid_s - 1e-9))) * grid_s

    def _start_due_flows(self, now: float) -> None:
        # Gather every due flow first and register the whole batch with
        # one ``add_flows`` call: simultaneous starts (a fleet shard
        # starts all its flows at t=0) would otherwise rebuild the
        # engine's SoA state once per flow — O(n^2) for an n-flow shard.
        due = []
        while self._pending and \
                self._flows[self._pending[0]].start_s <= now + 1e-12:
            i = self._pending.pop(0)
            cfg = self._flows[i]
            if self._controllers is not None and \
                    self._controllers[i] is not None:
                controller = self._controllers[i]
            else:
                controller = create(cfg.cc, **cfg.cc_kwargs)
            controller.reset()
            due.append((i, cfg, controller))
        if not due:
            return
        fids = self._engine.add_flows([
            {
                "base_rtt_s": self._base_rtt_fn(i),
                "path": list(self._paths[i]) if self._paths is not None
                else None,
                "cwnd_pkts": controller.initial_cwnd,
            }
            for i, _cfg, controller in due
        ])
        for fid, (i, cfg, controller) in zip(fids, due):
            self._running.append(_RunningFlow(
                index=i, engine_id=fid, controller=controller,
                next_ctrl_s=self._next_deadline(now, controller.mtp_s,
                                                controller.mtp_s),
                end_s=min(cfg.end_s(), self.duration_s),
            ))

    def _begin_step(self) -> bool:
        """Shared per-step preamble: flow churn and termination checks."""
        if self.done:
            return False
        engine = self._engine
        now = engine.now
        if now >= self.duration_s:
            self.done = True
            return False
        self._start_due_flows(now)
        for rf in [rf for rf in self._running if rf.end_s <= now]:
            engine.remove_flow(rf.engine_id)
            self._running.remove(rf)
        if not self._running and not self._pending:
            self.done = True
            return False
        return True

    def step(self) -> bool:
        """Advance one tick; returns False once the scenario finished."""
        if not self._begin_step():
            return False
        engine = self._engine
        engine.advance(self._tick_s)
        self._controller_pass(engine.now)
        return True

    def step_block(self) -> bool:
        """Advance to the next controller/flow event in one engine block.

        Equivalent to calling :meth:`step` repeatedly — the block is sized
        so that no controller deadline, flow start/stop, or the scenario
        end falls strictly inside it, and the tick count is the *floor* of
        the distance to the nearest event, so the landing tick boundaries
        are exactly the ones per-tick stepping would visit (undershooting
        merely costs another iteration).  Between MTP decisions this lets
        the engine run its vectorized multi-tick kernel.
        """
        if not self._begin_step():
            return False
        engine = self._engine
        now = engine.now
        horizon = self.duration_s
        if self._pending:
            horizon = min(horizon, self._flows[self._pending[0]].start_s)
        for rf in self._running:
            if rf.next_ctrl_s < horizon:
                horizon = rf.next_ctrl_s
            if rf.end_s < horizon:
                horizon = rf.end_s
        n_ticks = max(1, int((horizon - now) / self._tick_s))
        engine.advance_block(self._tick_s, n_ticks)
        self._controller_pass(engine.now)
        return True

    def _controller_pass(self, now: float) -> None:
        """Run every controller whose monitoring interval has expired."""
        for rf, stats in self.collect_due(now):
            self.finish_flow(rf, stats, rf.controller.on_interval(stats))

    def collect_due(self, now: float) -> list:
        """Stats for every flow whose monitoring interval has expired.

        Pure collection: per-flow monitor reads only, no controller call
        and no engine mutation — so gathering all due flows up front is
        bitwise identical to the historical interleaved walk (one flow's
        ``set_cwnd`` never alters another flow's already-recorded
        monitoring history).  Returns ``(running_flow, stats)`` pairs in
        ``_running`` order.
        """
        engine = self._engine
        due = []
        for rf in self._running:
            if now + 1e-12 < rf.next_ctrl_s:
                continue
            stats = engine.monitor(rf.engine_id).collect(
                now,
                cwnd_pkts=engine.cwnd(rf.engine_id),
                pacing_pps=engine.flow_rate_pps(rf.engine_id),
                pkts_in_flight=engine.pkts_in_flight(rf.engine_id),
            )
            due.append((rf, stats))
        return due

    def finish_flow(self, rf: _RunningFlow, stats, decision) -> None:
        """Apply one controller decision collected by :meth:`collect_due`:
        set the window, log the interval, fire the observer callback and
        schedule the flow's next deadline."""
        now = self._engine.now
        self._engine.set_cwnd(rf.engine_id, decision.cwnd_pkts,
                              decision.pacing_pps)
        log = self._logs[rf.index]
        log.times.append(now)
        log.throughput_mbps.append(stats.throughput_mbps)
        log.rtt_s.append(stats.avg_rtt_s)
        log.loss_rate.append(stats.loss_rate)
        log.cwnd_pkts.append(decision.cwnd_pkts)
        log.send_rate_mbps.append(
            decision.cwnd_pkts / max(stats.srtt_s, 1e-6)
            / mbps_to_pps(1.0))
        if self._on_interval is not None:
            self._on_interval(now, rf.index, stats, rf.controller)
        rf.next_ctrl_s = self._next_deadline(
            now, rf.controller.interval_s(stats.srtt_s), rf.controller.mtp_s)

    def step_collect(self) -> list | None:
        """First half of a two-phase block step (the training fast path).

        Advances the engine to the next controller/flow event (exactly
        like :meth:`step_block`) and returns the due ``(running_flow,
        stats)`` pairs *without* invoking any controller; the caller
        decides — per flow or batched across the whole pass — and hands
        each decision back through :meth:`finish_flow`.  Returns ``None``
        once the scenario has finished.
        """
        if not self._begin_step():
            return None
        engine = self._engine
        now = engine.now
        horizon = self.duration_s
        if self._pending:
            horizon = min(horizon, self._flows[self._pending[0]].start_s)
        for rf in self._running:
            if rf.next_ctrl_s < horizon:
                horizon = rf.next_ctrl_s
            if rf.end_s < horizon:
                horizon = rf.end_s
        n_ticks = max(1, int((horizon - now) / self._tick_s))
        engine.advance_block(self._tick_s, n_ticks)
        return self.collect_due(engine.now)

    def result(self) -> ScenarioResult:
        """Logs collected so far (complete once :meth:`step` returns False)."""
        return ScenarioResult(
            flows=self._logs,
            duration_s=self.duration_s,
            bottleneck_mbps=self._bottleneck_mbps,
            base_rtt_s=self._base_rtt_s,
        )


def _drive(engine: FluidNetwork, scenario_flows, paths, base_rtt_fn,
           duration_s: float, tick_s: float, controllers, bottleneck_mbps: float,
           base_rtt_s: float, on_interval=None) -> ScenarioResult:
    """Run a driver to completion (single-link and topology runs)."""
    driver = ScenarioDriver(engine, scenario_flows, paths, base_rtt_fn,
                            duration_s, tick_s, controllers,
                            bottleneck_mbps, base_rtt_s, on_interval)
    while driver.step_block():
        pass
    return driver.result()


def build_driver(scenario: ScenarioConfig,
                 controllers: list[CongestionController | None] | None = None,
                 on_interval=None,
                 align_intervals: bool = False) -> ScenarioDriver:
    """Create a steppable driver for a single-bottleneck scenario."""
    traces = None
    if scenario.trace is not None:
        traces = {scenario.link.name: create_trace(scenario.trace,
                                                   **scenario.trace_kwargs)}
    engine = FluidNetwork(scenario.link, traces=traces, seed=scenario.seed,
                          faults=scenario.faults)

    def base_rtt(i: int) -> float:
        return scenario.link.rtt_s + scenario.flows[i].extra_rtt_ms / 1e3

    return ScenarioDriver(
        engine, scenario.flows, None, base_rtt,
        scenario.duration_s, scenario.tick_s, controllers,
        bottleneck_mbps=scenario.link.bandwidth_mbps,
        base_rtt_s=scenario.link.rtt_s,
        on_interval=on_interval,
        align_intervals=align_intervals,
    )


def run_scenario(scenario: ScenarioConfig,
                 controllers: list[CongestionController | None] | None = None,
                 on_interval=None) -> ScenarioResult:
    """Run a single-bottleneck scenario and return its logs.

    ``controllers`` optionally injects pre-built controller instances
    (index-aligned with ``scenario.flows``); entries left ``None`` are
    created from the flow's registered scheme name.  ``on_interval`` is an
    optional callback ``(now, flow_index, stats, controller)`` invoked after
    every controller decision — the training loop uses it to harvest
    transitions.
    """
    driver = build_driver(scenario, controllers=controllers,
                          on_interval=on_interval)
    while driver.step_block():
        pass
    return driver.result()


def run_topology(topology: TopologyConfig,
                 controllers: list[CongestionController | None] | None = None,
                 ) -> ScenarioResult:
    """Run a multi-bottleneck scenario described by a TopologyConfig."""
    engine = FluidNetwork(list(topology.links), seed=topology.seed)
    first_link = topology.links[0]

    def base_rtt(i: int) -> float:
        return first_link.rtt_s + topology.flows[i].extra_rtt_ms / 1e3

    return _drive(
        engine, topology.flows, topology.paths, base_rtt,
        topology.duration_s, topology.tick_s, controllers,
        bottleneck_mbps=first_link.bandwidth_mbps,
        base_rtt_s=first_link.rtt_s,
    )
