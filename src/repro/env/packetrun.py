"""Packet-engine scenario runner.

:func:`run_scenario_packet` executes a :class:`~repro.config.ScenarioConfig`
on the discrete-event :class:`~repro.netsim.packet.PacketNetwork` with real
congestion controllers attached, producing the same
:class:`~repro.env.multiflow.ScenarioResult` record the fluid runner emits —
so every metric (summaries, convergence, recovery) works unchanged on
either engine.  The robustness benchmark uses it to cross-check the fault
layer: the same scheme under the same :class:`FaultSchedule` must tell the
same macro story on both substrates.

The packet engine registers all flows up front and runs a single event
loop; per-flow ``start_s``/``duration_s`` windows (staggered arrivals,
incast bursts) map onto the engine's send-window guards.  Traced
(variable-capacity) scenarios stay on the fluid engine.
"""

from __future__ import annotations

from ..cc import create
from ..cc.base import CongestionController
from ..config import ScenarioConfig
from ..errors import SimulationError
from ..netsim.packet import PacketNetwork
from ..netsim.stats import FlowMonitor, MtpStats
from ..units import mbps_to_pps
from .multiflow import FlowLog, ScenarioResult


class _PacketFlowDriver:
    """Adapts the engine's per-MTP callback to the controller contract.

    The engine fires once per ``mtp_s`` with raw window counters; the
    driver accumulates them until the controller's own monitoring interval
    expires (per-RTT schemes stretch it), assembles an
    :class:`~repro.netsim.stats.MtpStats`, applies the decision, and logs
    one record — mirroring what :class:`ScenarioDriver` does per tick on
    the fluid engine.
    """

    def __init__(self, controller: CongestionController, base_rtt_s: float,
                 mtp_s: float, log: FlowLog, start_s: float = 0.0):
        self._controller = controller
        self._base_rtt_s = base_rtt_s
        self._mtp_s = mtp_s
        self._log = log
        self._srtt = FlowMonitor(base_rtt_s)  # reuse its smoothed-RTT rule
        self._net: PacketNetwork | None = None
        self._fid = -1
        self._pacing_pps: float | None = None
        self._next_ctrl_s = start_s + mtp_s
        self._window_start_s = start_s
        self._sent = self._delivered = self._lost = 0.0
        self._rtt_weighted = 0.0
        self._rtt_min = float("inf")

    def bind(self, net: PacketNetwork, fid: int) -> None:
        self._net = net
        self._fid = fid

    def __call__(self, raw: dict) -> None:
        now = raw["time_s"]
        self._sent += raw["sent_pkts"]
        self._lost += raw["lost_pkts"]
        delivered = raw["throughput_pps"] * raw["duration_s"]
        self._delivered += delivered
        if delivered > 0:
            self._rtt_weighted += raw["avg_rtt_s"] * delivered
            self._rtt_min = min(self._rtt_min, raw["avg_rtt_s"])
            self._srtt.observe_rtt(raw["avg_rtt_s"])
        if now + 1e-12 < self._next_ctrl_s:
            return None
        duration = max(now - self._window_start_s, 1e-9)
        if self._delivered > 0:
            avg_rtt = self._rtt_weighted / self._delivered
        else:
            avg_rtt = self._srtt.srtt_s
        stats = MtpStats(
            time_s=now,
            duration_s=duration,
            throughput_pps=self._delivered / duration,
            avg_rtt_s=avg_rtt,
            min_rtt_s=self._rtt_min if self._rtt_min != float("inf")
            else avg_rtt,
            sent_pkts=self._sent,
            delivered_pkts=self._delivered,
            lost_pkts=self._lost,
            pkts_in_flight=raw["pkts_in_flight"],
            cwnd_pkts=raw["cwnd_pkts"],
            pacing_pps=self._pacing_pps if self._pacing_pps else 0.0,
            srtt_s=self._srtt.srtt_s,
        )
        decision = self._controller.on_interval(stats)
        self._pacing_pps = decision.pacing_pps
        assert self._net is not None
        self._net.set_cwnd(self._fid, decision.cwnd_pkts,
                           decision.pacing_pps)
        log = self._log
        log.times.append(now)
        log.throughput_mbps.append(stats.throughput_mbps)
        log.rtt_s.append(stats.avg_rtt_s)
        log.loss_rate.append(stats.loss_rate)
        log.cwnd_pkts.append(decision.cwnd_pkts)
        log.send_rate_mbps.append(
            decision.cwnd_pkts / max(stats.srtt_s, 1e-6) / mbps_to_pps(1.0))
        self._window_start_s = now
        self._next_ctrl_s = now + max(
            self._controller.interval_s(stats.srtt_s), self._mtp_s)
        self._sent = self._delivered = self._lost = 0.0
        self._rtt_weighted = 0.0
        self._rtt_min = float("inf")
        return None


def run_scenario_packet(scenario: ScenarioConfig,
                        controllers: list[CongestionController | None]
                        | None = None) -> ScenarioResult:
    """Run a single-bottleneck scenario on the packet engine.

    ``controllers`` optionally injects pre-built instances, index-aligned
    with ``scenario.flows`` (``None`` entries are created from the
    registry), matching :func:`~repro.env.multiflow.run_scenario`.
    """
    if scenario.trace is not None:
        raise SimulationError(
            "the packet runner does not support capacity traces; "
            "run traced scenarios on the fluid engine")
    net = PacketNetwork(scenario.link, seed=scenario.seed,
                        mtp_s=scenario.mtp_s, faults=scenario.faults)
    logs = []
    for i, cfg in enumerate(scenario.flows):
        if controllers is not None and controllers[i] is not None:
            controller = controllers[i]
        else:
            controller = create(cfg.cc, **cfg.cc_kwargs)
        controller.reset()
        base_rtt_s = scenario.link.rtt_s + cfg.extra_rtt_ms / 1e3
        stop_s = min(cfg.end_s(), scenario.duration_s)
        log = FlowLog(cc_name=cfg.cc, start_s=cfg.start_s,
                      end_s=stop_s)
        driver = _PacketFlowDriver(controller, base_rtt_s, scenario.mtp_s,
                                   log, start_s=cfg.start_s)
        fid = net.add_flow(base_rtt_s=base_rtt_s,
                           cwnd=controller.initial_cwnd, on_mtp=driver,
                           start_s=cfg.start_s, stop_s=stop_s)
        driver.bind(net, fid)
        logs.append(log)
    net.run(scenario.duration_s)
    return ScenarioResult(
        flows=logs,
        duration_s=scenario.duration_s,
        bottleneck_mbps=scenario.link.bandwidth_mbps,
        base_rtt_s=scenario.link.rtt_s,
    )
