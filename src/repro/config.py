"""Configuration objects and paper hyperparameters.

This module is the single source of truth for the constants the paper
publishes:

* Table 3 — training environment characteristics (bandwidth, base RTT and
  buffer-size ranges the offline training samples from).
* Table 4 — training hyperparameters (learning rates, history length ``w``,
  discount ``gamma``, batch size, the action coefficient ``alpha`` of Eq. 3,
  the reward coefficients ``c0..c4`` of Eq. 8 and the 30 ms monitoring time
  period).

Everything else in the library takes one of the dataclasses below rather
than loose keyword arguments, so experiments are reproducible from a single
serialisable description.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError
from .units import bdp_packets, mbps_to_pps

# ---------------------------------------------------------------------------
# Table 4 — training hyperparameters (verbatim from the paper appendix).
# ---------------------------------------------------------------------------

LEARNING_RATE = 1e-3
HISTORY_LENGTH = 5               # w, per-MTP states stacked as model input
GAMMA = 0.98                     # discount factor
BATCH_SIZE = 192
MODEL_UPDATE_INTERVAL_S = 5.0    # environment seconds between update bursts
MODEL_UPDATE_STEPS = 20          # gradient steps per burst
ACTION_ALPHA = 0.025             # responsiveness coefficient of Eq. 3
REWARD_C0 = 0.1                  # throughput term
REWARD_C1 = 0.02                 # latency term
REWARD_C2 = 1.0                  # loss term
REWARD_C3 = 0.02                 # fairness term
REWARD_C4 = 0.01                 # stability term
MTP_S = 0.030                    # monitoring time period (30 ms)
LATENCY_TOLERANCE_BETA = 0.20    # beta of Eq. 5: queueing below beta*d0 is free
REWARD_BOUND = 0.1               # reward scaled into (-0.1, 0.1) per MTP

# ---------------------------------------------------------------------------
# Table 3 — training environment characteristics.
# ---------------------------------------------------------------------------

TRAIN_BANDWIDTH_MBPS = (40.0, 160.0)
TRAIN_RTT_MS = (10.0, 140.0)
TRAIN_BUFFER_BDP = (0.1, 16.0)
TRAIN_FLOW_COUNT = (2, 5)

# Network sizes of the actor / critic MLPs (Section 4).
HIDDEN_LAYERS = (256, 128, 64)


@dataclass(frozen=True)
class LinkConfig:
    """A single emulated bottleneck link.

    ``bandwidth_mbps`` may be overridden per-tick by a capacity trace (see
    :mod:`repro.netsim.traces`); it then acts as the nominal value used for
    buffer sizing.  ``buffer_bdp`` sizes the drop-tail queue in multiples of
    the bandwidth-delay product computed from ``bandwidth_mbps`` and
    ``rtt_ms`` unless ``buffer_packets`` pins an absolute size.
    """

    bandwidth_mbps: float = 100.0
    rtt_ms: float = 30.0
    buffer_bdp: float = 1.0
    buffer_packets: float | None = None
    random_loss: float = 0.0
    qdisc: str = "droptail"
    qdisc_kwargs: dict = field(default_factory=dict)
    name: str = "bottleneck"

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.rtt_ms <= 0:
            raise ConfigError(f"rtt must be positive, got {self.rtt_ms}")
        if self.buffer_bdp <= 0 and self.buffer_packets is None:
            raise ConfigError("buffer must be positive")
        if not 0.0 <= self.random_loss < 1.0:
            raise ConfigError(f"random loss must lie in [0, 1), got {self.random_loss}")

    @property
    def rtt_s(self) -> float:
        """Base round-trip time in seconds."""
        return self.rtt_ms / 1e3

    @property
    def one_way_delay_s(self) -> float:
        """Base one-way delay d0 in seconds (half the base RTT)."""
        return self.rtt_s / 2.0

    @property
    def capacity_pps(self) -> float:
        """Nominal capacity in packets per second."""
        return mbps_to_pps(self.bandwidth_mbps)

    @property
    def buffer_size_packets(self) -> float:
        """Drop-tail buffer size in packets."""
        if self.buffer_packets is not None:
            return self.buffer_packets
        return max(1.0, self.buffer_bdp * bdp_packets(self.bandwidth_mbps, self.rtt_s))


@dataclass(frozen=True)
class FlowConfig:
    """One flow in a scenario.

    ``cc`` names a registered congestion-control scheme (see
    :func:`repro.cc.create`).  ``extra_rtt_ms`` adds per-flow propagation
    delay on top of the link base RTT, which is how RTT-heterogeneous
    scenarios (Fig. 8) are expressed.  ``cc_kwargs`` is forwarded to the
    controller factory.
    """

    cc: str = "astraea"
    start_s: float = 0.0
    duration_s: float | None = None
    extra_rtt_ms: float = 0.0
    cc_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError(f"start time must be >= 0, got {self.start_s}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration_s}")
        if self.extra_rtt_ms < 0:
            raise ConfigError(f"extra rtt must be >= 0, got {self.extra_rtt_ms}")

    def end_s(self) -> float:
        """Absolute stop time, ``inf`` for a long-running flow."""
        if self.duration_s is None:
            return float("inf")
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete single-bottleneck experiment description.

    ``faults`` optionally attaches a
    :class:`~repro.netsim.faults.FaultSchedule` of link impairments
    (blackouts, bandwidth flaps, loss bursts, delay spikes, reorder
    windows); both network engines consult it every tick.
    """

    link: LinkConfig = field(default_factory=LinkConfig)
    flows: tuple[FlowConfig, ...] = ()
    duration_s: float = 60.0
    mtp_s: float = MTP_S
    tick_s: float = 0.002
    seed: int = 0
    trace: str | None = None
    trace_kwargs: dict = field(default_factory=dict)
    faults: "object | None" = None

    def __post_init__(self) -> None:
        if not self.flows:
            raise ConfigError("a scenario needs at least one flow")
        if self.duration_s <= 0:
            raise ConfigError("scenario duration must be positive")
        if self.tick_s <= 0 or self.tick_s > self.mtp_s:
            raise ConfigError(
                f"tick ({self.tick_s}) must be positive and no longer than "
                f"one MTP ({self.mtp_s})"
            )
        if self.faults is not None:
            from .netsim.faults import FaultSchedule

            if not isinstance(self.faults, FaultSchedule):
                raise ConfigError(
                    f"faults must be a FaultSchedule, "
                    f"got {type(self.faults).__name__}")


@dataclass(frozen=True)
class RewardConfig:
    """Coefficients of the global reward, Eq. 8 (defaults from Table 4)."""

    c_thr: float = REWARD_C0
    c_lat: float = REWARD_C1
    c_loss: float = REWARD_C2
    c_fair: float = REWARD_C3
    c_stab: float = REWARD_C4
    beta: float = LATENCY_TOLERANCE_BETA
    bound: float = REWARD_BOUND

    def __post_init__(self) -> None:
        if self.bound <= 0:
            raise ConfigError("reward bound must be positive")
        if self.beta < 0:
            raise ConfigError("latency tolerance beta must be >= 0")


@dataclass(frozen=True)
class TrainingConfig:
    """Offline-training knobs (defaults from Tables 3 and 4)."""

    actor_lr: float = LEARNING_RATE
    critic_lr: float = LEARNING_RATE
    gamma: float = GAMMA
    batch_size: int = BATCH_SIZE
    history_length: int = HISTORY_LENGTH
    hidden_layers: tuple[int, ...] = HIDDEN_LAYERS
    replay_capacity: int = 200_000
    warmup_transitions: int = 2_000
    update_interval_s: float = MODEL_UPDATE_INTERVAL_S
    update_steps: int = MODEL_UPDATE_STEPS
    tau: float = 0.01                 # Polyak factor for target networks
    policy_delay: int = 2             # TD3 delayed policy updates
    actor_warmup_updates: int = 0     # freeze actor for the first N updates
                                      # (lets fresh critics learn to value a
                                      # warm-started policy before touching it)
    target_noise: float = 0.1         # TD3 target policy smoothing std
    target_noise_clip: float = 0.3
    exploration_noise: float = 0.15
    exploration_decay: float = 0.999
    episodes: int = 300
    episode_duration_s: float = 24.0
    parallel_envs: int = 1
    # --- runtime resilience -------------------------------------------
    fault_prob: float = 0.0           # chance an episode carries link faults
    max_consecutive_failures: int = 5  # quarantined episodes before aborting
    rollback_budget: int = 3          # divergence rollbacks before raising
    rollback_lr_decay: float = 0.5    # LR multiplier applied per rollback
    checkpoint_every: int = 50        # episodes between training checkpoints
    bandwidth_mbps: tuple[float, float] = TRAIN_BANDWIDTH_MBPS
    rtt_ms: tuple[float, float] = TRAIN_RTT_MS
    buffer_bdp: tuple[float, float] = TRAIN_BUFFER_BDP
    flow_count: tuple[int, int] = TRAIN_FLOW_COUNT
    reward: RewardConfig = field(default_factory=RewardConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.gamma <= 1:
            raise ConfigError("gamma must lie in (0, 1]")
        if self.batch_size <= 0:
            raise ConfigError("batch size must be positive")
        if self.history_length <= 0:
            raise ConfigError("history length must be positive")
        if self.parallel_envs <= 0:
            raise ConfigError("parallel env count must be positive")
        if not 0.0 <= self.fault_prob <= 1.0:
            raise ConfigError("fault probability must lie in [0, 1]")
        if self.max_consecutive_failures <= 0:
            raise ConfigError("failure budget must be positive")
        if self.rollback_budget <= 0:
            raise ConfigError("rollback budget must be positive")
        if not 0.0 < self.rollback_lr_decay <= 1.0:
            raise ConfigError("rollback LR decay must lie in (0, 1]")
        if self.checkpoint_every <= 0:
            raise ConfigError("checkpoint interval must be positive")


def replace(cfg, **changes):
    """``dataclasses.replace`` re-exported for ergonomic config tweaking."""
    return dataclasses.replace(cfg, **changes)
