"""Scenario-family benchmark: JFI x utilization per scheme per family.

The ROADMAP's "bench scenarios" sweep: run every requested scheme over
the datacenter/asymmetric/adversarial workload families of the scenario
registry (:mod:`repro.scenarios`) on both the fluid and the packet
engine, and table Jain fairness x link utilization per cell — the
paper's two headline axes, now measured on workloads its own evaluation
never contains.  Fairness is computed over the *foreground* flows only
(unresponsive cross traffic is load, not a participant; see
:meth:`~repro.env.multiflow.ScenarioResult.foreground_indices`).

Entry points: :func:`run_scenario_sweep` (the full cross product,
programmable subset), :func:`markdown_report`, and the
``repro bench scenarios`` CLI subcommand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..errors import ConfigError
from ..parallel import parallel_map, resolve_workers
from ..scenarios import build_scenario, get_family
from .reporting import markdown_table
from .robustness import (
    ALL_SCHEMES,
    ENGINES,
    run_engine_scenario,
    validate_sweep_axes,
)

#: Artifact stem (``benchmarks/results/BENCH_scenarios.json`` / ``.md``).
BENCH_ID = "BENCH_scenarios"

#: Families of the default sweep — the three beyond-the-paper workloads.
SWEEP_FAMILIES = ("incast", "asymmetric-rtt", "background-udp")

#: The CI smoke subset: 3 schemes x all 3 families x both engines.
SMALL_SCHEMES = ("astraea", "cubic", "bbr")

#: Warmup skipped before the fairness/utilization averages.
WARMUP_S = 2.0


@dataclass(frozen=True)
class ScenarioCell:
    """Aggregated metrics of one (scheme, family, engine) cell.

    ``jfi`` and ``utilization`` are means over the cell's trials;
    both are the steady-state averages after :data:`WARMUP_S`.
    """

    scheme: str
    family: str
    engine: str
    trials: int
    jfi: float
    utilization: float
    mean_rtt_ms: float
    mean_loss_rate: float
    #: Wall-clock spent running this cell (a timing field — excluded
    #: from determinism comparisons, see ``strip_timing_fields``).
    elapsed_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "family": self.family,
            "engine": self.engine,
            "trials": self.trials,
            "jfi": self.jfi,
            "utilization": self.utilization,
            "mean_rtt_ms": self.mean_rtt_ms,
            "mean_loss_rate": self.mean_loss_rate,
            "elapsed_s": self.elapsed_s,
        }


def validate_scenario_axes(schemes, families, engines) -> None:
    """Axis validation for the scenario sweep (typed, up-front).

    On top of the shared name checks, families whose registry entry
    marks ``packet_ok=False`` (capacity-traced workloads) are rejected
    when the packet engine is requested.
    """
    validate_sweep_axes(schemes, (), engines, families=families)
    needs_packet = [e for e in engines if e != "fluid"]
    if needs_packet:
        traced = [f for f in families if not get_family(f).packet_ok]
        if traced:
            raise ConfigError(
                f"families {traced} drive a capacity trace and only run "
                f"on the fluid engine; drop them or use --engines fluid")


def run_scenario_cell(scheme: str, family: str, engine: str,
                      trials: int = 2, quick: bool = True,
                      seeds=None) -> ScenarioCell:
    """Run one (scheme, family, engine) cell across its seeds.

    ``seeds`` defaults to ``range(trials)``; passing it explicitly lets
    a task payload carry its own seeds (the parallel-layer contract).
    """
    start = time.perf_counter()
    if seeds is None:
        seeds = range(trials)
    jfi, util, rtt_ms, loss = [], [], [], []
    for seed in seeds:
        scenario = build_scenario(family, cc=scheme, quick=quick, seed=seed)
        result = run_engine_scenario(scenario, engine)
        fg = result.foreground_indices()
        jfi.append(result.mean_jain(warmup_s=WARMUP_S, indices=fg))
        util.append(result.utilization(skip_s=WARMUP_S))
        rtt_ms.append(result.mean_rtt_s(skip_s=WARMUP_S) * 1e3)
        loss.append(result.mean_loss_rate(skip_s=WARMUP_S))
    cell = ScenarioCell(
        scheme=scheme, family=family, engine=engine, trials=len(jfi),
        jfi=float(np.mean(jfi)), utilization=float(np.mean(util)),
        mean_rtt_ms=float(np.mean(rtt_ms)),
        mean_loss_rate=float(np.mean(loss)))
    return dc_replace(cell, elapsed_s=time.perf_counter() - start)


def _run_cell_task(task: dict) -> ScenarioCell:
    """Module-level worker for :func:`parallel_map` (spawn-picklable)."""
    return run_scenario_cell(task["scheme"], task["family"], task["engine"],
                             trials=len(task["seeds"]), quick=task["quick"],
                             seeds=task["seeds"])


def _describe_cell_task(task: dict) -> str:
    return f"cell {task['engine']}/{task['scheme']}/{task['family']}"


def run_scenario_sweep(schemes=ALL_SCHEMES, families=SWEEP_FAMILIES,
                       engines=ENGINES, trials: int = 2, quick: bool = True,
                       progress=None, workers: int | None = None) -> dict:
    """The full sweep: every scheme x family x engine.

    Returns a JSON-serialisable payload with one entry per cell;
    ``progress`` and the worker-count determinism contract match
    :func:`~repro.bench.robustness.run_robustness_sweep` (only the
    timing fields ``elapsed_s``/``workers`` may differ between runs).
    """
    validate_scenario_axes(schemes, families, engines)
    start = time.perf_counter()
    n_workers = resolve_workers(workers)
    tasks = [
        {"scheme": s, "family": f, "engine": e,
         "seeds": list(range(trials)), "quick": quick}
        for e in engines for s in schemes for f in families
    ]
    cells = parallel_map(
        _run_cell_task, tasks, workers=n_workers,
        describe=_describe_cell_task,
        progress=(None if progress is None else
                  lambda done, total, index, cell: progress(done, total,
                                                            cell)))
    return {
        "schemes": list(schemes),
        "families": list(families),
        "engines": list(engines),
        "trials": trials,
        "quick": quick,
        "workers": n_workers,
        "elapsed_s": time.perf_counter() - start,
        "cells": [c.as_dict() for c in cells],
    }


TABLE_HEADERS = ["scheme", "family", "engine", "JFI", "utilization",
                 "mean RTT (ms)", "loss rate"]


def table_rows(payload: dict) -> list[list]:
    """Rows of the report table, family-major then scheme then engine."""
    rows = []
    cells = sorted(payload["cells"],
                   key=lambda c: (c["family"], c["scheme"], c["engine"]))
    for c in cells:
        rows.append([
            c["scheme"], c["family"], c["engine"],
            c["jfi"], c["utilization"], c["mean_rtt_ms"],
            c["mean_loss_rate"],
        ])
    return rows


def markdown_report(payload: dict) -> str:
    """The scenario report as a markdown document."""
    mode = "quick" if payload.get("quick") else "full"
    lines = [
        "# Scenario report — JFI x utilization per workload family",
        "",
        f"{payload['trials']} trial(s) per cell; {mode}-mode scenarios; "
        f"fairness over foreground flows only (unresponsive cross "
        f"traffic excluded).",
        "",
        markdown_table(TABLE_HEADERS, table_rows(payload)),
        "",
        "Families: `incast` (synchronized short-flow waves vs elephants), "
        "`asymmetric-rtt` (per-flow base RTTs spread 1x-4x), "
        "`background-udp` (unresponsive constant-rate cross traffic).",
    ]
    return "\n".join(lines)
