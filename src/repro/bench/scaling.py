"""Parallel-scaling microbenchmark: serial vs pooled sweep wall time.

``repro bench scaling`` runs the same small robustness sweep twice —
once on the serial in-process path and once on a process pool — and
records both wall times, the speedup, and whether the two payloads
agreed exactly (timing fields excluded).  The result is persisted as
``benchmarks/results/BENCH_parallel.json``: the first point of the
repository's performance trajectory, and the artifact CI uploads from
its non-gating scaling step.

Speedup on a single-core runner can legitimately be < 1 (spawn overhead
with no parallel hardware to amortise it); the artifact records
``cpu_count`` so downstream comparisons can tell those runs apart.
"""

from __future__ import annotations

import os
import time

from ..parallel import resolve_workers
from .robustness import (
    SMALL_KINDS,
    SMALL_SCHEMES,
    run_robustness_sweep,
    strip_timing_fields,
)

BENCH_ID = "BENCH_parallel"


def run_scaling_benchmark(workers: int | None = None,
                          schemes=SMALL_SCHEMES, kinds=SMALL_KINDS,
                          engines=("fluid",), trials: int = 1,
                          quick: bool = True, progress=None) -> dict:
    """Measure serial-vs-parallel speedup on a small sweep.

    ``workers`` is the pool size for the parallel leg (default: the
    ``REPRO_WORKERS`` environment value, or 2 if unset — a pool of 1
    would measure nothing).
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1:
        n_workers = 2

    start = time.perf_counter()
    serial = run_robustness_sweep(schemes=schemes, kinds=kinds,
                                  engines=engines, trials=trials,
                                  quick=quick, workers=0, progress=progress)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_robustness_sweep(schemes=schemes, kinds=kinds,
                                  engines=engines, trials=trials,
                                  quick=quick, workers=n_workers,
                                  progress=progress)
    parallel_s = time.perf_counter() - start

    return {
        "bench": BENCH_ID,
        "workers": n_workers,
        "cpu_count": os.cpu_count(),
        "cells": len(serial["cells"]),
        "trials": trials,
        "schemes": list(schemes),
        "kinds": list(kinds),
        "engines": list(engines),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
        # The parallel payload must match the serial one bit-for-bit
        # outside the timing fields; recorded so a regression is visible
        # in the artifact itself, not only in the test suite.
        "deterministic": strip_timing_fields(pooled) ==
        strip_timing_fields(serial),
        "cell_elapsed_serial_s": [c["elapsed_s"] for c in serial["cells"]],
        "cell_elapsed_parallel_s": [c["elapsed_s"] for c in pooled["cells"]],
    }
