"""Canonical experiment scenarios for every figure in the paper.

Each builder returns a ready-to-run config mirroring the parameters the
evaluation section quotes.  ``quick=True`` shrinks time axes (not the
network parameters) so that full benchmark sweeps complete on one CPU; the
benchmark harness uses quick mode by default and reports which mode ran.
"""

from __future__ import annotations

from ..config import FlowConfig, LinkConfig, ScenarioConfig
from ..netsim.flowgen import heterogeneous_rtt_flows, staggered_flows
from ..netsim.topology import TopologyConfig, parking_lot

DEFAULT_SCHEMES = ("astraea", "cubic", "bbr", "vegas", "copa", "vivace",
                   "orca", "reno")


def fig6_scenario(cc: str, quick: bool = False, seed: int = 0,
                  **cc_kwargs) -> ScenarioConfig:
    """§5.1.1: 100 Mbps, 30 ms, 1 BDP; 3 flows at 40 s intervals, 120 s each."""
    interval = 20.0 if quick else 40.0
    flow_len = 60.0 if quick else 120.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = staggered_flows(3, cc=cc, interval_s=interval,
                            duration_s=flow_len, **cc_kwargs)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * 2 + flow_len, seed=seed)


def fig1a_scenario(quick: bool = False, seed: int = 0) -> ScenarioConfig:
    """§2: Aurora on 80 Mbps / 60 ms / 4.8 MB buffer; second flow at 40 s."""
    start2 = 15.0 if quick else 40.0
    total = 60.0 if quick else 120.0
    link = LinkConfig(bandwidth_mbps=80.0, rtt_ms=60.0,
                      buffer_packets=4_800_000 / 1500.0)
    flows = (FlowConfig(cc="aurora", start_s=0.0),
             FlowConfig(cc="aurora", start_s=start2))
    return ScenarioConfig(link=link, flows=flows, duration_s=total, seed=seed)


def fig1b_scenario(rtt_ms: float = 120.0, theta0: float = 1.0,
                   quick: bool = False, seed: int = 0) -> ScenarioConfig:
    """§2: Vivace on 100 Mbps, 1 BDP; 3 flows at 40 s intervals."""
    interval = 20.0 if quick else 40.0
    flow_len = 60.0 if quick else 120.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=rtt_ms, buffer_bdp=1.0)
    flows = staggered_flows(3, cc="vivace", interval_s=interval,
                            duration_s=flow_len, theta0=theta0)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * 2 + flow_len, seed=seed)


def fig8_scenario(cc: str, quick: bool = False, seed: int = 0,
                  ) -> ScenarioConfig:
    """§5.1.2: five long flows, base RTTs evenly spaced 40-200 ms."""
    from ..units import bdp_packets

    duration = 40.0 if quick else 120.0
    # The paper sizes the 1 BDP buffer with the 200 ms RTT.
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=40.0,
                      buffer_packets=bdp_packets(100.0, 0.200))
    flows = heterogeneous_rtt_flows(5, cc, (40.0, 200.0), link_rtt_ms=40.0)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig9_scenario(cc: str, bandwidth_mbps: float, rtt_ms: float, n_flows: int,
                  quick: bool = False, seed: int = 0) -> ScenarioConfig:
    """§5.1.3: fairness grid over bandwidth x RTT with 2-8 staggered flows."""
    interval = 8.0 if quick else 20.0
    flow_len = interval * (n_flows + 1)
    link = LinkConfig(bandwidth_mbps=bandwidth_mbps, rtt_ms=rtt_ms,
                      buffer_bdp=1.0)
    flows = staggered_flows(n_flows, cc=cc, interval_s=interval,
                            duration_s=flow_len)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * (n_flows - 1) + flow_len,
                          seed=seed)


def fig10_scenario(cc: str, n_flows: int, quick: bool = False,
                   seed: int = 0) -> ScenarioConfig:
    """§5.1.3: many competing flows on 600 Mbps / 20 ms."""
    duration = 20.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=600.0, rtt_ms=20.0, buffer_bdp=1.0)
    flows = staggered_flows(n_flows, cc=cc, interval_s=0.0, duration_s=None)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig11_topology(cc: str, n_fs1: int, quick: bool = False,
                   seed: int = 0) -> TopologyConfig:
    """§5.1.4: the two-bottleneck parking lot (Link1 100, Link2 20 Mbps)."""
    return parking_lot(n_fs1=n_fs1, n_fs2=2, cc=cc,
                       duration_s=20.0 if quick else 40.0, seed=seed)


def fig13_scenario(cc: str, quick: bool = False, seed: int = 0,
                   ) -> ScenarioConfig:
    """§5.2: LTE-like cellular link, 40 ms RTT, deep buffer."""
    duration = 30.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=12.0, rtt_ms=40.0, buffer_packets=2000)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          trace="lte", trace_kwargs={"seed": seed},
                          seed=seed)


def fig14_scenario(cc: str, n_cubic: int, quick: bool = False,
                   seed: int = 0, **cc_kwargs) -> ScenarioConfig:
    """§5.3.1: one evaluated flow against ``n_cubic`` CUBIC flows."""
    duration = 30.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc=cc, start_s=0.0, cc_kwargs=dict(cc_kwargs)),) + \
        staggered_flows(n_cubic, cc="cubic", interval_s=0.0, duration_s=None)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig15_scenario(cc: str, kind: str = "intra", quick: bool = False,
                   seed: int = 0) -> ScenarioConfig:
    """§5.3.2: synthetic WAN path standing in for the Internet deployment.

    Intra-continental paths are short (35 ms) with mild cross traffic;
    inter-continental paths long (150 ms) with heavy bursty cross traffic
    and a little stochastic loss, as on real transoceanic routes.
    """
    duration = 30.0 if quick else 60.0
    if kind == "intra":
        link = LinkConfig(bandwidth_mbps=900.0, rtt_ms=35.0, buffer_bdp=1.5,
                          random_loss=0.0001)
    else:
        link = LinkConfig(bandwidth_mbps=800.0, rtt_ms=150.0, buffer_bdp=1.5,
                          random_loss=0.0005)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          trace="wan",
                          trace_kwargs={"kind": kind, "seed": seed},
                          seed=seed, tick_s=0.001)


def fig19_scenario(cc: str, buffer_bdp: float, quick: bool = False,
                   seed: int = 0) -> ScenarioConfig:
    """App. B.1: 100 Mbps / 30 ms with buffer from 0.1 to 16 BDP."""
    duration = 20.0 if quick else 60.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                      buffer_bdp=buffer_bdp)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed)


def fig20_scenario(cc: str, quick: bool = False, seed: int = 0,
                   ) -> ScenarioConfig:
    """App. B.2: satellite link — 42 Mbps, 800 ms, 1 BDP, 0.74% loss."""
    duration = 60.0 if quick else 100.0
    link = LinkConfig(bandwidth_mbps=42.0, rtt_ms=800.0, buffer_bdp=1.0,
                      random_loss=0.0074)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed, tick_s=0.005)


def fig22_scenario(cc: str, quick: bool = False, seed: int = 0,
                   ) -> ScenarioConfig:
    """App. B.4: high-speed WAN — 10 Gbps, 10 ms base RTT."""
    duration = 10.0 if quick else 30.0
    link = LinkConfig(bandwidth_mbps=10_000.0, rtt_ms=10.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc=cc, start_s=0.0),)
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed, tick_s=0.001)


#: Impairment kinds of the robustness family (see :mod:`repro.netsim.faults`).
ROBUSTNESS_KINDS = ("blackout", "flap", "loss-burst", "delay-spike",
                    "reorder", "mixed")


def robustness_scenario(cc: str, kind: str = "blackout", quick: bool = False,
                        seed: int = 0) -> ScenarioConfig:
    """Runtime-resilience family: a mid-run link impairment on the
    canonical 100 Mbps / 30 ms / 1 BDP bottleneck with two long flows.

    ``kind`` picks one impairment primitive (placed so the run contains a
    clean warm-up, the fault, and a recovery tail), or ``"mixed"`` for a
    seed-determined random :meth:`FaultSchedule.sample` schedule.  The
    schemes' throughput/latency during and after the fault window show
    how each recovers from conditions the training envelope never
    contains.
    """
    from ..netsim.faults import (
        BandwidthFlap,
        Blackout,
        DelaySpike,
        FaultSchedule,
        LossBurst,
        ReorderWindow,
    )

    duration = 30.0 if quick else 90.0
    start = duration * 0.4
    if kind == "blackout":
        faults = FaultSchedule((Blackout(start, duration * 0.03),))
    elif kind == "flap":
        faults = FaultSchedule((
            BandwidthFlap(start, duration * 0.2, factor=0.25),))
    elif kind == "loss-burst":
        faults = FaultSchedule((
            LossBurst(start, duration * 0.1, loss_rate=0.05),))
    elif kind == "delay-spike":
        faults = FaultSchedule((
            DelaySpike(start, duration * 0.1, extra_ms=80.0),))
    elif kind == "reorder":
        faults = FaultSchedule((
            ReorderWindow(start, duration * 0.15, rate=0.02),))
    elif kind == "mixed":
        faults = FaultSchedule.sample(duration, seed=seed + 1)
    else:
        from ..errors import ConfigError

        raise ConfigError(
            f"unknown robustness kind {kind!r}; known: {ROBUSTNESS_KINDS}")
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
    flows = (FlowConfig(cc=cc, start_s=0.0),
             FlowConfig(cc=cc, start_s=0.0))
    return ScenarioConfig(link=link, flows=flows, duration_s=duration,
                          seed=seed, faults=faults)
