"""Socket-datapath benchmark: wire rate, goodput under loss, recovery.

``repro bench socket`` pins the loopback-UDP engine the way
``BENCH_engine.json`` pinned the fluid fast path:

* **throughput** — a single cubic flow per bandwidth level; how much of
  the emulated capacity the reliable-UDP transport actually delivers,
  and how many wire segments/second the Python event loop sustains.
* **loss** — a byte-exact :func:`~repro.netsim.socketpath.transfer_payload`
  under a seeded 5% random-loss schedule: goodput efficiency (payload
  segments over total transmissions) and the retransmission overhead
  the recovery machinery pays.
* **recovery** — the pinned robustness scenario
  (:func:`~repro.bench.scenarios.robustness_scenario`, Astraea under a
  loss burst) on real sockets, measured with
  :mod:`repro.metrics.recovery` — the acceptance row: recovery time
  must be finite.

:func:`run_socket_smoke` is the gating CI subset: the 5%-loss transfer
must deliver every payload byte in order and the recovery time must be
finite, or CI fails.  All results land in
``benchmarks/results/BENCH_socket.json`` (strict JSON).
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from ..config import FlowConfig, LinkConfig, ScenarioConfig
from ..metrics.recovery import recovery_report
from ..netsim.faults import FaultSchedule, LossBurst
from ..netsim.socketpath import SocketTuning, run_scenario_socket_report, \
    transfer_payload

BENCH_ID = "BENCH_socket"

#: Seeded 5% loss: the schedule of the smoke/loss legs.
SMOKE_LOSS_RATE = 0.05

DEFAULT_BANDWIDTHS = (4.0, 8.0, 16.0)
SMALL_BANDWIDTHS = (4.0, 8.0)


def _tail_mean_mbps(result) -> float:
    """Steady-state goodput: mean over the last half of every flow log."""
    total = 0.0
    for log in result.flows:
        series = log.throughput_mbps
        if not series:
            continue
        tail = series[len(series) // 2:]
        total += float(np.mean(tail))
    return total


def _throughput_level(bandwidth_mbps: float, *, duration_s: float,
                      seed: int, tuning: SocketTuning) -> dict:
    link = LinkConfig(bandwidth_mbps=bandwidth_mbps, rtt_ms=20.0,
                      buffer_bdp=2.0)
    scenario = ScenarioConfig(link=link, flows=(FlowConfig(cc="cubic"),),
                              duration_s=duration_s, seed=seed)
    start = time.perf_counter()
    result, report = run_scenario_socket_report(scenario, tuning=tuning)
    elapsed = time.perf_counter() - start
    achieved = _tail_mean_mbps(result)
    return {
        "bandwidth_mbps": bandwidth_mbps,
        "pkts_per_seg": report.pkts_per_seg,
        "achieved_mbps": achieved,
        "efficiency": achieved / bandwidth_mbps,
        "wire_segs_per_wall_s": report.wire_segs_per_wall_s,
        "retransmits": sum(f["retransmits"] for f in report.flows),
        "corrupt": report.total_corrupt,
        "wall_s": elapsed,
    }


def _loss_leg(*, seed: int, tuning: SocketTuning,
              payload_bytes: int) -> dict:
    faults = FaultSchedule((LossBurst(0.0, 10_000.0,
                                      loss_rate=SMOKE_LOSS_RATE),))
    payload = os.urandom(payload_bytes)
    start = time.perf_counter()
    data, report = transfer_payload(payload, faults=faults, seed=seed,
                                    tuning=tuning)
    elapsed = time.perf_counter() - start
    total_tx = report.n_segments + report.retransmits
    return {
        "loss_rate": SMOKE_LOSS_RATE,
        "payload_bytes": payload_bytes,
        "payload_ok": data == payload,
        "n_segments": report.n_segments,
        "retransmits": report.retransmits,
        "rto_timeouts": report.rto_timeouts,
        "duplicates": report.duplicates,
        "goodput_efficiency": report.n_segments / total_tx if total_tx
        else 1.0,
        "srtt_s": report.srtt_s,
        "wall_s": elapsed,
    }


def _recovery_leg(*, seed: int, tuning: SocketTuning,
                  scheme: str = "astraea") -> dict:
    from .scenarios import robustness_scenario

    scenario = robustness_scenario(scheme, kind="loss-burst", quick=True,
                                   seed=seed)
    start = time.perf_counter()
    result, report = run_scenario_socket_report(scenario, tuning=tuning)
    elapsed = time.perf_counter() - start
    recovery = recovery_report(result, scenario.faults)
    return {
        "scheme": scheme,
        "kind": "loss-burst",
        "recovered": recovery.recovered,
        "recovery_time_s": recovery.recovery_time_s,
        "baseline_mbps": recovery.baseline_mbps,
        "corrupt": report.total_corrupt,
        "retransmits": sum(f["retransmits"] for f in report.flows),
        "delivered_segs": report.total_delivered_segs,
        "wall_s": elapsed,
    }


def run_socket_smoke(seed: int = 1, *,
                     tuning: SocketTuning | None = None) -> dict:
    """The gating CI check: reliability and recovery on real sockets.

    ``ok`` requires a byte-exact in-order 5%-loss transfer (zero lost
    payload), zero corrupt stream segments in the recovery scenario,
    and a finite post-fault recovery time.
    """
    tuning = tuning if tuning is not None else SocketTuning()
    loss = _loss_leg(seed=seed, tuning=tuning, payload_bytes=20_000)
    recovery = _recovery_leg(seed=seed, tuning=tuning)
    ok = bool(loss["payload_ok"]
              and recovery["corrupt"] == 0
              and recovery["recovered"]
              and math.isfinite(recovery["recovery_time_s"]))
    return {"ok": ok, "loss": loss, "recovery": recovery}


def run_socket_benchmark(*, small: bool = False, seed: int = 1,
                         tuning: SocketTuning | None = None,
                         progress=None) -> dict:
    """The full ``BENCH_socket`` payload (strict-JSON serialisable)."""
    tuning = tuning if tuning is not None else SocketTuning()
    bandwidths = SMALL_BANDWIDTHS if small else DEFAULT_BANDWIDTHS
    duration_s = 6.0 if small else 12.0
    payload_bytes = 20_000 if small else 60_000
    start = time.perf_counter()
    levels = []
    for bw in bandwidths:
        if progress is not None:
            progress(f"throughput @ {bw:g} Mbps")
        levels.append(_throughput_level(bw, duration_s=duration_s,
                                        seed=seed, tuning=tuning))
    if progress is not None:
        progress(f"loss transfer ({SMOKE_LOSS_RATE:.0%} seeded loss)")
    loss = _loss_leg(seed=seed, tuning=tuning, payload_bytes=payload_bytes)
    if progress is not None:
        progress("recovery scenario (astraea, loss-burst)")
    recovery = _recovery_leg(seed=seed, tuning=tuning)
    return {
        "config": {
            "small": small,
            "seed": seed,
            "time_scale": tuning.time_scale,
            "max_wall_dgrams_per_s": tuning.max_wall_dgrams_per_s,
            "seg_payload_bytes": tuning.seg_payload_bytes,
            "min_rto_s": tuning.min_rto_s,
            "max_rto_s": tuning.max_rto_s,
        },
        "throughput": levels,
        "loss": loss,
        "recovery": recovery,
        "elapsed_s": time.perf_counter() - start,
    }
