"""Training-rollout benchmark: batched RL hot loop vs per-flow reference.

``repro bench train`` measures the training fast path end to end —
scenario driver, observer, action selection and replay writes — in three
modes over the same warm-learner episodes:

* **serial**: the honest per-flow reference (one
  :meth:`~repro.core.learner.Learner.act` call per flow, the shared
  reward recomputed per callback);
* **batched**: one stacked forward per controller pass, the shared
  reward computed once per pass, transitions buffered for block replay
  writes;
* **batched+workers**: a frozen-policy :class:`~repro.env.pool.
  EnvironmentPool` stride shipping whole episodes through the process
  pool.

It also replays one pinned episode — cross traffic, update bursts,
exploration — through both the serial and batched legs and embeds the
bitwise verdict (replay contents, cursor, actor parameters, rewards), so
the artifact itself witnesses the equivalence contract the speedup rests
on.  The result persists as ``benchmarks/results/BENCH_train.json``.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import (
    FlowConfig,
    LinkConfig,
    ScenarioConfig,
    TrainingConfig,
    replace,
)
from ..core.learner import Learner
from ..env.episode import run_training_episode
from ..env.pool import EnvironmentPool

BENCH_ID = "BENCH_train"

NOISE_STD = 0.15

#: The equivalence contract is bitwise — zero tolerance.
EQUIVALENCE_TOL = 0.0

_REPLAY_ARRAYS = ("_local", "_global", "_action", "_reward",
                  "_next_local", "_next_global", "_done")


def _timing_config() -> TrainingConfig:
    """Paper-sized networks, warm fast, updates parked out of the way.

    The update burst runs identical code in every mode; pushing the
    interval beyond any episode keeps the measurement on the rollout
    loop itself (act, observe, reward, replay) that this PR batches.
    """
    return replace(TrainingConfig(), warmup_transitions=256,
                   update_interval_s=1e9, seed=7)


def _equivalence_config() -> TrainingConfig:
    """Small nets, low warmup, frequent bursts: every code path exercised."""
    return replace(TrainingConfig(), hidden_layers=(32, 32),
                   warmup_transitions=128, batch_size=32,
                   update_interval_s=2.0, update_steps=4, seed=7)


def _train_scenario(n_flows: int, duration_s: float,
                    cross_traffic: bool = False,
                    seed: int = 17) -> ScenarioConfig:
    flows = [FlowConfig(cc="astraea", start_s=0.0, duration_s=duration_s)
             for _ in range(n_flows)]
    if cross_traffic:
        flows.append(FlowConfig(cc="cubic", start_s=1.0,
                                duration_s=duration_s - 1.0))
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=96.0, rtt_ms=30.0, buffer_bdp=1.5),
        flows=tuple(flows),
        duration_s=duration_s,
        seed=seed,
    )


def _initial_cwnds(n_flows: int) -> list[float]:
    return [16.0 + 2.0 * i for i in range(n_flows)]


def _warm_learner(cfg: TrainingConfig) -> Learner:
    """A learner whose replay is already past warmup.

    Seeded synthetic transitions flow in through
    :meth:`~repro.rl.replay.ReplayBuffer.add_batch`; they only matter
    for the warm flag (and, in the equivalence episode, as identical
    update-batch material), so the measured episodes exercise the policy
    act path from the first pass.
    """
    learner = Learner(cfg)
    rng = np.random.default_rng(123)
    n = max(cfg.warmup_transitions, cfg.batch_size) + cfg.batch_size
    learner.replay.add_batch(
        rng.normal(size=(n, learner.local_dim)),
        rng.normal(size=(n, learner.global_dim)),
        rng.normal(size=(n, 1)),
        rng.normal(size=n),
        rng.normal(size=(n, learner.local_dim)),
        rng.normal(size=(n, learner.global_dim)),
        np.zeros(n))
    return learner


def measure_rollouts(n_flows: int, duration_s: float, episodes: int,
                     workers: int = 2, progress=None) -> dict:
    """Episodes/s and steps/s of the three rollout modes.

    Every mode runs the same ``episodes`` warm-learner episodes over the
    same scenario; ``steps`` counts harvested transitions.  The pooled
    mode pays the process-spawn cost inside its measurement — that is
    the cost a real ``parallel_envs`` stride pays.
    """

    def report(msg: str) -> None:
        if progress is not None:
            progress(msg)

    cfg = _timing_config()
    scenario = _train_scenario(n_flows, duration_s)
    cwnds = _initial_cwnds(n_flows)
    out = {}
    for mode, batched in (("serial", False), ("batched", True)):
        report(f"{mode}: {episodes} episode(s) at {n_flows} flows...")
        learner = _warm_learner(cfg)
        steps = 0
        start = time.perf_counter()
        for episode in range(episodes):
            stats = run_training_episode(
                learner, scenario, noise_std=NOISE_STD,
                initial_cwnds=cwnds, episode=episode, batched=batched)
            steps += stats.transitions
        elapsed = time.perf_counter() - start
        out[mode] = {
            "elapsed_s": elapsed,
            "episodes_per_s": episodes / elapsed if elapsed > 0 else None,
            "steps_per_s": steps / elapsed if elapsed > 0 else None,
            "steps": steps,
        }
    report(f"batched+workers: {episodes} episode(s) on {workers} "
           f"worker(s)...")
    learner = _warm_learner(cfg)
    pool = EnvironmentPool(
        learner, [scenario] * episodes, noise_std=NOISE_STD,
        initial_cwnds=[cwnds] * episodes,
        episodes=list(range(episodes)), workers=workers)
    start = time.perf_counter()
    stats = pool.run()
    elapsed = time.perf_counter() - start
    out["batched_workers"] = {
        "elapsed_s": elapsed,
        "episodes_per_s": episodes / elapsed if elapsed > 0 else None,
        "steps_per_s": stats.transitions / elapsed if elapsed > 0 else None,
        "steps": stats.transitions,
        "workers": workers,
    }
    serial = out["serial"]["steps_per_s"]
    batched = out["batched"]["steps_per_s"]
    out["speedup_steps"] = batched / serial if serial and batched else None
    return out


def check_equivalence() -> dict:
    """Replay the pinned episode serially and batched; compare bitwise.

    The pinned episode covers the full path: cross traffic, epsilon and
    Gaussian exploration, warmup-crossing replay writes and real update
    bursts.  Compared: transition count, reward sum, update bursts, the
    entire replay memory (contents and cursor) and every actor
    parameter.  ``max_delta`` is the worst absolute difference across
    replay and actor arrays — the contract is exact, so any non-zero
    delta fails.
    """
    scenario = _train_scenario(4, 8.0, cross_traffic=True, seed=5)
    cwnds = _initial_cwnds(5)

    def leg(batched: bool):
        learner = _warm_learner(_equivalence_config())
        stats = run_training_episode(
            learner, scenario, noise_std=NOISE_STD, initial_cwnds=cwnds,
            episode=3, batched=batched)
        return learner, stats

    ref_learner, ref_stats = leg(False)
    fast_learner, fast_stats = leg(True)
    counts_match = (
        ref_stats.transitions == fast_stats.transitions
        and ref_stats.update_bursts == fast_stats.update_bursts
        and len(ref_learner.replay) == len(fast_learner.replay)
        and ref_learner.replay._cursor == fast_learner.replay._cursor
    )
    max_delta = abs(ref_stats.reward_sum - fast_stats.reward_sum)
    for name in _REPLAY_ARRAYS:
        a = getattr(ref_learner.replay, name)
        b = getattr(fast_learner.replay, name)
        max_delta = max(max_delta, float(np.max(np.abs(a - b))))
    for pa, pb in zip(ref_learner.td3.actor.get_state(),
                      fast_learner.td3.actor.get_state()):
        max_delta = max(max_delta, float(np.max(np.abs(pa - pb))))
    return {
        "passed": bool(counts_match and max_delta <= EQUIVALENCE_TOL),
        "max_delta": max_delta,
        "rows": ref_stats.transitions,
        "update_bursts": ref_stats.update_bursts,
        "tolerance": EQUIVALENCE_TOL,
    }


def run_train_benchmark(n_flows: int = 8, duration_s: float = 10.0,
                        episodes: int = 3, workers: int = 2,
                        progress=None) -> dict:
    """Full benchmark: three rollout modes plus the equivalence verdict.

    Returns the ``BENCH_train`` payload; ``progress`` (if given) is
    called with one status line per stage.
    """

    def report(msg: str) -> None:
        if progress is not None:
            progress(msg)

    modes = measure_rollouts(n_flows, duration_s, episodes,
                             workers=workers, progress=progress)
    report("serial-vs-batched equivalence check...")
    equivalence = check_equivalence()
    return {
        "bench": BENCH_ID,
        "n_flows": n_flows,
        "duration_s": duration_s,
        "episodes": episodes,
        "workers": workers,
        "modes": {k: v for k, v in modes.items() if k != "speedup_steps"},
        "speedup_steps": modes["speedup_steps"],
        "equivalence": equivalence,
    }
