"""Serving-scale load benchmark: ``repro bench serve``.

Drives a *live* ``repro serve`` daemon over loopback TCP with an
asyncio load generator and records the repo's first direct
serving-scale numbers — actions/s and p50/p99/p999 service latency as
a function of the number of concurrent simulated flows — into
``benchmarks/results/BENCH_serve.json``.

Methodology
-----------
* Each simulated flow is a closed-loop asyncio task: it issues one
  inference request, awaits the answer, then sleeps until its next MTP
  tick (20 ms, the cadence of :func:`synthetic_request_trace`).  Closed
  loops self-clock under overload — the daemon slowing down lowers the
  offered rate instead of growing an unbounded client-side queue,
  exactly how real senders behave.
* Every request is entered in a per-flow ledger (sent / answered /
  errors).  The benchmark *fails* a level if any request goes
  unanswered — this is the acceptance check that a daemon sustains the
  level without dropping anything, not just a throughput probe.
* Latency is measured client-side around the full round trip (encode,
  loopback, batching wait, forward pass, decode) with exact
  percentiles from the raw sample list; the daemon's own histogram and
  batching counters are snapshotted per level via the ``stats`` verb
  and reported as deltas.
* By default the benchmark spawns ``python -m repro serve --port 0``
  as a subprocess, parses its ``LISTENING`` line(s), runs the sweep,
  then SIGTERMs it and asserts a clean drain (exit 0) — so every run
  also exercises startup and graceful shutdown end to end.  Use
  ``connect=[(host, port), ...]`` to aim at an already-running daemon.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import ServiceError
from ..service.daemon import ServiceClient

BENCH_ID = "BENCH_serve"

#: Default concurrent-flow sweep (the paper batched ~2800 flows/core).
DEFAULT_LEVELS = (8, 64, 256, 1024)
#: CI smoke subset: small levels, short windows, still 3 points.
SMALL_LEVELS = (4, 16, 64)

DEFAULT_MTP_S = 0.020
_SPAWN_TIMEOUT_S = 60.0


def _percentiles(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0,
                "p999_s": 0.0, "max_s": 0.0}
    arr = np.asarray(samples)
    return {
        "count": int(arr.size),
        "mean_s": float(arr.mean()),
        "p50_s": float(np.percentile(arr, 50)),
        "p99_s": float(np.percentile(arr, 99)),
        "p999_s": float(np.percentile(arr, 99.9)),
        "max_s": float(arr.max()),
    }


async def _flow_task(client: ServiceClient, fid: int, state: list[float],
                     end_t: float, mtp_s: float, timeout: float,
                     ledger: dict) -> None:
    loop = asyncio.get_running_loop()
    # Desynchronised phases, deterministic per flow (no shared RNG).
    next_t = loop.time() + (fid % 64) / 64.0 * mtp_s
    latencies = ledger["latencies"]
    errors = ledger["errors"]
    while True:
        now = loop.time()
        if next_t > end_t:
            break
        if next_t > now:
            await asyncio.sleep(next_t - now)
        ledger["sent"] += 1
        t0 = loop.time()
        try:
            await client.act(fid, state, timeout=timeout)
        except (ServiceError, asyncio.TimeoutError) as exc:
            errors[type(exc).__name__] = errors.get(
                type(exc).__name__, 0) + 1
        else:
            ledger["answered"] += 1
            latencies.append(loop.time() - t0)
        next_t += mtp_s


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-level view of the daemon's cumulative counters."""
    b, a = before["counters"], after["counters"]
    batches = a["batch_count"] - b["batch_count"]
    batch_pkts = a["batch_sum"] - b["batch_sum"]
    return {
        "requests": a["requests"] - b["requests"],
        "forward_passes": a["forward_passes"] - b["forward_passes"],
        "mean_batch_size": batch_pkts / batches if batches else 0.0,
        "fallbacks": a["fallbacks"] - b["fallbacks"],
        "deadline_misses": a["deadline_misses"] - b["deadline_misses"],
        "neutral_answers": a["neutral_answers"] - b["neutral_answers"],
        "rejected": a["rejected"] - b["rejected"],
        "admission_rejected": (a["daemon_admission_rejected"]
                               - b["daemon_admission_rejected"]),
        "cpu_time_s": a["cpu_time_s"] - b["cpu_time_s"],
    }


async def _run_level(client: ServiceClient, n_flows: int, state_dim: int,
                     duration_s: float, mtp_s: float, timeout: float,
                     ) -> dict:
    rng = np.random.default_rng(n_flows)
    states = [[float(v) for v in rng.normal(size=state_dim)]
              for _ in range(min(n_flows, 32))]
    ledgers = [{"sent": 0, "answered": 0, "latencies": [], "errors": {}}
               for _ in range(n_flows)]
    before = await client.stats(timeout=timeout)
    loop = asyncio.get_running_loop()
    t_start = loop.time()
    end_t = t_start + duration_s
    await asyncio.gather(*[
        _flow_task(client, fid, states[fid % len(states)], end_t, mtp_s,
                   timeout, ledgers[fid])
        for fid in range(n_flows)])
    elapsed = loop.time() - t_start
    after = await client.stats(timeout=timeout)

    sent = sum(led["sent"] for led in ledgers)
    answered = sum(led["answered"] for led in ledgers)
    errors: dict[str, int] = {}
    for led in ledgers:
        for name, count in led["errors"].items():
            errors[name] = errors.get(name, 0) + count
    latencies = [lat for led in ledgers for lat in led["latencies"]]
    return {
        "n_flows": n_flows,
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "requests": sent,
        "answered": answered,
        "errors": errors,
        "unanswered": sent - answered - sum(errors.values()),
        "actions_per_s": answered / elapsed if elapsed > 0 else 0.0,
        "latency": _percentiles(latencies),
        "daemon": _stats_delta(before, after),
    }


async def _spawn_daemon(shards: int, scheme: str, window_s: float,
                        deadline_s: float | None, max_inflight: int,
                        ) -> tuple[asyncio.subprocess.Process,
                                   list[tuple[str, int]]]:
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
           "--port", "0", "--shards", str(shards), "--scheme", scheme,
           "--window", str(window_s), "--max-inflight", str(max_inflight),
           "--deadline", str(deadline_s if deadline_s is not None else 0)]
    proc = await asyncio.create_subprocess_exec(
        *cmd, env=env, stdout=asyncio.subprocess.PIPE, stderr=None)
    addrs: list[tuple[str, int]] = []
    try:
        async with asyncio.timeout(_SPAWN_TIMEOUT_S):
            while len(addrs) < shards:
                line = await proc.stdout.readline()
                if not line:
                    raise ServiceError(
                        f"daemon exited before announcing its port(s) "
                        f"(rc={proc.returncode})")
                parts = line.decode().split()
                if parts[:1] == ["LISTENING"]:
                    addrs.append((parts[1], int(parts[2])))
    except TimeoutError:
        proc.kill()
        raise ServiceError("daemon did not announce its port in time")
    return proc, addrs


async def _drain_stdout(proc: asyncio.subprocess.Process) -> None:
    # The daemon announces DRAINING/STOPPED on stdout; keep the pipe
    # drained so a chatty shutdown can never block it.
    while True:
        line = await proc.stdout.readline()
        if not line:
            return


async def _run_benchmark(levels, duration_s, mtp_s, shards, scheme,
                         window_s, deadline_s, max_inflight,
                         conns_per_shard, timeout, connect, progress,
                         ) -> dict:
    proc = None
    if connect:
        addrs = list(connect)
    else:
        proc, addrs = await _spawn_daemon(shards, scheme, window_s,
                                          deadline_s, max_inflight)
        if progress is not None:
            progress(f"daemon up: {addrs}")
    clean_shutdown = None
    try:
        client = ServiceClient(addrs, conns_per_shard=conns_per_shard)
        hello = await client.stats(timeout=timeout)
        state_dim = int(hello["in_dim"])
        rows = []
        for n_flows in levels:
            row = await _run_level(client, n_flows, state_dim,
                                   duration_s, mtp_s, timeout)
            rows.append(row)
            if progress is not None:
                lat = row["latency"]
                progress(
                    f"{n_flows:5d} flows: {row['actions_per_s']:8.0f} "
                    f"actions/s  p50 {lat['p50_s'] * 1e3:6.2f} ms  "
                    f"p99 {lat['p99_s'] * 1e3:6.2f} ms  "
                    f"unanswered {row['unanswered']}")
        await client.aclose()
    finally:
        if proc is not None:
            drainer = asyncio.create_task(_drain_stdout(proc))
            if proc.returncode is None:
                proc.send_signal(signal.SIGTERM)
            try:
                async with asyncio.timeout(_SPAWN_TIMEOUT_S):
                    await proc.wait()
            except TimeoutError:
                proc.kill()
                await proc.wait()
            await drainer
            clean_shutdown = proc.returncode == 0
    return {
        "bench": "serve",
        "config": {
            "levels": list(levels),
            "duration_s": duration_s,
            "mtp_s": mtp_s,
            "shards": shards if not connect else len(addrs),
            "scheme": scheme,
            "window_s": window_s,
            "deadline_s": deadline_s,
            "max_inflight": max_inflight,
            "conns_per_shard": conns_per_shard,
            "external_daemon": bool(connect),
        },
        "levels": rows,
        "clean_shutdown": clean_shutdown,
    }


def run_serve_benchmark(levels=DEFAULT_LEVELS, *, duration_s: float = 3.0,
                        mtp_s: float = DEFAULT_MTP_S, shards: int = 1,
                        scheme: str = "astraea",
                        window_s: float = 0.005,
                        deadline_s: float | None = 0.050,
                        max_inflight: int = 4096,
                        conns_per_shard: int = 8,
                        timeout: float = 30.0,
                        connect: list[tuple[str, int]] | None = None,
                        progress: Callable[[str], None] | None = None,
                        ) -> dict:
    """Run the serving load sweep; returns the artifact payload.

    Spawns (and cleanly drains) a daemon subprocess unless ``connect``
    names a running one.  Raises :class:`~repro.errors.ServiceError` if
    any level leaves a request unanswered — a daemon that loses
    requests has no business reporting a throughput number.
    """
    levels = tuple(int(v) for v in levels)
    if not levels or any(v <= 0 for v in levels):
        raise ServiceError(f"invalid concurrency levels {levels!r}")
    if duration_s <= 0 or mtp_s <= 0:
        raise ServiceError("duration and MTP must be positive")
    payload = asyncio.run(_run_benchmark(
        levels, duration_s, mtp_s, shards, scheme, window_s, deadline_s,
        max_inflight, conns_per_shard, timeout, connect, progress))
    t = time.time()
    payload["wall_time_s"] = t
    bad = [row for row in payload["levels"] if row["unanswered"] > 0]
    if bad:
        raise ServiceError(
            "unanswered requests at level(s) "
            + ", ".join(str(row["n_flows"]) for row in bad)
            + " — the per-request ledger must balance")
    if payload["clean_shutdown"] is False:
        raise ServiceError("daemon did not shut down cleanly on SIGTERM")
    return payload
