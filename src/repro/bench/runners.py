"""Multi-trial experiment execution shared by all benchmarks.

Trials are independent by construction — each repetition gets its own
seed baked into its :class:`~repro.config.ScenarioConfig` — so the
runners dispatch through :func:`repro.parallel.parallel_map`: scenarios
are built in the parent process (in seed order), shipped to spawn
workers, and the results come back ordered by seed.  ``workers=None``
defers to the ``REPRO_WORKERS`` environment default (serial), keeping
every fig-family benchmark bit-identical to its historical output.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..config import ScenarioConfig, replace
from ..env import ScenarioResult, run_scenario
from ..metrics.summary import RunSummary, summarize
from ..parallel import parallel_map


def _run_scenario_task(scenario: ScenarioConfig) -> ScenarioResult:
    """Module-level worker for :func:`parallel_map` (spawn-picklable)."""
    return run_scenario(scenario)


def _describe_scenario(scenario: ScenarioConfig) -> str:
    schemes = ",".join(sorted({f.cc for f in scenario.flows}))
    return f"trial seed={scenario.seed} schemes={schemes}"


def _run_scenarios(scenarios: list[ScenarioConfig],
                   workers: int | None) -> list[ScenarioResult]:
    return parallel_map(_run_scenario_task, scenarios, workers=workers,
                        describe=_describe_scenario)


def run_trials(factory: Callable[[int], ScenarioConfig], trials: int,
               workers: int | None = None) -> list[ScenarioResult]:
    """Run ``trials`` repetitions; ``factory(seed)`` builds each scenario.

    The factory runs in-process (in seed order) so it may close over
    arbitrary state; only the resulting scenarios cross the process
    boundary.
    """
    return _run_scenarios([factory(seed) for seed in range(trials)], workers)


def run_scheme_trials(scenario: ScenarioConfig, trials: int,
                      workers: int | None = None) -> list[ScenarioResult]:
    """Repeat one scenario with different seeds.

    Note ``replace(scenario, seed=...)`` changes only the engine seed;
    registry families whose *shape* depends on the seed (e.g. the
    ``mixed`` robustness schedule) should go through
    :func:`run_family_trials`, which rebuilds per seed.
    """
    return _run_scenarios([replace(scenario, seed=seed)
                           for seed in range(trials)], workers)


def run_family_trials(family: str, cc: str, trials: int,
                      quick: bool = False, workers: int | None = None,
                      **params) -> list[ScenarioResult]:
    """Repeat one registry family with different seeds.

    Each trial's scenario is rebuilt through
    :func:`repro.scenarios.build_scenario` with its own seed, honouring
    the registry's seed discipline (the whole scenario — including any
    seed-derived structure such as sampled fault schedules — follows
    the trial seed, not just the engine RNG).
    """
    from ..scenarios import build_scenario

    return _run_scenarios(
        [build_scenario(family, cc=cc, quick=quick, seed=seed, **params)
         for seed in range(trials)], workers)


def summarize_trials(results: list[ScenarioResult], scheme: str,
                     penalty_s: float | None = None) -> RunSummary:
    """Average the per-trial summaries into one record."""
    rows = [summarize(r, scheme, penalty_s=penalty_s) for r in results]

    def agg(field: str) -> float:
        vals = [getattr(r, field) for r in rows]
        vals = [v for v in vals if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    return RunSummary(
        scheme=scheme,
        utilization=agg("utilization"),
        mean_jain=agg("mean_jain"),
        mean_rtt_ms=agg("mean_rtt_ms"),
        mean_loss_rate=agg("mean_loss_rate"),
        convergence_time_s=agg("convergence_time_s"),
        stability_mbps=agg("stability_mbps"),
    )
