"""Multi-trial experiment execution shared by all benchmarks."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..config import ScenarioConfig, replace
from ..env import ScenarioResult, run_scenario
from ..metrics.summary import RunSummary, summarize


def run_trials(factory: Callable[[int], ScenarioConfig], trials: int,
               ) -> list[ScenarioResult]:
    """Run ``trials`` repetitions; ``factory(seed)`` builds each scenario."""
    return [run_scenario(factory(seed)) for seed in range(trials)]


def run_scheme_trials(scenario: ScenarioConfig, trials: int,
                      ) -> list[ScenarioResult]:
    """Repeat one scenario with different seeds."""
    return [run_scenario(replace(scenario, seed=seed))
            for seed in range(trials)]


def summarize_trials(results: list[ScenarioResult], scheme: str,
                     penalty_s: float | None = None) -> RunSummary:
    """Average the per-trial summaries into one record."""
    rows = [summarize(r, scheme, penalty_s=penalty_s) for r in results]

    def agg(field: str) -> float:
        vals = [getattr(r, field) for r in rows]
        vals = [v for v in vals if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    return RunSummary(
        scheme=scheme,
        utilization=agg("utilization"),
        mean_jain=agg("mean_jain"),
        mean_rtt_ms=agg("mean_rtt_ms"),
        mean_loss_rate=agg("mean_loss_rate"),
        convergence_time_s=agg("convergence_time_s"),
        stability_mbps=agg("stability_mbps"),
    )
