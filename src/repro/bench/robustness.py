"""Robustness benchmark: per-fault recovery metrics across all CC schemes.

The ROADMAP's "bench robustness report": sweep the
:func:`~repro.bench.scenarios.robustness_scenario` family over every
registered congestion-control scheme x each fault kind x both network
engines, measure post-fault recovery with
:mod:`repro.metrics.recovery`, aggregate across seeds, and emit a JSON
artifact plus a markdown table.  Because every scheme runs under every
fault on both substrates, the sweep doubles as a broad correctness check
of the fault-injection layer.

Entry points: :func:`run_robustness_sweep` (the full cross product,
programmable subset), :func:`markdown_report` (the human-readable table)
and the ``repro bench robustness`` CLI subcommand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..config import ScenarioConfig
from ..env import run_scenario
from ..env.packetrun import run_scenario_packet
from ..errors import ConfigError
from ..metrics.recovery import RecoveryReport, recovery_report
from ..parallel import parallel_map, resolve_workers
from ..scenarios import build_scenario
from .reporting import markdown_table

#: Fault kinds of the sweep (the five primitives; "mixed" is excluded
#: because its random composite has no single window to recover from).
FAULT_KINDS = ("blackout", "flap", "loss-burst", "delay-spike", "reorder")

#: Every registered scheme the report compares.
ALL_SCHEMES = ("astraea", "aurora", "orca", "vivace", "remy", "bbr",
               "copa", "cubic", "newreno", "reno", "vegas", "compound")

#: Engines of the default sweep.  The socket engine is dispatchable but
#: excluded here: it runs in (scaled) wall-clock time, so a full sweep
#: over it would take tens of minutes — select it explicitly with
#: ``--engines socket``.
ENGINES = ("fluid", "packet")

#: Every engine :func:`run_engine_scenario` can dispatch to.
ALL_ENGINES = ("fluid", "packet", "socket")

#: The CI smoke subset: 2 schemes x 3 fault kinds, fluid engine only.
#: loss-burst is included so ``--small`` sweeps on any engine exercise
#: the recovery-after-random-loss path (the socket engine's headline).
SMALL_SCHEMES = ("cubic", "bbr")
SMALL_KINDS = ("blackout", "flap", "loss-burst")


@dataclass(frozen=True)
class RecoveryCell:
    """Aggregated recovery stats of one (scheme, fault, engine) cell.

    Means are taken over the trials in which the respective metric was
    finite; ``recovered`` counts trials whose throughput re-attained the
    recovery threshold, so a cell with ``recovered < trials`` flags a
    scheme the fault left (partially) broken rather than hiding it inside
    an averaged sentinel.
    """

    scheme: str
    kind: str
    engine: str
    trials: int
    recovered: int
    recovery_time_s: float
    jain_reconvergence_s: float
    peak_rtt_overshoot_ms: float
    goodput_lost_mbit: float
    baseline_mbps: float
    #: Wall-clock spent running this cell (a timing field — excluded
    #: from determinism comparisons, see :func:`strip_timing_fields`).
    elapsed_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "kind": self.kind,
            "engine": self.engine,
            "trials": self.trials,
            "recovered": self.recovered,
            "recovery_time_s": self.recovery_time_s,
            "jain_reconvergence_s": self.jain_reconvergence_s,
            "peak_rtt_overshoot_ms": self.peak_rtt_overshoot_ms,
            "goodput_lost_mbit": self.goodput_lost_mbit,
            "baseline_mbps": self.baseline_mbps,
            "elapsed_s": self.elapsed_s,
        }


def run_engine_scenario(scenario: ScenarioConfig, engine: str):
    """Dispatch one scenario to the requested simulation engine."""
    if engine == "fluid":
        return run_scenario(scenario)
    if engine == "packet":
        return run_scenario_packet(scenario)
    if engine == "socket":
        from ..netsim.socketpath import run_scenario_socket

        return run_scenario_socket(scenario)
    raise ConfigError(f"unknown engine {engine!r}; known: {list(ALL_ENGINES)}")


def _finite_mean(values) -> float:
    finite = [v for v in values if np.isfinite(v)]
    return float(np.mean(finite)) if finite else float("nan")


def aggregate_reports(scheme: str, kind: str, engine: str,
                      reports: list[RecoveryReport]) -> RecoveryCell:
    """Collapse per-seed recovery reports into one table cell."""
    if not reports:
        raise ConfigError("cannot aggregate zero recovery reports")
    return RecoveryCell(
        scheme=scheme,
        kind=kind,
        engine=engine,
        trials=len(reports),
        recovered=sum(1 for r in reports if r.recovered),
        recovery_time_s=_finite_mean([r.recovery_time_s for r in reports]),
        jain_reconvergence_s=_finite_mean(
            [r.jain_reconvergence_s for r in reports]),
        peak_rtt_overshoot_ms=_finite_mean(
            [r.peak_rtt_overshoot_ms for r in reports]),
        goodput_lost_mbit=_finite_mean(
            [r.goodput_lost_mbit for r in reports]),
        baseline_mbps=_finite_mean([r.baseline_mbps for r in reports]),
    )


def run_cell(scheme: str, kind: str, engine: str, trials: int = 2,
             quick: bool = True, threshold: float = 0.9,
             seeds=None, policy: str | None = None) -> RecoveryCell:
    """Run one (scheme, fault kind, engine) cell across its seeds.

    ``seeds`` defaults to ``range(trials)``; passing it explicitly lets
    a task payload carry its own seeds (the parallel-layer contract).
    ``policy`` overrides the model bundle of every flow running
    ``scheme`` (learned schemes only) — how a candidate bundle, e.g. a
    fault-hardened retrain, is diffed against the shipped one on the
    identical fault grid.  The returned cell records the wall-clock it
    took (``elapsed_s``).
    """
    start = time.perf_counter()
    if seeds is None:
        seeds = range(trials)
    reports = []
    for seed in seeds:
        scenario = build_scenario("robustness", cc=scheme, kind=kind,
                                  quick=quick, seed=seed)
        if policy is not None:
            flows = tuple(
                dc_replace(f, cc_kwargs={**f.cc_kwargs, "policy": policy})
                if f.cc == scheme else f
                for f in scenario.flows)
            scenario = dc_replace(scenario, flows=flows)
        result = run_engine_scenario(scenario, engine)
        reports.append(recovery_report(result, scenario.faults,
                                       threshold=threshold))
    cell = aggregate_reports(scheme, kind, engine, reports)
    return dc_replace(cell, elapsed_s=time.perf_counter() - start)


def _run_cell_task(task: dict) -> RecoveryCell:
    """Module-level worker for :func:`parallel_map` (spawn-picklable)."""
    return run_cell(task["scheme"], task["kind"], task["engine"],
                    trials=len(task["seeds"]), quick=task["quick"],
                    threshold=task["threshold"], seeds=task["seeds"],
                    policy=task.get("policy"))


def _describe_cell_task(task: dict) -> str:
    return f"cell {task['engine']}/{task['scheme']}/{task['kind']}"


def validate_sweep_axes(schemes, kinds, engines, families=()) -> None:
    """Reject unknown axis values *before* any cell burns sweep time.

    A typo like ``--schemes cubci`` used to die minutes into the sweep,
    inside ``cc.create`` of the first affected cell; now every axis is
    checked up front with a :class:`~repro.errors.ConfigError` listing
    the known values.  ``families`` (used by the scenario sweep) is
    checked against the scenario registry.
    """
    from ..cc import available
    from ..scenarios import available_families

    unknown = [k for k in kinds if k not in FAULT_KINDS]
    if unknown:
        raise ConfigError(
            f"unknown fault kinds {unknown}; known: {list(FAULT_KINDS)}")
    known_schemes = set(available())
    unknown = [s for s in schemes if s not in known_schemes]
    if unknown:
        raise ConfigError(
            f"unknown schemes {unknown}; known: {sorted(known_schemes)}")
    unknown = [e for e in engines if e not in ALL_ENGINES]
    if unknown:
        raise ConfigError(
            f"unknown engines {unknown}; known: {list(ALL_ENGINES)}")
    known_families = set(available_families())
    unknown = [f for f in families if f not in known_families]
    if unknown:
        raise ConfigError(
            f"unknown scenario families {unknown}; known: "
            f"{sorted(known_families)}")


def run_robustness_sweep(schemes=ALL_SCHEMES, kinds=FAULT_KINDS,
                         engines=ENGINES, trials: int = 2,
                         quick: bool = True, threshold: float = 0.9,
                         progress=None, workers: int | None = None,
                         policy: str | None = None) -> dict:
    """The full sweep: every scheme x fault kind x engine.

    Returns a JSON-serialisable payload with one entry per cell.
    ``progress`` is an optional callback ``(done, total, cell)`` invoked
    as cells complete (the CLI uses it for stderr progress lines); with
    ``workers > 1`` it fires in completion order with a monotone done
    count.  ``policy`` substitutes a model bundle path into every
    matching-scheme flow (see :func:`run_cell`).  The payload is
    identical for any worker count except for the timing fields
    (``elapsed_s``, ``workers``) — asserted by test.
    """
    validate_sweep_axes(schemes, kinds, engines)
    start = time.perf_counter()
    n_workers = resolve_workers(workers)
    tasks = [
        {"scheme": s, "kind": k, "engine": e, "seeds": list(range(trials)),
         "quick": quick, "threshold": threshold, "policy": policy}
        for e in engines for s in schemes for k in kinds
    ]
    cells = parallel_map(
        _run_cell_task, tasks, workers=n_workers,
        describe=_describe_cell_task,
        progress=(None if progress is None else
                  lambda done, total, index, cell: progress(done, total,
                                                            cell)))
    return {
        "schemes": list(schemes),
        "kinds": list(kinds),
        "engines": list(engines),
        "trials": trials,
        "quick": quick,
        "threshold": threshold,
        "policy": policy,
        "workers": n_workers,
        "elapsed_s": time.perf_counter() - start,
        "cells": [c.as_dict() for c in cells],
    }


#: Payload keys that legitimately differ between two runs of the same
#: sweep (wall-clock instrumentation and pool sizing).
TIMING_FIELDS = ("elapsed_s", "workers")


def strip_timing_fields(payload: dict) -> dict:
    """The payload with wall-clock instrumentation removed.

    Two sweeps of identical inputs must agree exactly on this view, at
    any worker count — the determinism contract of the parallel layer.
    """
    out = {k: v for k, v in payload.items() if k not in TIMING_FIELDS}
    out["cells"] = [{k: v for k, v in cell.items() if k not in TIMING_FIELDS}
                    for cell in payload["cells"]]
    return out


TABLE_HEADERS = ["scheme", "fault", "engine", "recovered",
                 "t_recover (s)", "t_jain (s)", "rtt overshoot (ms)",
                 "goodput lost (Mbit)"]


def table_rows(payload: dict) -> list[list]:
    """Rows of the report table, scheme-major then fault then engine."""
    rows = []
    cells = sorted(payload["cells"],
                   key=lambda c: (c["scheme"], c["kind"], c["engine"]))
    for c in cells:
        rows.append([
            c["scheme"], c["kind"], c["engine"],
            f"{c['recovered']}/{c['trials']}",
            c["recovery_time_s"], c["jain_reconvergence_s"],
            c["peak_rtt_overshoot_ms"], c["goodput_lost_mbit"],
        ])
    return rows


def markdown_report(payload: dict) -> str:
    """The robustness report as a markdown document."""
    mode = "quick" if payload.get("quick") else "full"
    lines = [
        "# Robustness report — post-fault recovery",
        "",
        f"Recovery threshold: {payload['threshold']:.0%} of pre-fault "
        f"steady state; {payload['trials']} trial(s) per cell; "
        f"{mode}-mode scenarios.",
        "",
        markdown_table(TABLE_HEADERS, table_rows(payload)),
        "",
        "`t_recover` / `t_jain` average the trials that recovered; "
        "`recovered` counts how many did (never-recovered runs carry the "
        "sentinel and are excluded from the means).",
    ]
    return "\n".join(lines)
