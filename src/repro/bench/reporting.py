"""Benchmark reporting: paper-vs-measured tables and result persistence.

Every benchmark prints an aligned table (the "rows/series the paper
reports") and writes its measured values to ``benchmarks/results/<id>.json``
so that EXPERIMENTS.md can be assembled from the actual numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Monospace table with a title rule."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        "",
        f"=== {title} ===",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in cells]
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    print(format_table(title, headers, rows))


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """GitHub-flavoured markdown table (README / report artifacts)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in cells]
    return "\n".join(lines)


def save_markdown(experiment_id: str, text: str) -> Path:
    """Persist a markdown report next to the JSON results."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.md"
    path.write_text(text if text.endswith("\n") else text + "\n")
    return path


def save_results(experiment_id: str, payload: dict) -> Path:
    """Persist a benchmark's measured values for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.json"
    path.write_text(json.dumps(payload, indent=2, default=_jsonify))
    return path


def _jsonify(obj):
    import numpy as np

    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serialisable: {type(obj)}")


def load_results(experiment_id: str) -> dict | None:
    """Read back a previously saved benchmark record, if any."""
    path = RESULTS_DIR / f"{experiment_id}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())
