"""Benchmark reporting: paper-vs-measured tables and result persistence.

Every benchmark prints an aligned table (the "rows/series the paper
reports") and writes its measured values to ``benchmarks/results/<id>.json``
so that EXPERIMENTS.md can be assembled from the actual numbers.

Artifacts are *strict* JSON: non-finite floats (the per-cell sentinel
means of all-never-recovered sweeps, for instance) serialise as
``null`` rather than the bare ``NaN``/``Infinity`` tokens Python's
encoder emits by default — which no strict parser (``jq``, JavaScript
``JSON.parse``) accepts.  Writes are atomic (serialise first, then
temp-file + ``os.replace``), so a crash or a second concurrent writer
can never tear a half-written artifact.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from ..errors import ConfigError
from ..persist import write_text_atomic

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Monospace table with a title rule."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        "",
        f"=== {title} ===",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in cells]
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    print(format_table(title, headers, rows))


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """GitHub-flavoured markdown table (README / report artifacts)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in cells]
    return "\n".join(lines)


def save_markdown(experiment_id: str, text: str) -> Path:
    """Persist a markdown report next to the JSON results (atomically)."""
    path = RESULTS_DIR / f"{experiment_id}.md"
    return write_text_atomic(path,
                             text if text.endswith("\n") else text + "\n")


def sanitize_payload(obj):
    """A copy of ``obj`` that strict JSON can represent.

    NumPy scalars/arrays become native types, and non-finite floats
    (``nan``, ``±inf``) become ``None`` — the lossy-but-honest encoding
    of "no finite value" that every JSON parser understands.
    """
    import numpy as np

    if isinstance(obj, dict):
        return {k: sanitize_payload(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_payload(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return sanitize_payload(obj.tolist())
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        obj = obj.item()
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    return obj


def encode_results(payload: dict) -> str:
    """Serialise a benchmark payload as strict JSON text."""
    return json.dumps(sanitize_payload(payload), indent=2,
                      allow_nan=False) + "\n"


def write_results_file(path: str | Path, payload: dict) -> Path:
    """Strictly encode ``payload`` and atomically write it to ``path``.

    Serialisation happens before the file is touched, so an
    unserialisable payload leaves any previous artifact intact.
    """
    return write_text_atomic(path, encode_results(payload))


def save_results(experiment_id: str, payload: dict) -> Path:
    """Persist a benchmark's measured values for EXPERIMENTS.md."""
    return write_results_file(RESULTS_DIR / f"{experiment_id}.json", payload)


def _reject_constant(name: str):
    raise ConfigError(
        f"artifact contains non-strict JSON token {name!r}; regenerate it "
        "with save_results (non-finite floats must serialise as null)")


def loads_strict(text: str):
    """Parse JSON, rejecting the bare ``NaN``/``Infinity`` extensions."""
    return json.loads(text, parse_constant=_reject_constant)


def load_results(experiment_id: str) -> dict | None:
    """Read back a previously saved benchmark record, if any.

    Parsing is strict: a legacy artifact carrying bare ``NaN`` tokens
    raises :class:`~repro.errors.ConfigError` instead of silently
    round-tripping a document no other tool can read.
    """
    path = RESULTS_DIR / f"{experiment_id}.json"
    if not path.exists():
        return None
    return loads_strict(path.read_text())
