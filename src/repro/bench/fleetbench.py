"""Fleet scaling benchmark: flows simulated per wall-second, 10 → 10k.

``repro bench fleet`` is the scaling headline of the sharded fleet
runner (:mod:`repro.fleet`): for each point of a shard-count x
flows-per-shard sweep it runs the same fleet twice — single-process
(``workers=1``) and through the process pool — and records wall-clock,
flows per wall-second, and the work metric **flow·ticks per
wall-second** (flows x engine ticks simulated, the quantity that is
invariant to how the sweep splits flows across shards).  The artifact
embeds the serial-vs-sharded equivalence verdict (aggregate fairness /
utilization must be *bit-identical* for any worker count) and a speedup
gate that records the multi-core expectation explicitly: on a >= 2-core
host the sharded leg must reach ``REQUIRED_SPEEDUP`` x the serial
throughput at >= ``GATE_MIN_FLOWS`` flows; on a single-core host the
gate is recorded as not applicable rather than silently passed.

Result persists as ``benchmarks/results/BENCH_fleet.json`` following
the ``BENCH_engine`` / ``BENCH_train`` pattern (strict JSON, gating
``--check-only`` in CI, informational ``--small``).
"""

from __future__ import annotations

import os
import time

from ..fleet import FleetSpec, check_equivalence, run_fleet

BENCH_ID = "BENCH_fleet"

#: (n_shards, flows_per_shard) sweep points of the full benchmark —
#: total flows 10, 100, 1 000, 10 000.
FLEET_POINTS = ((1, 10), (4, 25), (25, 40), (100, 100))

#: CI subset: same shape, two decades only.
SMALL_POINTS = ((1, 10), (4, 25))

#: The acceptance gate: sharded throughput vs single-process, evaluated
#: at points with at least GATE_MIN_FLOWS flows on hosts with at least
#: GATE_MIN_CORES cores.
REQUIRED_SPEEDUP = 3.0
GATE_MIN_FLOWS = 1000
GATE_MIN_CORES = 2


def _leg(result) -> dict:
    """The recorded numbers of one (serial or sharded) fleet run."""
    rates = result.throughput()
    return {
        "workers": result.workers,
        "elapsed_s": result.elapsed_s,
        "total_flows": result.total_flows,
        "total_ticks": result.total_ticks,
        "flow_ticks": result.flow_ticks,
        "flows_per_wall_s": rates["flows_per_wall_s"],
        "flow_ticks_per_wall_s": rates["flow_ticks_per_wall_s"],
        "jain": result.jain,
        "utilization": result.utilization,
        "failures": len(result.failures),
    }


def _heartbeat(report, leg: str):
    """Adapt a message callback to ``parallel_map``'s progress hook.

    Emits roughly ten lines per leg however many shards there are, so an
    hour-scale fleet still heartbeats without drowning a 100-shard sweep
    in per-shard output.
    """
    if report is None:
        return None
    def callback(done: int, total: int, index: int, record) -> None:
        stride = max(1, total // 10)
        if done % stride == 0 or done == total:
            report(f"  [{done}/{total}] {leg} shard {index} done")
    return callback


def measure_point(n_shards: int, flows_per_shard: int, *, cc: str = "cubic",
                  seed: int = 0, workers: int = 2,
                  progress=None) -> dict:
    """One sweep point: the same fleet, single-process then sharded.

    ``progress`` (a message callback) receives per-shard heartbeat
    lines from both legs.
    """
    spec = FleetSpec(cc=cc, n_shards=n_shards,
                     flows_per_shard=flows_per_shard, seed=seed,
                     quick=True, epochs=4)
    serial = run_fleet(spec, workers=1,
                       progress=_heartbeat(progress, "serial"))
    sharded = run_fleet(spec, workers=max(2, workers),
                        progress=_heartbeat(progress, "sharded"))
    serial_leg, sharded_leg = _leg(serial), _leg(sharded)
    speedup = (sharded_leg["flow_ticks_per_wall_s"]
               / max(serial_leg["flow_ticks_per_wall_s"], 1e-9))
    return {
        "n_shards": n_shards,
        "flows_per_shard": flows_per_shard,
        "total_flows": spec.total_flows,
        "serial": serial_leg,
        "sharded": sharded_leg,
        "speedup": speedup,
        "aggregates_identical":
            serial.fingerprint() == sharded.fingerprint(),
    }


def speedup_gate(points: list[dict], cpu_count: int | None = None) -> dict:
    """Evaluate the >= 3x-at->=1000-flows gate, honestly per-host.

    On hosts below ``GATE_MIN_CORES`` cores the gate cannot be met by
    construction (there is no parallel hardware), so ``applicable`` is
    recorded ``False`` and ``met`` is ``None`` — never a silent pass.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    eligible = [p for p in points if p["total_flows"] >= GATE_MIN_FLOWS]
    applicable = cpu_count >= GATE_MIN_CORES and bool(eligible)
    best = max((p["speedup"] for p in eligible), default=None)
    return {
        "required_speedup": REQUIRED_SPEEDUP,
        "min_flows": GATE_MIN_FLOWS,
        "min_cores": GATE_MIN_CORES,
        "cpu_count": cpu_count,
        "applicable": applicable,
        "best_speedup": best,
        "met": (best is not None and best >= REQUIRED_SPEEDUP)
            if applicable else None,
    }


def run_fleet_benchmark(points=FLEET_POINTS, *, cc: str = "cubic",
                        seed: int = 0, workers: int = 2,
                        small: bool = False, progress=None) -> dict:
    """Full benchmark: the scaling sweep plus the equivalence verdict.

    ``progress`` (if given) is called with one status line per stage.
    """

    def report(msg: str) -> None:
        if progress is not None:
            progress(msg)

    started = time.perf_counter()
    measured = []
    for n_shards, flows_per_shard in points:
        total = n_shards * flows_per_shard
        report(f"fleet point {n_shards} shard(s) x {flows_per_shard} "
               f"flow(s) = {total} flows (serial + sharded)...")
        measured.append(measure_point(
            n_shards, flows_per_shard, cc=cc, seed=seed, workers=workers,
            progress=progress))
    report("serial-vs-sharded equivalence check...")
    equivalence = check_equivalence(workers=workers)
    return {
        "bench": BENCH_ID,
        "small": small,
        "cc": cc,
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        "workers": max(2, workers),
        "points": measured,
        "equivalence": equivalence,
        "speedup_gate": speedup_gate(measured),
        "elapsed_s": time.perf_counter() - started,
    }


def fleet_table_rows(payload: dict) -> list[list]:
    """Rows for the human-readable scaling table."""
    rows = []
    for p in payload["points"]:
        rows.append([
            f"{p['n_shards']}x{p['flows_per_shard']}",
            p["total_flows"],
            round(p["serial"]["flow_ticks_per_wall_s"]),
            round(p["sharded"]["flow_ticks_per_wall_s"]),
            f"{p['speedup']:.2f}x",
            f"{p['serial']['jain']:.4f}",
            f"{p['serial']['utilization']:.4f}",
        ])
    return rows
