"""Benchmark harness: canonical scenarios, trial runners, reporting."""

from .runners import run_scheme_trials, run_trials, summarize_trials
from .reporting import (
    format_table,
    load_results,
    print_table,
    save_results,
)
from . import scenarios

__all__ = [
    "scenarios",
    "run_trials",
    "run_scheme_trials",
    "summarize_trials",
    "format_table",
    "print_table",
    "save_results",
    "load_results",
]
