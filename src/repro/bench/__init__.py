"""Benchmark harness: canonical scenarios, trial runners, reporting."""

from .engine import check_equivalence, run_engine_benchmark
from .runners import (
    run_family_trials,
    run_scheme_trials,
    run_trials,
    summarize_trials,
)
from .reporting import (
    format_table,
    load_results,
    markdown_table,
    print_table,
    save_markdown,
    save_results,
)
from . import scenarios

__all__ = [
    "scenarios",
    "run_trials",
    "run_family_trials",
    "run_scheme_trials",
    "summarize_trials",
    "format_table",
    "markdown_table",
    "print_table",
    "save_results",
    "save_markdown",
    "load_results",
    "run_engine_benchmark",
    "check_equivalence",
]
