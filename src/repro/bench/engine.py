"""Single-engine microbenchmark: vectorized fast path vs reference.

``repro bench engine`` measures the fluid engine itself — the inner loop
under every training episode, benchmark trial and robustness cell — on
two axes:

* raw **ticks/s** of the engine advanced at MTP-sized blocks
  (:meth:`~repro.netsim.fluid.FluidNetwork.advance_block`) against the
  per-tick reference path, across flow counts;
* **episode wall-clock** of a full ``run_scenario`` (controllers, logs,
  monitors included) on both paths.

It also replays one pinned scenario — qdisc + fault + pacing cap + flow
churn — on both paths and records the worst per-tick per-flow delta, so
the artifact itself witnesses the equivalence contract
(docs/architecture.md §7).  The result persists as
``benchmarks/results/BENCH_engine.json``, the first single-engine point
of the perf trajectory (PR 4's ``BENCH_parallel.json`` covers the
process-pool layer above it).
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..config import LinkConfig, ScenarioConfig
from ..env.multiflow import run_scenario
from ..netsim.faults import Blackout, FaultSchedule, LossBurst
from ..netsim.flowgen import staggered_flows
from ..netsim.fluid import SLOWPATH_ENV, FluidNetwork

BENCH_ID = "BENCH_engine"

#: Default tick length (2 ms) and controller cadence (~15 ticks/MTP).
TICK_S = 0.002
BLOCK_TICKS = 15

#: Per-tick per-flow tolerance of the fast-vs-reference contract.
EQUIVALENCE_TOL = 1e-9


def _build_raw_engine(n_flows: int, slowpath: bool) -> FluidNetwork:
    link = LinkConfig(bandwidth_mbps=96.0, rtt_ms=30.0, buffer_bdp=1.5)
    net = FluidNetwork(link, slowpath=slowpath)
    for i in range(n_flows):
        net.add_flow(0.02 + 0.005 * i, cwnd_pkts=50.0 + 5.0 * i)
    return net


def measure_ticks_per_s(n_flows: int, duration_s: float = 30.0,
                        tick_s: float = TICK_S,
                        block_ticks: int = BLOCK_TICKS) -> dict:
    """Raw engine throughput, fast (blocked) vs reference (per tick).

    The fast leg advances in ``block_ticks`` batches — the cadence the
    scenario driver uses between MTP decisions; the reference leg is one
    ``advance`` call per tick, exactly the pre-fast-path execution model.
    Monitors are drained periodically on both legs so ring growth stays
    bounded, as it is in a real episode.
    """
    n_ticks = max(int(duration_s / tick_s), block_ticks)
    n_blocks = n_ticks // block_ticks
    n_ticks = n_blocks * block_ticks

    def drain(net: FluidNetwork) -> None:
        for fid in net.flow_ids:
            net.monitor(fid).collect(net.now, net.cwnd(fid), 0.0, 0.0)

    results = {}
    for label, slowpath in (("fast", False), ("reference", True)):
        net = _build_raw_engine(n_flows, slowpath)
        start = time.perf_counter()
        if slowpath:
            for b in range(n_blocks):
                for _ in range(block_ticks):
                    net.advance(tick_s)
                drain(net)
        else:
            for b in range(n_blocks):
                net.advance_block(tick_s, block_ticks)
                drain(net)
        elapsed = time.perf_counter() - start
        results[label] = {
            "elapsed_s": elapsed,
            "ticks_per_s": n_ticks / elapsed if elapsed > 0 else None,
        }
    fast = results["fast"]["ticks_per_s"]
    ref = results["reference"]["ticks_per_s"]
    return {
        "n_flows": n_flows,
        "n_ticks": n_ticks,
        "block_ticks": block_ticks,
        "fast": results["fast"],
        "reference": results["reference"],
        "speedup": fast / ref if fast and ref else None,
    }


def _episode_scenario(n_flows: int, duration_s: float) -> ScenarioConfig:
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=96.0, rtt_ms=30.0, buffer_bdp=1.5),
        flows=staggered_flows(n_flows, "cubic", interval_s=2.0,
                              duration_s=duration_s),
        duration_s=duration_s,
        seed=11,
    )


def _run_with_engine(scenario: ScenarioConfig, slowpath: bool):
    """Run a scenario with the engine path pinned via the environment.

    The slow-path flag is read at :class:`FluidNetwork` construction, so
    toggling the variable around ``run_scenario`` is race-free in
    process.
    """
    saved = os.environ.get(SLOWPATH_ENV)
    os.environ[SLOWPATH_ENV] = "1" if slowpath else "0"
    try:
        return run_scenario(scenario)
    finally:
        if saved is None:
            os.environ.pop(SLOWPATH_ENV, None)
        else:
            os.environ[SLOWPATH_ENV] = saved


def measure_episode(n_flows: int, duration_s: float = 30.0) -> dict:
    """Wall-clock of one full scenario episode on both engine paths."""
    scenario = _episode_scenario(n_flows, duration_s)
    out = {"n_flows": n_flows, "duration_s": duration_s}
    for label, slowpath in (("fast", False), ("reference", True)):
        start = time.perf_counter()
        _run_with_engine(scenario, slowpath)
        out[label] = {"elapsed_s": time.perf_counter() - start}
    fast = out["fast"]["elapsed_s"]
    ref = out["reference"]["elapsed_s"]
    out["speedup"] = ref / fast if fast > 0 else None
    return out


def _pinned_scenario() -> ScenarioConfig:
    """The gating equivalence scenario: qdisc + faults + churn + pacing."""
    flows = staggered_flows(3, "cubic", interval_s=3.0, duration_s=10.0)
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=48.0, rtt_ms=30.0, buffer_bdp=1.5,
                        qdisc="red"),
        flows=flows,
        duration_s=14.0,
        seed=23,
        faults=FaultSchedule([
            Blackout(start_s=4.0, duration_s=0.5),
            LossBurst(start_s=8.0, duration_s=0.5, loss_rate=0.1),
        ]),
    )


def check_equivalence(tolerance: float = EQUIVALENCE_TOL) -> dict:
    """Replay the pinned scenario on both paths and compare all logs."""
    scenario = _pinned_scenario()
    ref = _run_with_engine(scenario, slowpath=True)
    fast = _run_with_engine(scenario, slowpath=False)
    max_delta = 0.0
    rows = 0
    for a, b in zip(ref.flows, fast.flows):
        if a.times != b.times:
            return {"passed": False, "max_delta": None, "rows": rows,
                    "tolerance": tolerance,
                    "reason": "controller timelines diverged"}
        rows += len(a.times)
        for series in ("throughput_mbps", "rtt_s", "loss_rate",
                       "cwnd_pkts", "send_rate_mbps"):
            da = np.asarray(getattr(a, series))
            db = np.asarray(getattr(b, series))
            if len(da):
                max_delta = max(max_delta, float(np.max(np.abs(da - db))))
    return {
        "passed": max_delta <= tolerance,
        "max_delta": max_delta,
        "rows": rows,
        "tolerance": tolerance,
    }


def run_engine_benchmark(flow_counts: tuple[int, ...] = (1, 2, 8, 16),
                         duration_s: float = 30.0,
                         episode_flows: int = 8,
                         progress=None) -> dict:
    """Full benchmark: ticks/s across flow counts, one episode, equivalence.

    Returns the ``BENCH_engine`` payload; ``progress`` (if given) is
    called with one status line per stage.
    """

    def report(msg: str) -> None:
        if progress is not None:
            progress(msg)

    ticks = []
    for n in flow_counts:
        report(f"ticks/s at {n} flow(s)...")
        ticks.append(measure_ticks_per_s(n, duration_s=duration_s))
    report(f"episode wall-clock at {episode_flows} flow(s)...")
    episode = measure_episode(episode_flows, duration_s=duration_s)
    report("equivalence check...")
    equivalence = check_equivalence()
    return {
        "bench": BENCH_ID,
        "tick_s": TICK_S,
        "block_ticks": BLOCK_TICKS,
        "duration_s": duration_s,
        "flow_counts": list(flow_counts),
        "ticks_per_s": ticks,
        "episode": episode,
        "equivalence": equivalence,
    }
