"""Terminal-friendly analysis rendering for scenario results.

The emulator runs headless; these helpers turn a
:class:`~repro.env.multiflow.ScenarioResult` into compact text artefacts —
sparklines, per-flow timelines, a one-screen report — used by the CLI's
``run --plot`` and the examples.
"""

from __future__ import annotations

import numpy as np

from .env.multiflow import ScenarioResult
from .errors import ConfigError

_BLOCKS = " ▁▂▃▄▅▆▇█"
_ASCII_BLOCKS = " .:-=+*#%@"


def sparkline(values, lo: float | None = None, hi: float | None = None,
              width: int = 60, ascii_only: bool = False) -> str:
    """Render a numeric series as a fixed-width sparkline string."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("cannot sparkline an empty series")
    if width <= 0:
        raise ConfigError("width must be positive")
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    blocks = _ASCII_BLOCKS if ascii_only else _BLOCKS
    idx = np.linspace(0, arr.size - 1, width).astype(int)
    span = max(hi - lo, 1e-12)
    scaled = np.clip((arr[idx] - lo) / span, 0.0, 0.999)
    return "".join(blocks[int(s * len(blocks))] for s in scaled)


def flow_timelines(result: ScenarioResult, grid_s: float = 0.5,
                   width: int = 60, ascii_only: bool = False) -> str:
    """One sparkline per flow (throughput), on a shared scale."""
    times, matrix, active = result.throughput_matrix(grid_s)
    hi = float(matrix.max()) if matrix.size else 1.0
    lines = []
    for i, flow in enumerate(result.flows):
        series = np.where(active[i], matrix[i], 0.0)
        line = sparkline(series, lo=0.0, hi=hi, width=width,
                         ascii_only=ascii_only)
        lines.append(f"flow {i} ({flow.cc_name:>11s}) |{line}| "
                     f"max {matrix[i].max():6.1f} Mbps")
    lines.append(f"{'time axis':>20s} 0s{'-' * (width - 10)}"
                 f"{result.duration_s:.0f}s")
    return "\n".join(lines)


def text_report(result: ScenarioResult, grid_s: float = 0.5,
                ascii_only: bool = False) -> str:
    """A one-screen summary: headline metrics plus per-flow timelines."""
    from .metrics import convergence_report, mean_convergence_time

    reports = convergence_report(result)
    conv = mean_convergence_time(reports, penalty_s=result.duration_s)
    lines = [
        f"bottleneck {result.bottleneck_mbps:g} Mbps, "
        f"base RTT {result.base_rtt_s * 1e3:g} ms, "
        f"{len(result.flows)} flows, {result.duration_s:g} s",
        f"utilization {result.utilization():.3f}   "
        f"jain {result.mean_jain():.3f}   "
        f"rtt {result.mean_rtt_s() * 1e3:.1f} ms   "
        f"loss {result.mean_loss_rate():.4f}   "
        f"conv {conv:.2f} s",
        "",
        flow_timelines(result, grid_s=grid_s, ascii_only=ascii_only),
    ]
    return "\n".join(lines)
