"""Unresponsive constant-rate cross traffic (training/eval utility).

A flow that paces at a fixed rate regardless of congestion — the fluid
equivalent of a UDP blaster.  Training episodes mix these (and CUBIC
flows) in so the Astraea policy experiences standing queues it cannot
drain, which is what teaches it to keep competing for throughput instead
of yielding like a pure delay-based scheme (TCP friendliness, §5.3.1).
"""

from __future__ import annotations

from ..netsim.stats import MtpStats
from ..units import mbps_to_pps
from .base import CongestionController, Decision, register


@register("constant-rate")
class ConstantRate(CongestionController):
    """Paces at ``rate_mbps`` forever; never reacts to congestion."""

    def __init__(self, mtp_s: float = 0.030, rate_mbps: float = 20.0):
        super().__init__(mtp_s)
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        self.rate_mbps = rate_mbps

    def on_interval(self, stats: MtpStats) -> Decision:
        pps = mbps_to_pps(self.rate_mbps)
        # Window large enough to never be the limiter.
        return Decision(cwnd_pkts=max(4.0 * pps * stats.srtt_s, 10.0),
                        pacing_pps=pps)
