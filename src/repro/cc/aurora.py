"""Aurora: single-agent deep-RL congestion control (ICML'19).

Aurora trains a policy against the *local* reward of Eq. 1 in the paper:

    r = 10 * throughput - 1000 * latency - 2000 * loss

a throughput-dominant objective with no notion of sharing.  The paper's
motivating experiment (Fig. 1a) shows the consequence: an Aurora flow keeps
the bottleneck queue standing and a later arrival never obtains bandwidth.

This implementation mirrors the repo's Astraea controller structure: the
same local state block and Eq. 3 action mapping drive a policy.  The
*default* is a calibrated behavioural model that holds the latency at a
fixed multiple of the base RTT regardless of competition — the exact
mechanism behind Aurora's published unfairness: an incumbent keeps the
queue standing, so a newcomer measures "latency already at target" and
never ramps.  Passing ``policy="pretrained"`` loads the bundle trained
single-flow with :func:`repro.core.train.train_aurora` instead; note
that under our normalised Eq. 1 reward that trained policy turns out
*less* unfair than the original (EXPERIMENTS.md discusses this), which is
why the calibrated model is the benchmark default.

``aurora_reward`` normalises Eq. 1 so its magnitudes are comparable across
link speeds while preserving the published throughput-dominant weighting.
"""

from __future__ import annotations

import numpy as np

from ..config import HISTORY_LENGTH, MTP_S
from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register

AURORA_ALPHA = 0.05   # Aurora's published step coefficient is larger than
                      # Astraea's 0.025, making it visibly more aggressive.


def aurora_reward(throughput_frac: float, latency_s: float, base_rtt_s: float,
                  loss_rate: float) -> float:
    """Eq. 1 of the paper, normalised to dimensionless O(1) terms.

    The published 10/1000/2000 coefficients apply to raw packets-per-second
    and seconds; we keep their *ratios* on normalised quantities: throughput
    as a fraction of capacity, latency as inflation over the base RTT.
    """
    inflation = max(latency_s - base_rtt_s, 0.0) / max(base_rtt_s, 1e-6)
    return 10.0 * throughput_frac - 2.0 * inflation - 20.0 * loss_rate


@register("aurora")
class Aurora(CongestionController):
    """Aurora controller: trained policy if available, else the fallback."""

    TARGET_LATENCY_RATIO = 2.0   # fallback: hold RTT at 2x base
    GAIN = 2.0
    LOSS_PANIC = 0.05            # only heavy loss makes Aurora back off
    SLOW_START_GROWTH = 1.5

    def __init__(self, mtp_s: float = MTP_S, policy=None,
                 history: int = HISTORY_LENGTH, alpha: float = AURORA_ALPHA):
        super().__init__(mtp_s)
        from ..core.policy import resolve_policy
        from ..core.state import LocalStateBlock

        # "pretrained" walks the default fallback chain (a corrupt shipped
        # bundle degrades to the behavioural model with a warning); an
        # explicit path raises typed ModelErrors; None keeps the
        # calibrated behavioural model, the benchmark default.
        self.policy = policy = resolve_policy(policy, "aurora",
                                              use_default=False)
        if policy is not None:
            history = policy.history
            alpha = policy.alpha
        self.alpha = alpha
        self.state_block = LocalStateBlock(history=history)
        self.reset()

    @property
    def backend(self) -> str:
        return "model" if self.policy is not None else "behavioural"

    def reset(self) -> None:
        self.state_block.reset()
        self.cwnd = self.initial_cwnd
        self._rtt_min = float("inf")
        self._in_slow_start = True

    def _fallback_action(self, stats: MtpStats) -> float:
        self._rtt_min = min(self._rtt_min, stats.min_rtt_s)
        ratio = stats.avg_rtt_s / max(self._rtt_min, 1e-6)
        action = self.GAIN * (self.TARGET_LATENCY_RATIO - ratio)
        if stats.loss_rate > self.LOSS_PANIC:
            action = min(action, -0.5)
        return float(np.clip(action, -1.0, 1.0))

    def on_interval(self, stats: MtpStats) -> Decision:
        from ..core.action import apply_action

        state = self.state_block.update(stats)
        if self._in_slow_start:
            self._rtt_min = min(self._rtt_min, stats.min_rtt_s)
            ratio = stats.avg_rtt_s / max(self._rtt_min, 1e-6)
            if ratio < 1.5 * self.TARGET_LATENCY_RATIO / 2.0 \
                    and stats.loss_rate <= self.LOSS_PANIC:
                # ACK-clocked growth: at most one packet per delivered ACK.
                self.cwnd = min(self.cwnd * self.SLOW_START_GROWTH,
                                self.cwnd + max(stats.delivered_pkts, 1.0))
                return Decision(cwnd_pkts=self.cwnd)
            self._in_slow_start = False
        if self.policy is not None:
            action = self.policy.act(state)
        else:
            action = self._fallback_action(stats)
        self.cwnd = apply_action(self.cwnd, action, self.alpha)
        return Decision(cwnd_pkts=self.cwnd)
