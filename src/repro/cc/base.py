"""Congestion-controller interface and scheme registry.

Every scheme — classical TCP, online-learning, and the RL-based Astraea —
implements the same minimal contract: once per *monitoring interval* it
receives the :class:`~repro.netsim.stats.MtpStats` observed over the last
interval and returns a :class:`Decision` with the new congestion window and
(optionally) a pacing rate.  The environment applies the decision to the
simulator and schedules the next interval.

Schemes register themselves by name so that scenarios can refer to them as
plain strings (``FlowConfig(cc="cubic")``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..config import MTP_S
from ..errors import ConfigError
from ..netsim.stats import MtpStats


@dataclass(frozen=True)
class Decision:
    """A controller's output for the next interval.

    ``cwnd_pkts`` is the congestion window in packets.  ``pacing_pps`` caps
    the sending rate; ``None`` leaves the flow purely window-limited.
    """

    cwnd_pkts: float
    pacing_pps: float | None = None


class CongestionController(ABC):
    """Base class for all congestion-control schemes.

    Subclasses implement :meth:`on_interval`.  ``interval_s`` controls how
    often the environment calls the controller; schemes that operate
    per-RTT (Vegas, Vivace monitor intervals) override it to track the
    smoothed RTT.
    """

    #: Registry name, set by the :func:`register` decorator.
    name: str = "base"

    def __init__(self, mtp_s: float = MTP_S):
        if mtp_s <= 0:
            raise ConfigError("monitoring period must be positive")
        self.mtp_s = mtp_s

    def reset(self) -> None:
        """Return the controller to its initial state (new connection)."""

    def interval_s(self, srtt_s: float) -> float:
        """Time until the next :meth:`on_interval` call."""
        return self.mtp_s

    @abstractmethod
    def on_interval(self, stats: MtpStats) -> Decision:
        """Consume one interval's statistics, emit the next window."""

    @property
    def initial_cwnd(self) -> float:
        """Window used before the first interval completes (IW10)."""
        return 10.0


_REGISTRY: dict[str, type[CongestionController]] = {}


def register(name: str):
    """Class decorator adding a controller to the global registry."""

    def deco(cls: type[CongestionController]) -> type[CongestionController]:
        if name in _REGISTRY:
            raise ConfigError(f"controller {name!r} registered twice")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def _ensure_core_registered() -> None:
    """Import the repro.core controllers (registers astraea/astraea-ref).

    Done lazily to avoid a circular import between repro.cc and repro.core.
    """
    if "astraea" not in _REGISTRY:
        from ..core import astraea as _astraea  # noqa: F401
        from ..core import reference as _reference  # noqa: F401


def create(name: str, **kwargs) -> CongestionController:
    """Instantiate a registered controller by name."""
    _ensure_core_registered()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown congestion controller {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available() -> list[str]:
    """Names of all registered controllers."""
    _ensure_core_registered()
    return sorted(_REGISTRY)
