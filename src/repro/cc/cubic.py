"""TCP CUBIC (RFC 8312-style window growth)."""

from __future__ import annotations

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@register("cubic")
class Cubic(CongestionController):
    """CUBIC: time-based cubic window growth around the last-loss window.

    On a loss event the window is reduced by the multiplicative factor
    ``BETA`` and a new cubic epoch starts; between losses the window follows
    ``W(t) = C (t - K)^3 + W_max`` with the standard TCP-friendly floor.
    """

    C = 0.4              # cubic scaling constant (packets/s^3)
    BETA = 0.7           # multiplicative decrease factor
    MIN_CWND = 2.0
    ECN_MARK_THRESHOLD = 0.01

    def __init__(self, mtp_s: float = 0.030, ecn: bool = False):
        super().__init__(mtp_s)
        self.ecn = ecn
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self.ssthresh = float("inf")
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start = -1.0
        self._recovery_until = -1.0

    def _enter_loss(self, now: float, srtt: float) -> None:
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, self.MIN_CWND)
        self.ssthresh = self.cwnd
        self._k = ((self._w_max * (1.0 - self.BETA)) / self.C) ** (1.0 / 3.0)
        self._epoch_start = now
        self._recovery_until = now + srtt

    def on_interval(self, stats: MtpStats) -> Decision:
        now = stats.time_s
        srtt = stats.srtt_s
        # ECN-capable CUBIC (RFC 3168 semantics): a marked window triggers
        # the same multiplicative decrease as a loss, without losing data.
        congested = stats.lost_pkts > 0 or \
            (self.ecn and stats.mark_rate > self.ECN_MARK_THRESHOLD)
        if congested and now >= self._recovery_until:
            self._enter_loss(now, srtt)
            return Decision(cwnd_pkts=self.cwnd)

        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + stats.delivered_pkts, self.ssthresh)
            return Decision(cwnd_pkts=self.cwnd)

        if self._epoch_start < 0:
            # No loss yet: keep a fresh epoch anchored at the current window.
            self._epoch_start = now
            self._w_max = self.cwnd
            self._k = 0.0
        t = now - self._epoch_start
        target = self.C * (t + srtt - self._k) ** 3 + self._w_max
        # TCP-friendly region: never slower than an equivalent AIMD flow.
        w_tcp = (self._w_max * self.BETA
                 + 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * t / max(srtt, 1e-6))
        target = max(target, w_tcp)
        if target > self.cwnd:
            # Approach the cubic target, at most doubling per RTT.
            growth = (target - self.cwnd) * min(1.0, stats.duration_s / max(srtt, 1e-6))
            self.cwnd = min(self.cwnd + max(growth, 0.0), self.cwnd * 1.5 + 1.0)
        self.cwnd = max(self.cwnd, self.MIN_CWND)
        return Decision(cwnd_pkts=self.cwnd)
