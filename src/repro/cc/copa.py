"""Copa: practical delay-based congestion control (NSDI'18), simplified.

Copa drives the sending rate toward the NUM target ``1 / (delta * d_q)``
where ``d_q`` is the measured queueing delay, using a velocity parameter
that doubles while the direction of adjustment is consistent.  The original
also switches into a "competitive mode" (smaller effective delta) when it
believes it shares the bottleneck with buffer-filling flows; the paper
(§5.1.1) attributes Copa's instability to erroneous switches, and this
implementation reproduces the mechanism with the same default thresholds.
"""

from __future__ import annotations

from collections import deque

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@register("copa")
class Copa(CongestionController):
    """Simplified Copa with velocity and mode switching."""

    DELTA = 0.5          # default-mode delta (1/packets)
    MIN_CWND = 2.0
    LOSS_THRESHOLD = 0.05  # ignore sub-congestion-scale (random) loss

    def __init__(self, mtp_s: float = 0.030, enable_mode_switch: bool = True):
        super().__init__(mtp_s)
        self._mode_switch = enable_mode_switch
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self._rtt_min = float("inf")
        self._rtt_min_window: deque[tuple[float, float]] = deque()
        self._velocity = 1.0
        self._direction = 0
        self._same_direction_count = 0
        self._delta = self.DELTA
        self._rtt_standing = float("inf")

    def interval_s(self, srtt_s: float) -> float:
        return max(srtt_s / 2.0, self.mtp_s)

    def _update_rtt_min(self, now: float, rtt: float) -> None:
        self._rtt_min_window.append((now, rtt))
        horizon = now - 10.0
        while self._rtt_min_window and self._rtt_min_window[0][0] < horizon:
            self._rtt_min_window.popleft()
        self._rtt_min = min(r for _, r in self._rtt_min_window)

    def on_interval(self, stats: MtpStats) -> Decision:
        now = stats.time_s
        self._update_rtt_min(now, stats.min_rtt_s)
        srtt = max(stats.avg_rtt_s, 1e-6)
        d_q = max(srtt - self._rtt_min, 1e-6)

        # Mode switching: if the queue never drains (delay stays well above
        # base), Copa suspects buffer-fillers and competes harder (smaller
        # effective delta).  Erroneous switches cause rate oscillation.
        if self._mode_switch:
            nearly_empty = d_q < 0.1 * self._rtt_min + 1e-4
            if nearly_empty:
                self._delta = self.DELTA
            else:
                self._delta = max(self._delta / 1.1, self.DELTA / 4.0)

        target_rate = 1.0 / (self._delta * d_q)          # packets/s
        current_rate = self.cwnd / srtt
        step = (self._velocity / (self._delta * max(self.cwnd, 1.0))) \
            * max(stats.delivered_pkts, 1.0)
        if current_rate < target_rate:
            direction = 1
            self.cwnd += step
        else:
            direction = -1
            self.cwnd -= step

        if direction == self._direction:
            self._same_direction_count += 1
            if self._same_direction_count >= 3:
                self._velocity = min(self._velocity * 2.0, 32.0)
        else:
            self._velocity = 1.0
            self._same_direction_count = 0
        self._direction = direction

        if stats.loss_rate > self.LOSS_THRESHOLD:
            # Copa is delay-based and deliberately insensitive to random
            # loss (App. B.2); only heavy (congestion-scale) loss cuts.
            self.cwnd = max(self.cwnd / 2.0, self.MIN_CWND)
            self._velocity = 1.0
        self.cwnd = max(self.cwnd, self.MIN_CWND)
        return Decision(cwnd_pkts=self.cwnd)
