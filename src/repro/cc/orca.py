"""Orca: classic-meets-modern coupled TCP (SIGCOMM'20).

Orca runs CUBIC underneath and lets an RL agent periodically scale the
kernel's window: ``cwnd = cubic_cwnd * 2^a`` with ``a`` in [-1, 1].  The
agent optimises a *local* throughput/latency/loss objective — fairness is
inherited (only) from the underlying AIMD, and the paper (§2, §5.1.1)
observes that the RL half can suppress the very loss events AIMD's fairness
proof relies on, yielding smoother-than-CUBIC but imperfect, occasionally
unstable convergence.

The RL multiplier here is by default a calibrated behavioural model — a
damped delay-based trim on top of cubic (the "act conservatively, smooth
the oscillation" behaviour the paper describes), clamped well inside the
published 2^[-1, 1] coupling range; ``policy="pretrained"`` loads a
trained bundle (``repro/models/orca_pretrained.npz``) if one is shipped.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import HISTORY_LENGTH, MTP_S
from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register
from .cubic import Cubic


@register("orca")
class Orca(CongestionController):
    """CUBIC coupled with an RL window multiplier."""

    TARGET_LATENCY_RATIO = 1.6   # fallback: trim cubic toward this RTT ratio
    TRIM_GAIN = 0.6
    SMOOTH = 0.3                 # damping on the multiplier adjustments
    EXPONENT_CLAMP = 0.35        # fallback stays close to cubic so AIMD
                                 # fairness survives (the trained agent may
                                 # use the full published 2^[-1, 1] range)

    def __init__(self, mtp_s: float = MTP_S, policy=None,
                 history: int = HISTORY_LENGTH):
        super().__init__(mtp_s)
        from ..core.policy import resolve_policy
        from ..core.state import LocalStateBlock

        # "pretrained" walks the default fallback chain (no Orca bundle is
        # shipped, so it usually resolves to None = the behavioural trim);
        # an explicit path raises typed ModelErrors on damage.
        self.policy = policy = resolve_policy(policy, "orca",
                                              use_default=False)
        self.state_block = LocalStateBlock(
            history=policy.history if policy is not None else history)
        self._cubic = Cubic(mtp_s=mtp_s)
        self.reset()

    @property
    def backend(self) -> str:
        return "model" if self.policy is not None else "behavioural"

    def reset(self) -> None:
        self.state_block.reset()
        self._cubic.reset()
        self.cwnd = self.initial_cwnd
        self._rtt_min = float("inf")
        self._exponent = 0.0

    def _fallback_exponent(self, stats: MtpStats) -> float:
        """Exponent ``a``: a delay-based trim on top of cubic.

        The signal (shared queueing delay) is symmetric across competing
        flows, so cubic's AIMD fairness survives the coupling; the damping
        is what smooths the sawtooth — and what occasionally suppresses the
        loss events AIMD fairness relies on, the instability the paper
        attributes to Orca.
        """
        self._rtt_min = min(self._rtt_min, stats.min_rtt_s)
        if not np.isfinite(self._rtt_min) or self._rtt_min <= 0:
            return 0.0
        ratio = stats.avg_rtt_s / self._rtt_min
        desired = self.TRIM_GAIN * (self.TARGET_LATENCY_RATIO - ratio)
        desired = float(np.clip(desired, -self.EXPONENT_CLAMP,
                                self.EXPONENT_CLAMP))
        self._exponent += self.SMOOTH * (desired - self._exponent)
        return self._exponent

    def on_interval(self, stats: MtpStats) -> Decision:
        state = self.state_block.update(stats)
        cubic_decision = self._cubic.on_interval(stats)
        cubic_cwnd = cubic_decision.cwnd_pkts
        if self.policy is not None:
            a = self.policy.act(state)
        else:
            a = self._fallback_exponent(stats)
        self.cwnd = max(cubic_cwnd * (2.0 ** a), 2.0)
        # The kernel cubic keeps evolving on its own trajectory, but cannot
        # run unboundedly ahead of what is actually enforced on the wire.
        self._cubic.cwnd = min(self._cubic.cwnd, self.cwnd * 2.0)
        return Decision(cwnd_pkts=self.cwnd)
