"""BBR v1: model-based congestion control (simplified state machine).

Implements the published BBR v1 behaviour at monitoring-interval
granularity: windowed max-filter bottleneck-bandwidth estimation, windowed
min-filter RTprop estimation, the STARTUP / DRAIN / PROBE_BW / PROBE_RTT
state machine with the standard pacing-gain cycle, and a cwnd of
``cwnd_gain * BDP``.
"""

from __future__ import annotations

from collections import deque

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register

_STARTUP = "startup"
_DRAIN = "drain"
_PROBE_BW = "probe_bw"
_PROBE_RTT = "probe_rtt"


@register("bbr")
class Bbr(CongestionController):
    """Simplified BBR v1."""

    HIGH_GAIN = 2.885
    DRAIN_GAIN = 1.0 / 2.885
    CWND_GAIN = 2.0
    PACING_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    BW_WINDOW = 10            # intervals for the max filter
    RTPROP_WINDOW_S = 10.0    # seconds for the min filter
    PROBE_RTT_DURATION_S = 0.2
    PROBE_RTT_CWND = 4.0
    STARTUP_GROWTH = 1.25     # plateau detector threshold
    MIN_CWND = 4.0

    def __init__(self, mtp_s: float = 0.030):
        super().__init__(mtp_s)
        self.reset()

    def reset(self) -> None:
        self._state = _STARTUP
        self._bw_samples: deque[float] = deque(maxlen=self.BW_WINDOW)
        self._rtprop = float("inf")
        self._rtprop_stamp = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done = 0.0
        self.cwnd = self.initial_cwnd

    # ------------------------------------------------------------------

    def _btlbw(self) -> float:
        return max(self._bw_samples) if self._bw_samples else 0.0

    def _bdp_pkts(self) -> float:
        bw = self._btlbw()
        if bw <= 0 or self._rtprop == float("inf"):
            return self.initial_cwnd
        return bw * self._rtprop

    def _update_model(self, stats: MtpStats) -> None:
        if stats.throughput_pps > 0:
            self._bw_samples.append(stats.throughput_pps)
        # The stamp only refreshes on strictly lower samples; expiry is
        # what sends PROBE_BW into PROBE_RTT (which then re-samples).
        if stats.min_rtt_s < self._rtprop:
            self._rtprop = stats.min_rtt_s
            self._rtprop_stamp = stats.time_s

    def _check_full_pipe(self) -> None:
        bw = self._btlbw()
        if bw >= self._full_bw * self.STARTUP_GROWTH:
            self._full_bw = bw
            self._full_bw_rounds = 0
        else:
            self._full_bw_rounds += 1

    # ------------------------------------------------------------------

    def on_interval(self, stats: MtpStats) -> Decision:
        now = stats.time_s
        self._update_model(stats)
        bw = self._btlbw()
        bdp = self._bdp_pkts()

        if self._state == _STARTUP:
            self._check_full_pipe()
            pacing_gain = self.HIGH_GAIN
            if self._full_bw_rounds >= 3:
                self._state = _DRAIN
        if self._state == _DRAIN:
            pacing_gain = self.DRAIN_GAIN
            inflight = stats.pkts_in_flight
            if inflight <= bdp:
                self._state = _PROBE_BW
                self._cycle_index = 0
                self._cycle_stamp = now
        if self._state == _PROBE_BW:
            cycle_len = max(self._rtprop, self.mtp_s) \
                if self._rtprop != float("inf") else self.mtp_s
            if now - self._cycle_stamp > cycle_len:
                self._cycle_index = (self._cycle_index + 1) % len(self.PACING_GAINS)
                self._cycle_stamp = now
            pacing_gain = self.PACING_GAINS[self._cycle_index]
            # Periodically re-probe RTprop by draining the queue.
            if now - self._rtprop_stamp > self.RTPROP_WINDOW_S:
                self._state = _PROBE_RTT
                self._probe_rtt_done = now + self.PROBE_RTT_DURATION_S
        if self._state == _PROBE_RTT:
            pacing_gain = 1.0
            if now >= self._probe_rtt_done:
                # Queue is drained: adopt the fresh RTT sample.
                self._rtprop = stats.min_rtt_s
                self._rtprop_stamp = now
                self._state = _PROBE_BW
                self._cycle_stamp = now
            else:
                self.cwnd = self.PROBE_RTT_CWND
                return Decision(cwnd_pkts=self.cwnd, pacing_pps=bw if bw > 0 else None)

        if self._state == _STARTUP:
            self.cwnd = max(self.cwnd * 1.8, self.HIGH_GAIN * bdp, self.MIN_CWND)
            pacing = self.HIGH_GAIN * bw if bw > 0 else None
        else:
            self.cwnd = max(self.CWND_GAIN * bdp, self.MIN_CWND)
            pacing = pacing_gain * bw if bw > 0 else None
        return Decision(cwnd_pkts=self.cwnd, pacing_pps=pacing)
