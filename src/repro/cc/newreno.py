"""TCP NewReno (RFC 6582): Reno with NewReno-style fast recovery.

Compared to the plain Reno implementation, NewReno stays in a recovery
*episode* until the window that was outstanding at the loss has been fully
acknowledged (tracked here by delivered-packet accounting rather than
sequence numbers, which the fluid substrate does not model), avoiding the
multiple back-to-back halvings Reno suffers when a burst of losses spans
several monitoring intervals.
"""

from __future__ import annotations

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@register("newreno")
class NewReno(CongestionController):
    """Loss-based AIMD with single-halving recovery episodes."""

    MIN_CWND = 2.0

    def __init__(self, mtp_s: float = 0.030):
        super().__init__(mtp_s)
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self.ssthresh = float("inf")
        self._recovery_pkts_left = 0.0

    def on_interval(self, stats: MtpStats) -> Decision:
        in_recovery = self._recovery_pkts_left > 0.0
        if in_recovery:
            # Partial progress: the episode ends once the pre-loss window's
            # worth of data has been delivered.
            self._recovery_pkts_left -= stats.delivered_pkts
            if stats.lost_pkts > 0:
                # Further losses inside one episode do not halve again;
                # they merely extend it (the NewReno partial-ACK rule).
                self._recovery_pkts_left = max(self._recovery_pkts_left,
                                               self.cwnd / 2.0)
        elif stats.lost_pkts > 0:
            self.ssthresh = max(self.cwnd / 2.0, self.MIN_CWND)
            self.cwnd = self.ssthresh
            self._recovery_pkts_left = self.cwnd
        else:
            acked = stats.delivered_pkts
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + acked, self.ssthresh)
            else:
                self.cwnd += acked / max(self.cwnd, 1.0)
        self.cwnd = max(self.cwnd, self.MIN_CWND)
        return Decision(cwnd_pkts=self.cwnd)
