"""TCP Vegas: delay-based congestion avoidance."""

from __future__ import annotations

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@register("vegas")
class Vegas(CongestionController):
    """Vegas keeps between ``ALPHA`` and ``BETA`` packets queued.

    Per RTT it estimates the backlog ``diff = cwnd * (1 - baseRTT/RTT)`` and
    nudges the window by one packet to keep ``diff`` inside [ALPHA, BETA].
    Operates on a per-RTT cadence like the original algorithm.
    """

    ALPHA = 2.0
    BETA = 4.0
    GAMMA = 1.0          # slow-start exit threshold (packets queued)
    MIN_CWND = 2.0

    def __init__(self, mtp_s: float = 0.030):
        super().__init__(mtp_s)
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self._base_rtt = float("inf")
        self._slow_start = True

    def interval_s(self, srtt_s: float) -> float:
        return max(srtt_s, self.mtp_s)

    def on_interval(self, stats: MtpStats) -> Decision:
        self._base_rtt = min(self._base_rtt, stats.min_rtt_s)
        rtt = max(stats.avg_rtt_s, 1e-6)
        diff = self.cwnd * (1.0 - self._base_rtt / rtt)

        if stats.lost_pkts > 0:
            self.cwnd = max(self.cwnd * 0.75, self.MIN_CWND)
            self._slow_start = False
        elif self._slow_start:
            if diff > self.GAMMA:
                self._slow_start = False
            else:
                # Vegas slow start doubles every other RTT; per-RTT growth
                # of 1.5x has similar average aggressiveness.  Growth is
                # ACK-clocked: never more than one packet per delivery.
                self.cwnd = min(self.cwnd * 1.5,
                                self.cwnd + stats.delivered_pkts)
        elif diff < self.ALPHA:
            self.cwnd += 1.0
        elif diff > self.BETA:
            self.cwnd -= 1.0
        self.cwnd = max(self.cwnd, self.MIN_CWND)
        return Decision(cwnd_pkts=self.cwnd)
