"""Compound TCP (Tan et al., INFOCOM'06): hybrid loss + delay control.

Compound maintains two windows: the standard loss-based AIMD window
``cwnd`` and a delay-based window ``dwnd`` grown by a binomial rule while
the estimated queue backlog stays below a threshold ``GAMMA`` and shrunk
rapidly once the path shows queueing.  The send window is their sum, which
gives Compound fast ramping on underutilised long-fat pipes while
degrading gracefully to Reno behaviour under congestion.
"""

from __future__ import annotations

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@register("compound")
class Compound(CongestionController):
    """Compound TCP: send window = AIMD cwnd + delay window dwnd."""

    ALPHA = 0.125    # dwnd growth aggressiveness
    BETA = 0.5       # dwnd multiplicative decrease
    K = 0.75         # binomial exponent
    GAMMA = 30.0     # backlog threshold in packets
    MIN_CWND = 2.0

    def __init__(self, mtp_s: float = 0.030):
        super().__init__(mtp_s)
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self.dwnd = 0.0
        self.ssthresh = float("inf")
        self._base_rtt = float("inf")
        self._recovery_until = -1.0

    @property
    def send_window(self) -> float:
        return max(self.cwnd + self.dwnd, self.MIN_CWND)

    def on_interval(self, stats: MtpStats) -> Decision:
        now = stats.time_s
        self._base_rtt = min(self._base_rtt, stats.min_rtt_s)
        rtt = max(stats.avg_rtt_s, 1e-6)
        window = self.send_window
        backlog = window * (1.0 - self._base_rtt / rtt)

        if stats.lost_pkts > 0 and now >= self._recovery_until:
            self.ssthresh = max(window / 2.0, self.MIN_CWND)
            self.cwnd = max(self.cwnd / 2.0, self.MIN_CWND)
            self.dwnd *= 1.0 - self.BETA
            self._recovery_until = now + stats.srtt_s
        else:
            acked = stats.delivered_pkts
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + acked, self.ssthresh)
            else:
                self.cwnd += acked / max(window, 1.0)
            if backlog < self.GAMMA:
                # Binomial growth while the path looks uncongested.
                self.dwnd += max(self.ALPHA * window ** self.K - 1.0, 0.0) \
                    * min(acked / max(window, 1.0), 1.0)
            else:
                # Queue detected: release the delay window's contribution.
                self.dwnd = max(self.dwnd - (backlog - self.GAMMA), 0.0)
        self.dwnd = max(self.dwnd, 0.0)
        return Decision(cwnd_pkts=self.send_window)
