"""Congestion-control schemes.

Importing this package registers every scheme with the registry in
:mod:`repro.cc.base`; scenarios then refer to schemes by name.
"""

from .base import CongestionController, Decision, available, create, register
from .aurora import Aurora
from .bbr import Bbr
from .copa import Copa
from .compound import Compound
from .crosstraffic import ConstantRate
from .cubic import Cubic
from .newreno import NewReno
from .orca import Orca
from .remy import Remy, Whisker
from .reno import Reno
from .vegas import Vegas
from .vivace import Vivace

# The Astraea controllers live in repro.core and are registered lazily by
# repro.cc.base.create()/available() on first use, which avoids a circular
# import between the two packages.

__all__ = [
    "Aurora",
    "Orca",
    "ConstantRate",
    "NewReno",
    "Compound",
    "CongestionController",
    "Decision",
    "available",
    "create",
    "register",
    "Reno",
    "Cubic",
    "Vegas",
    "Bbr",
    "Copa",
    "Vivace",
    "Remy",
    "Whisker",
]
