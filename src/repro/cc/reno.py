"""TCP Reno: slow start plus AIMD congestion avoidance."""

from __future__ import annotations

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@register("reno")
class Reno(CongestionController):
    """Classic loss-based AIMD.

    Per interval the window grows by one packet per ``cwnd`` acked packets
    in congestion avoidance (doubling per RTT in slow start) and halves on
    a loss event, with a one-RTT recovery cooldown so a single congestion
    episode is not punished repeatedly.
    """

    MIN_CWND = 2.0

    def __init__(self, mtp_s: float = 0.030):
        super().__init__(mtp_s)
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self.ssthresh = float("inf")
        self._recovery_until = -1.0

    def on_interval(self, stats: MtpStats) -> Decision:
        now = stats.time_s
        if stats.lost_pkts > 0 and now >= self._recovery_until:
            self.ssthresh = max(self.cwnd / 2.0, self.MIN_CWND)
            self.cwnd = self.ssthresh
            self._recovery_until = now + stats.srtt_s
        else:
            acked = stats.delivered_pkts
            if self.cwnd < self.ssthresh:
                # Slow start: one packet per ACK.
                self.cwnd = min(self.cwnd + acked, self.ssthresh)
            else:
                # Congestion avoidance: one packet per window per RTT.
                self.cwnd += acked / max(self.cwnd, 1.0)
        return Decision(cwnd_pkts=self.cwnd)
