"""PCC Vivace: online-learning (gradient-ascent) rate control (NSDI'18).

Vivace maximises the latency-aware utility of Eq. 2 in the paper:

    u(x) = x^0.9 - 900 * x * dRTT/dT - 11.25 * x * L

with ``x`` the sending rate in Mbps, ``dRTT/dT`` the RTT gradient over the
monitor interval and ``L`` the loss rate.  Control proceeds in monitor
intervals (MIs) of about one RTT: a pair of probe MIs at rates
``r (1 ± eps)`` estimates the utility gradient, then the rate moves in the
gradient direction with step ``theta0 * m * gradient`` where the confidence
amplifier ``m`` grows while consecutive steps agree in sign.

``theta0`` is the *initial conversion factor* the paper tunes in §2: the
default reproduces Vivace's slow-but-stable convergence (Fig. 1b); an
enlarged value converges fast in long-RTT networks but oscillates in
short-RTT ones (Fig. 2).
"""

from __future__ import annotations

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register
from ..units import mbps_to_pps, pps_to_mbps

_PROBE_UP = 0
_PROBE_DOWN = 1
_MOVE = 2


@register("vivace")
class Vivace(CongestionController):
    """PCC Vivace with the Eq. 2 utility and confidence amplification."""

    EPS = 0.05               # probing perturbation
    LATENCY_COEFF = 900.0
    LOSS_COEFF = 11.25
    THROUGHPUT_EXPONENT = 0.9
    MIN_RATE_MBPS = 0.5
    MAX_STEP_FRACTION = 0.25  # bound a single step to 25% of the rate
    AMPLIFIER_MAX = 6.0

    def __init__(self, mtp_s: float = 0.030, theta0: float = 1.0,
                 mi_jitter: float = 0.15, seed: int = 0):
        super().__init__(mtp_s)
        if theta0 <= 0:
            raise ValueError("theta0 must be positive")
        if not 0 <= mi_jitter < 1:
            raise ValueError("mi jitter must lie in [0, 1)")
        self.theta0 = theta0
        self.mi_jitter = mi_jitter
        self._rng_seed = seed
        self.reset()

    def reset(self) -> None:
        import numpy as np

        self.rate_mbps = 2.0
        self._phase = _PROBE_UP
        self._probe_utils: list[float] = []
        self._prev_rtt: float | None = None
        self._amplifier = 1.0
        self._last_direction = 0
        self._rng = np.random.default_rng(self._rng_seed)

    def interval_s(self, srtt_s: float) -> float:
        # Randomised MI lengths decorrelate concurrent flows' probes (the
        # PCC papers randomise MI ordering for the same reason): without
        # jitter, competitors probing in lock-step each measure the
        # *other's* perturbation and the gradient estimates are biased.
        base = max(srtt_s, self.mtp_s)
        if self.mi_jitter == 0:
            return base
        return base * float(self._rng.uniform(1.0 - self.mi_jitter,
                                              1.0 + self.mi_jitter))

    # ------------------------------------------------------------------

    def utility(self, rate_mbps: float, rtt_gradient: float,
                loss_rate: float) -> float:
        """Eq. 2 of the paper (sending-rate-based utility)."""
        if rate_mbps <= 0:
            return 0.0
        return (rate_mbps ** self.THROUGHPUT_EXPONENT
                - self.LATENCY_COEFF * rate_mbps * max(rtt_gradient, 0.0)
                - self.LOSS_COEFF * rate_mbps * loss_rate)

    def _measured_utility(self, stats: MtpStats) -> float:
        if self._prev_rtt is None:
            gradient = 0.0
        else:
            gradient = (stats.avg_rtt_s - self._prev_rtt) / max(stats.duration_s, 1e-6)
        self._prev_rtt = stats.avg_rtt_s
        # The utility uses the *sending* rate of the MI (what Vivace chose).
        sending_mbps = pps_to_mbps(stats.sent_pkts / max(stats.duration_s, 1e-6))
        return self.utility(sending_mbps, gradient, stats.loss_rate)

    def _decision(self, rate_mbps: float, srtt: float) -> Decision:
        pps = mbps_to_pps(rate_mbps)
        return Decision(cwnd_pkts=max(2.0 * pps * srtt, 4.0), pacing_pps=pps)

    # ------------------------------------------------------------------

    def on_interval(self, stats: MtpStats) -> Decision:
        util = self._measured_utility(stats)
        srtt = stats.srtt_s

        if self._phase == _PROBE_UP:
            # ``util`` measured the previous (decision) MI; start probing.
            self._probe_utils = []
            self._phase = _PROBE_DOWN
            return self._decision(self.rate_mbps * (1.0 + self.EPS), srtt)

        if self._phase == _PROBE_DOWN:
            self._probe_utils.append(util)   # utility of the +eps MI
            self._phase = _MOVE
            return self._decision(self.rate_mbps * (1.0 - self.EPS), srtt)

        # _MOVE: ``util`` measured the -eps MI; take the gradient step.
        self._probe_utils.append(util)
        u_up, u_down = self._probe_utils
        denom = 2.0 * self.EPS * max(self.rate_mbps, self.MIN_RATE_MBPS)
        gradient = (u_up - u_down) / denom
        direction = 1 if gradient > 0 else -1
        if direction == self._last_direction:
            self._amplifier = min(self._amplifier + 0.5, self.AMPLIFIER_MAX)
        else:
            self._amplifier = 1.0
        self._last_direction = direction

        step = self.theta0 * self._amplifier * gradient
        max_step = self.MAX_STEP_FRACTION * self.rate_mbps
        step = max(min(step, max_step), -max_step)
        self.rate_mbps = max(self.rate_mbps + step, self.MIN_RATE_MBPS)
        self._phase = _PROBE_UP
        return self._decision(self.rate_mbps, srtt)
