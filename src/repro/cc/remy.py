"""Remy-style computer-generated congestion control (behavioural model).

Remy (SIGCOMM'13) offline-optimises a *rule table* mapping observed signal
triples (EWMAs of ACK inter-arrival and send inter-arrival, and the ratio of
current to minimum RTT) to window actions (a multiplier ``m``, an increment
``b`` and a pacing interval).  The genuine optimised tables are not
available offline, so this module ships a compact hand-calibrated table
with the same structure and interpreter.  It reproduces Remy's
characteristic behaviour on paths inside its design range — conservative,
delay-sensitive window control — and its mediocre utilisation outside it
(the paper's Fig. 15 observation).  Substitution documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.stats import MtpStats
from .base import CongestionController, Decision, register


@dataclass(frozen=True)
class Whisker:
    """One rule: applies when the RTT ratio falls inside [lo, hi)."""

    rtt_ratio_lo: float
    rtt_ratio_hi: float
    window_multiple: float
    window_increment: float


DEFAULT_TABLE = (
    Whisker(0.0, 1.05, 1.00, 2.0),    # empty queue: additive probe
    Whisker(1.05, 1.25, 1.00, 1.0),   # small standing queue: gentle probe
    Whisker(1.25, 1.60, 1.00, 0.0),   # moderate queue: hold
    Whisker(1.60, 2.50, 0.98, 0.0),   # building queue: back off slowly
    Whisker(2.50, float("inf"), 0.85, 0.0),  # deep queue: multiplicative cut
)


@register("remy")
class Remy(CongestionController):
    """Rule-table (whisker) interpreter with a hand-calibrated table."""

    MIN_CWND = 2.0

    def __init__(self, mtp_s: float = 0.030,
                 table: tuple[Whisker, ...] = DEFAULT_TABLE):
        super().__init__(mtp_s)
        if not table:
            raise ValueError("rule table must not be empty")
        self._table = table
        self.reset()

    def reset(self) -> None:
        self.cwnd = self.initial_cwnd
        self._rtt_min = float("inf")

    def interval_s(self, srtt_s: float) -> float:
        return max(srtt_s / 2.0, self.mtp_s)

    def _lookup(self, rtt_ratio: float) -> Whisker:
        for whisker in self._table:
            if whisker.rtt_ratio_lo <= rtt_ratio < whisker.rtt_ratio_hi:
                return whisker
        return self._table[-1]

    def on_interval(self, stats: MtpStats) -> Decision:
        self._rtt_min = min(self._rtt_min, stats.min_rtt_s)
        ratio = stats.avg_rtt_s / max(self._rtt_min, 1e-6)
        whisker = self._lookup(ratio)
        self.cwnd = self.cwnd * whisker.window_multiple + whisker.window_increment
        if stats.lost_pkts > 0:
            self.cwnd = max(self.cwnd * 0.7, self.MIN_CWND)
        self.cwnd = max(self.cwnd, self.MIN_CWND)
        return Decision(cwnd_pkts=self.cwnd)
