"""Reinforcement-learning substrate: NumPy networks, Adam, replay, TD3."""

from .nn import MLP, Linear
from .noise import GaussianNoise, OrnsteinUhlenbeck
from .optim import SGD, Adam
from .replay import ReplayBuffer
from .td3 import TD3Learner

__all__ = [
    "MLP",
    "Linear",
    "Adam",
    "SGD",
    "ReplayBuffer",
    "GaussianNoise",
    "OrnsteinUhlenbeck",
    "TD3Learner",
]
