"""Experience replay memory (Appendix A, first optimisation).

Stores transition tuples ``(g, s, a, r, g', s', done)`` — the global state
feeds only the critic, the local state feeds the actor — in preallocated
circular NumPy buffers and samples uniform mini-batches.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class ReplayBuffer:
    """Uniform circular replay buffer over fixed-width transitions."""

    def __init__(self, capacity: int, local_dim: int, global_dim: int,
                 action_dim: int = 1, seed: int = 0):
        if capacity <= 0:
            raise ModelError("capacity must be positive")
        if local_dim <= 0 or global_dim <= 0 or action_dim <= 0:
            raise ModelError("dimensions must be positive")
        self.capacity = capacity
        self._local = np.zeros((capacity, local_dim))
        self._global = np.zeros((capacity, global_dim))
        self._action = np.zeros((capacity, action_dim))
        self._reward = np.zeros(capacity)
        self._next_local = np.zeros((capacity, local_dim))
        self._next_global = np.zeros((capacity, global_dim))
        self._done = np.zeros(capacity)
        self._size = 0
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self._size

    def add(self, local, global_state, action, reward: float,
            next_local, next_global, done: bool) -> None:
        """Append one transition, overwriting the oldest when full."""
        i = self._cursor
        self._local[i] = local
        self._global[i] = global_state
        self._action[i] = action
        self._reward[i] = reward
        self._next_local[i] = next_local
        self._next_global[i] = next_global
        self._done[i] = float(done)
        self._cursor = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> dict[str, np.ndarray]:
        """Uniformly sample a batch of transitions (with replacement)."""
        if self._size == 0:
            raise ModelError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return {
            "local": self._local[idx],
            "global": self._global[idx],
            "action": self._action[idx],
            "reward": self._reward[idx],
            "next_local": self._next_local[idx],
            "next_global": self._next_global[idx],
            "done": self._done[idx],
        }
