"""Experience replay memory (Appendix A, first optimisation).

Stores transition tuples ``(g, s, a, r, g', s', done)`` — the global state
feeds only the critic, the local state feeds the actor — in preallocated
circular NumPy buffers and samples uniform mini-batches.  ``add_batch``
writes whole transition blocks with the same two-slice wraparound idiom
the monitor ring buffers use (:mod:`repro.netsim.stats`), which is what
the batched rollout path flushes through.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class ReplayBuffer:
    """Uniform circular replay buffer over fixed-width transitions."""

    def __init__(self, capacity: int, local_dim: int, global_dim: int,
                 action_dim: int = 1, seed: int = 0):
        if capacity <= 0:
            raise ModelError("capacity must be positive")
        if local_dim <= 0 or global_dim <= 0 or action_dim <= 0:
            raise ModelError("dimensions must be positive")
        self.capacity = capacity
        self.local_dim = local_dim
        self.global_dim = global_dim
        self.action_dim = action_dim
        self._local = np.zeros((capacity, local_dim))
        self._global = np.zeros((capacity, global_dim))
        self._action = np.zeros((capacity, action_dim))
        self._reward = np.zeros(capacity)
        self._next_local = np.zeros((capacity, local_dim))
        self._next_global = np.zeros((capacity, global_dim))
        self._done = np.zeros(capacity)
        self._size = 0
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self._size

    def _check_width(self, name: str, value, dim: int,
                     batch: int | None = None) -> np.ndarray:
        """Validate one field against its buffer width.

        A wrong-width state would otherwise broadcast (width 1) or
        truncate silently into the preallocated row; raise instead,
        naming the offending field.
        """
        arr = np.asarray(value, dtype=float)
        if batch is None:
            flat = arr.reshape(-1)
            if flat.shape != (dim,):
                raise ModelError(
                    f"replay field {name!r} has shape {arr.shape}, "
                    f"expected ({dim},)")
            return flat
        if arr.ndim == 1 and dim == 1:
            arr = arr[:, None]
        if arr.shape != (batch, dim):
            raise ModelError(
                f"replay field {name!r} has shape "
                f"{np.asarray(value).shape}, expected ({batch}, {dim})")
        return arr

    def add(self, local, global_state, action, reward: float,
            next_local, next_global, done: bool) -> None:
        """Append one transition, overwriting the oldest when full."""
        i = self._cursor
        self._local[i] = self._check_width("local", local, self.local_dim)
        self._global[i] = self._check_width("global", global_state,
                                            self.global_dim)
        self._action[i] = self._check_width("action", action,
                                            self.action_dim)
        self._reward[i] = reward
        self._next_local[i] = self._check_width("next_local", next_local,
                                                self.local_dim)
        self._next_global[i] = self._check_width(
            "next_global", next_global, self.global_dim)
        self._done[i] = float(done)
        self._cursor = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def add_batch(self, local, global_state, action, reward,
                  next_local, next_global, done) -> None:
        """Append a block of ``n`` transitions in one write.

        Equivalent to ``n`` sequential :meth:`add` calls — identical
        final contents, cursor and size — but the rows land via at most
        two slice assignments (the ring-buffer wraparound idiom).  When
        ``n >= capacity`` only the last ``capacity`` rows survive, just
        as they would have serially.
        """
        reward = np.asarray(reward, dtype=float).reshape(-1)
        n = reward.shape[0]
        if n == 0:
            return
        local = self._check_width("local", local, self.local_dim, n)
        global_state = self._check_width("global", global_state,
                                         self.global_dim, n)
        action = self._check_width("action", action, self.action_dim, n)
        next_local = self._check_width("next_local", next_local,
                                       self.local_dim, n)
        next_global = self._check_width("next_global", next_global,
                                        self.global_dim, n)
        done = np.asarray(done, dtype=float).reshape(-1)
        if done.shape[0] != n:
            raise ModelError(
                f"replay field 'done' has length {done.shape[0]}, "
                f"expected {n}")
        cap = self.capacity
        new_cursor = (self._cursor + n) % cap
        new_size = min(self._size + n, cap)
        # When n >= cap only the newest `cap` rows survive; the first of
        # them would have landed at (cursor + n - cap) % cap == new_cursor,
        # so the write is the same two-slice pattern from that start.
        skip = max(n - cap, 0)
        start = self._cursor if skip == 0 else new_cursor
        count = n - skip
        first = min(count, cap - start)
        fields = ((self._local, local), (self._global, global_state),
                  (self._action, action), (self._reward, reward),
                  (self._next_local, next_local),
                  (self._next_global, next_global), (self._done, done))
        for buf, src in fields:
            buf[start:start + first] = src[skip:skip + first]
            if first < count:
                buf[:count - first] = src[skip + first:]
        self._cursor = new_cursor
        self._size = new_size

    def sample(self, batch_size: int) -> dict[str, np.ndarray]:
        """Uniformly sample a batch of transitions (with replacement)."""
        if batch_size <= 0:
            raise ModelError(
                f"batch size must be positive, got {batch_size}")
        if self._size == 0:
            raise ModelError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return {
            "local": self._local[idx],
            "global": self._global[idx],
            "action": self._action[idx],
            "reward": self._reward[idx],
            "next_local": self._next_local[idx],
            "next_global": self._next_global[idx],
            "done": self._done[idx],
        }
