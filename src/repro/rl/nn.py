"""Minimal neural-network layer library (NumPy, explicit backprop).

No deep-learning framework is available offline, so the actor and critic
networks of §3.4 are implemented directly: fully-connected layers with He
or Xavier initialisation, ReLU hidden activations and an optional ``tanh``
output, with hand-written forward/backward passes.  The networks are the
3-layer MLPs the paper specifies (256/128/64 hidden units).

Gradient correctness is checked against numerical differentiation in
``tests/rl/test_nn.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class Linear:
    """Affine layer ``y = x W + b`` with cached input for backprop."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 scale: str = "he"):
        if in_dim <= 0 or out_dim <= 0:
            raise ModelError("layer dimensions must be positive")
        if scale == "he":
            std = np.sqrt(2.0 / in_dim)
        elif scale == "xavier":
            std = np.sqrt(1.0 / in_dim)
        elif scale == "small":
            std = 1e-3
        else:
            raise ModelError(f"unknown init scale {scale!r}")
        self.W = rng.normal(0.0, std, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        self.dW += self._x.T @ grad_out
        self.db += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def zero_grad(self) -> None:
        self.dW[:] = 0.0
        self.db[:] = 0.0


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class MLP:
    """Multi-layer perceptron with ReLU hidden layers.

    ``output`` selects the output nonlinearity: ``"tanh"`` for the actor
    (actions in (-1, 1)), ``"linear"`` for critics.
    """

    def __init__(self, in_dim: int, hidden: tuple[int, ...], out_dim: int,
                 output: str = "linear", seed: int = 0):
        if output not in ("linear", "tanh"):
            raise ModelError(f"unknown output activation {output!r}")
        rng = np.random.default_rng(seed)
        dims = [in_dim, *hidden, out_dim]
        self.layers = [
            Linear(dims[i], dims[i + 1], rng,
                   scale="he" if i < len(dims) - 2 else "small")
            for i in range(len(dims) - 1)
        ]
        self.output = output
        self.in_dim = in_dim
        self.out_dim = out_dim
        self._hidden_pre: list[np.ndarray] = []
        self._out: np.ndarray | None = None

    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches activations for a subsequent backward."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_dim:
            raise ModelError(
                f"expected input dim {self.in_dim}, got {x.shape[1]}")
        self._hidden_pre = []
        h = x
        for layer in self.layers[:-1]:
            pre = layer.forward(h)
            self._hidden_pre.append(pre)
            h = _relu(pre)
        out = self.layers[-1].forward(h)
        if self.output == "tanh":
            out = np.tanh(out)
        self._out = out
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: no activation caching, no grad support.

        Numerically identical to :meth:`forward` but touches none of the
        backprop caches, so it is safe to interleave with a training
        forward/backward pair and is measurably cheaper on the hot serving
        and action-selection paths.  Accepts a single state vector or a
        batch; always returns a 2-D ``(batch, out_dim)`` array like
        :meth:`forward`.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ModelError(
                f"expected input dim {self.in_dim}, got {x.shape[-1]}")
        h = x
        for layer in self.layers[:-1]:
            h = np.maximum(h @ layer.W + layer.b, 0.0)
        out = h @ self.layers[-1].W + self.layers[-1].b
        if self.output == "tanh":
            out = np.tanh(out)
        return out

    def infer_rows(self, x: np.ndarray) -> np.ndarray:
        """Row-consistent inference: row ``i`` of a batched call is
        bitwise identical to inferring row ``i`` alone.

        BLAS ``@`` picks different kernels (blocking, FMA grouping) per
        matrix height, so :meth:`infer` on a stacked batch can differ
        from per-row calls in the last ulp — enough to diverge a chaotic
        rollout.  ``np.einsum`` without ``optimize`` reduces every output
        element in a fixed order regardless of batch size, which makes
        serial-vs-batched action selection bit-exact.  Slower than BLAS
        per call; use only where that equivalence is the contract (the
        training act path).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ModelError(
                f"expected input dim {self.in_dim}, got {x.shape[-1]}")
        h = x
        for layer in self.layers[:-1]:
            h = np.maximum(
                np.einsum("ij,jk->ik", h, layer.W) + layer.b, 0.0)
        out = np.einsum("ij,jk->ik", h, self.layers[-1].W) \
            + self.layers[-1].b
        if self.output == "tanh":
            out = np.tanh(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop ``dLoss/dOutput``; returns ``dLoss/dInput``.

        Parameter gradients accumulate into each layer's ``dW``/``db``.
        """
        if self._out is None:
            raise ModelError("backward called before forward")
        grad = np.atleast_2d(np.asarray(grad_out, dtype=float))
        if self.output == "tanh":
            grad = grad * (1.0 - self._out ** 2)
        grad = self.layers[-1].backward(grad)
        for layer, pre in zip(reversed(self.layers[:-1]),
                              reversed(self._hidden_pre)):
            grad = grad * (pre > 0)
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # ------------------------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        """Live references to every parameter array."""
        out = []
        for layer in self.layers:
            out.extend((layer.W, layer.b))
        return out

    def gradients(self) -> list[np.ndarray]:
        """Live references to every gradient array, aligned with parameters."""
        out = []
        for layer in self.layers:
            out.extend((layer.dW, layer.db))
        return out

    def get_state(self) -> list[np.ndarray]:
        """Copies of all parameters (for targets and serialisation)."""
        return [p.copy() for p in self.parameters()]

    def set_state(self, state: list[np.ndarray]) -> None:
        """Load parameters from :meth:`get_state` output."""
        params = self.parameters()
        if len(state) != len(params):
            raise ModelError(
                f"state has {len(state)} arrays, model needs {len(params)}")
        for p, s in zip(params, state):
            if p.shape != s.shape:
                raise ModelError(f"shape mismatch: {p.shape} vs {s.shape}")
            p[:] = s

    def polyak_update_from(self, source: "MLP", tau: float) -> None:
        """Soft target update: ``p_target <- tau p_source + (1-tau) p_target``."""
        for pt, ps in zip(self.parameters(), source.parameters()):
            pt *= 1.0 - tau
            pt += tau * ps

    def clone(self) -> "MLP":
        """An independent copy with identical parameters."""
        hidden = tuple(layer.W.shape[1] for layer in self.layers[:-1])
        copy = MLP(self.in_dim, hidden, self.out_dim, output=self.output)
        copy.set_state(self.get_state())
        return copy
