"""Centralised-critic deterministic actor-critic (the paper's Algorithm 1).

The learner follows §3.4: a deterministic actor maps a flow's *local*
state to an action; a centralised critic estimates Q(g, s, a) where ``g``
is the aggregated global state of Table 2 — the MADDPG-style use of extra
global information that reduces value-estimation variance.  On top of the
vanilla update the paper's Appendix A adopts the TD3 refinements, all
implemented here:

* target networks with Polyak averaging,
* clipped double-Q learning (two critics, min for the target),
* delayed policy updates,
* target policy smoothing regularisation.

Setting ``use_global=False`` ablates the centralised critic (local-only
observations), reproducing the paper's variance argument.
"""

from __future__ import annotations

import numpy as np

from ..config import TrainingConfig
from ..errors import ModelError
from .nn import MLP
from .optim import Adam


class TD3Learner:
    """TD3 with a centralised critic over (global, local, action)."""

    def __init__(self, local_dim: int, global_dim: int, action_dim: int = 1,
                 cfg: TrainingConfig | None = None, use_global: bool = True,
                 seed: int = 0):
        if local_dim <= 0 or global_dim <= 0 or action_dim <= 0:
            raise ModelError("dimensions must be positive")
        cfg = cfg or TrainingConfig()
        self.cfg = cfg
        self.local_dim = local_dim
        self.global_dim = global_dim
        self.action_dim = action_dim
        self.use_global = use_global
        critic_in = local_dim + action_dim + (global_dim if use_global else 0)

        self.actor = MLP(local_dim, cfg.hidden_layers, action_dim,
                         output="tanh", seed=seed)
        self.critic1 = MLP(critic_in, cfg.hidden_layers, 1, seed=seed + 1)
        self.critic2 = MLP(critic_in, cfg.hidden_layers, 1, seed=seed + 2)
        self.actor_target = self.actor.clone()
        self.critic1_target = self.critic1.clone()
        self.critic2_target = self.critic2.clone()

        self.actor_opt = Adam(self.actor.parameters(), self.actor.gradients(),
                              lr=cfg.actor_lr)
        self.critic_opt = Adam(
            self.critic1.parameters() + self.critic2.parameters(),
            self.critic1.gradients() + self.critic2.gradients(),
            lr=cfg.critic_lr)
        self._rng = np.random.default_rng(seed + 3)
        self._updates = 0

    # ------------------------------------------------------------------

    def act(self, local_state: np.ndarray, noise_std: float = 0.0) -> np.ndarray:
        """Deterministic action for one or more local states, optionally
        perturbed by Gaussian exploration noise and clipped to (-1, 1).

        Uses the row-consistent forward kernel
        (:meth:`~repro.rl.nn.MLP.infer_rows`), so acting on a stacked
        batch of states is bitwise identical to acting on each state
        alone — the contract the serial-vs-batched rollout equivalence
        rests on.  The exploration noise stream (``self._rng``) is
        likewise batch-shape-invariant: drawing ``(k, 1)`` normals
        consumes the stream exactly as ``k`` sequential ``(1, 1)`` draws.
        """
        action = self.actor.infer_rows(local_state)
        if noise_std > 0:
            action = action + self._rng.normal(0.0, noise_std, size=action.shape)
        return np.clip(action, -0.999, 0.999)

    def _critic_input(self, g: np.ndarray, s: np.ndarray,
                      a: np.ndarray) -> np.ndarray:
        if self.use_global:
            return np.concatenate([g, s, a], axis=1)
        return np.concatenate([s, a], axis=1)

    # ------------------------------------------------------------------

    def update(self, batch: dict[str, np.ndarray]) -> dict[str, float]:
        """One gradient step on the critics, with a delayed actor update.

        ``batch`` comes from :class:`repro.rl.replay.ReplayBuffer.sample`.
        Returns the scalar losses for monitoring.
        """
        cfg = self.cfg
        s, g = batch["local"], batch["global"]
        a, r = batch["action"], batch["reward"]
        s2, g2 = batch["next_local"], batch["next_global"]
        done = batch["done"]
        batch_size = s.shape[0]

        # Target action with smoothing noise (TD3).
        # Target networks never take a backward pass: inference-only
        # forwards skip the activation caches entirely.
        a2 = self.actor_target.infer(s2)
        noise = np.clip(
            self._rng.normal(0.0, cfg.target_noise, size=a2.shape),
            -cfg.target_noise_clip, cfg.target_noise_clip)
        a2 = np.clip(a2 + noise, -1.0, 1.0)

        q1_t = self.critic1_target.infer(self._critic_input(g2, s2, a2))
        q2_t = self.critic2_target.infer(self._critic_input(g2, s2, a2))
        target = r[:, None] + cfg.gamma * (1.0 - done[:, None]) * np.minimum(q1_t, q2_t)

        # Critic regression toward the TD target.
        x = self._critic_input(g, s, a)
        critic_loss = 0.0
        for critic in (self.critic1, self.critic2):
            q = critic.forward(x)
            err = q - target
            critic_loss += float(np.mean(err ** 2))
            critic.zero_grad()
            critic.backward(2.0 * err / batch_size)
        self.critic_opt.step()

        self._updates += 1
        actor_loss = float("nan")
        if self._updates % cfg.policy_delay == 0 \
                and self._updates > cfg.actor_warmup_updates:
            # Deterministic policy gradient: ascend Q1 through the action.
            a_pi = self.actor.forward(s)
            x_pi = self._critic_input(g, s, a_pi)
            q = self.critic1.forward(x_pi)
            actor_loss = -float(np.mean(q))
            self.critic1.zero_grad()
            grad_in = self.critic1.backward(-np.ones_like(q) / batch_size)
            grad_action = grad_in[:, -self.action_dim:]
            self.actor.zero_grad()
            self.actor.backward(grad_action)
            self.actor_opt.step()
            # The critic's parameter grads from this pass are side effects;
            # clear them so the next critic step starts clean.
            self.critic1.zero_grad()

            self.actor_target.polyak_update_from(self.actor, cfg.tau)
            self.critic1_target.polyak_update_from(self.critic1, cfg.tau)
            self.critic2_target.polyak_update_from(self.critic2, cfg.tau)

        return {"critic_loss": critic_loss / 2.0, "actor_loss": actor_loss}

    # ------------------------------------------------------------------

    def q_values(self, g: np.ndarray, s: np.ndarray,
                 a: np.ndarray) -> np.ndarray:
        """Q1 estimates for inspection and tests."""
        return self.critic1.infer(self._critic_input(g, s, a))

    # ------------------------------------------------------------------
    # Snapshot / restore (divergence guard + training checkpoints)
    # ------------------------------------------------------------------

    NETS = ("actor", "critic1", "critic2", "actor_target",
            "critic1_target", "critic2_target")

    def state_dict(self) -> dict:
        """Copies of every network and both optimiser states."""
        return {
            "nets": {name: getattr(self, name).get_state()
                     for name in self.NETS},
            "actor_opt": self.actor_opt.get_state(),
            "critic_opt": self.critic_opt.get_state(),
            "updates": self._updates,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        for name in self.NETS:
            getattr(self, name).set_state(state["nets"][name])
        self.actor_opt.set_state(state["actor_opt"])
        self.critic_opt.set_state(state["critic_opt"])
        self._updates = int(state["updates"])

    def params_finite(self) -> bool:
        """Whether every parameter of every network is finite."""
        return all(
            np.isfinite(p).all()
            for name in self.NETS
            for p in getattr(self, name).parameters()
        )

    def scale_learning_rates(self, factor: float) -> None:
        """Multiply both optimiser learning rates (divergence backoff)."""
        if factor <= 0:
            raise ModelError("LR scale factor must be positive")
        self.actor_opt.lr *= factor
        self.critic_opt.lr *= factor
