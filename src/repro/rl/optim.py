"""Optimisers for the NumPy network library."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class Adam:
    """Adam (Kingma & Ba) over a fixed list of parameter arrays.

    The optimiser binds to live parameter and gradient arrays once; calling
    :meth:`step` applies one update in place.  Optional global-norm gradient
    clipping stabilises the early critic updates.
    """

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray],
                 lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, clip_norm: float | None = 10.0):
        if lr <= 0:
            raise ModelError("learning rate must be positive")
        if len(params) != len(grads):
            raise ModelError("params and grads must align")
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ModelError("param/grad shape mismatch")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update using the currently accumulated gradients."""
        self._t += 1
        scale = 1.0
        if self.clip_norm is not None:
            norm = np.sqrt(sum(float(np.sum(g ** 2)) for g in self.grads))
            if norm > self.clip_norm:
                scale = self.clip_norm / (norm + 1e-12)
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            grad = g * scale
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def get_state(self) -> dict:
        """Copies of the optimiser internals (moments, step count, LR).

        Divergence rollbacks and training checkpoints must restore the
        moments along with the parameters: a poisoned first moment would
        re-inject the divergence on the very next step, and a reset step
        count would silently re-warm the bias correction.
        """
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
            "lr": self.lr,
        }

    def set_state(self, state: dict) -> None:
        """Restore :meth:`get_state` output in place."""
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ModelError("optimizer state does not match this optimizer")
        for dst, src in zip(self._m, state["m"]):
            if dst.shape != src.shape:
                raise ModelError("optimizer moment shape mismatch")
            dst[:] = src
        for dst, src in zip(self._v, state["v"]):
            if dst.shape != src.shape:
                raise ModelError("optimizer moment shape mismatch")
            dst[:] = src
        self._t = int(state["t"])
        self.lr = float(state["lr"])


class SGD:
    """Plain (optionally momentum) SGD, mainly for tests and ablations."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray],
                 lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ModelError("learning rate must be positive")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v
