"""Exploration noise processes for deterministic-policy training."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class GaussianNoise:
    """I.i.d. Gaussian exploration noise with exponential decay."""

    def __init__(self, std: float, decay: float = 1.0, min_std: float = 0.01,
                 seed: int = 0):
        if std < 0 or min_std < 0:
            raise ModelError("noise std must be non-negative")
        if not 0 < decay <= 1:
            raise ModelError("decay must lie in (0, 1]")
        self.std = std
        self.decay = decay
        self.min_std = min_std
        self._rng = np.random.default_rng(seed)

    def sample(self, shape=(1,)) -> np.ndarray:
        return self._rng.normal(0.0, self.std, size=shape)

    def step(self) -> None:
        """Decay the noise scale (called once per episode)."""
        self.std = max(self.std * self.decay, self.min_std)


class OrnsteinUhlenbeck:
    """Temporally correlated OU noise (classic DDPG exploration)."""

    def __init__(self, dim: int = 1, theta: float = 0.15, sigma: float = 0.2,
                 dt: float = 1.0, seed: int = 0):
        if dim <= 0:
            raise ModelError("dimension must be positive")
        self.theta = theta
        self.sigma = sigma
        self.dt = dt
        self._state = np.zeros(dim)
        self._rng = np.random.default_rng(seed)

    def sample(self) -> np.ndarray:
        drift = -self.theta * self._state * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self._rng.normal(size=self._state.shape)
        self._state = self._state + drift + diffusion
        return self._state.copy()

    def reset(self) -> None:
        self._state[:] = 0.0
