"""Multi-bottleneck topology helpers.

:class:`repro.netsim.fluid.FluidNetwork` already supports arbitrary link
paths; this module provides the named topology used by the paper's
multi-bottleneck experiment (Fig. 11) and a small description object that
the environment can turn into an engine.

The Fig. 11 "parking-lot" topology (following ExpressPass):

* Flow set 1 (FS-1) traverses Link 1 only (100 Mbps).
* Flow set 2 (FS-2) traverses Link 1 then Link 2 (20 Mbps).

With two FS-2 flows and ``k`` FS-1 flows the max-min-fair allocation is:
while ``k`` is small, FS-2 is bottlenecked by Link 2 (10 Mbps each) and FS-1
shares the remaining Link 1 capacity; once ``k`` grows past the crossover,
Link 1 becomes the common bottleneck and every flow gets ``100/(k+2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import FlowConfig, LinkConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class TopologyConfig:
    """Links plus a path (sequence of link names) for each flow."""

    links: tuple[LinkConfig, ...]
    flows: tuple[FlowConfig, ...]
    paths: tuple[tuple[str, ...], ...]
    duration_s: float = 60.0
    mtp_s: float = 0.030
    tick_s: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.paths) != len(self.flows):
            raise ConfigError("need exactly one path per flow")
        names = {l.name for l in self.links}
        for path in self.paths:
            if not path:
                raise ConfigError("paths must contain at least one link")
            unknown = set(path) - names
            if unknown:
                raise ConfigError(f"path references unknown links: {unknown}")


def parking_lot(n_fs1: int, n_fs2: int = 2, cc: str = "astraea",
                link1_mbps: float = 100.0, link2_mbps: float = 20.0,
                rtt_ms: float = 30.0, buffer_bdp: float = 4.0,
                duration_s: float = 40.0, seed: int = 0,
                **cc_kwargs) -> TopologyConfig:
    """The Fig. 11 two-bottleneck topology.

    FS-1 flows cross Link 1 only; FS-2 flows cross Link 1 then Link 2.  The
    link base RTT is attached to Link 1 so both flow sets share the same
    base propagation delay, as in the paper.
    """
    if n_fs1 <= 0 or n_fs2 <= 0:
        raise ConfigError("both flow sets need at least one flow")
    link1 = LinkConfig(bandwidth_mbps=link1_mbps, rtt_ms=rtt_ms,
                       buffer_bdp=buffer_bdp, name="link1")
    link2 = LinkConfig(bandwidth_mbps=link2_mbps, rtt_ms=rtt_ms,
                       buffer_bdp=buffer_bdp * link1_mbps / link2_mbps,
                       name="link2")
    flows = []
    paths = []
    for _ in range(n_fs1):
        flows.append(FlowConfig(cc=cc, start_s=0.0, cc_kwargs=dict(cc_kwargs)))
        paths.append(("link1",))
    for _ in range(n_fs2):
        flows.append(FlowConfig(cc=cc, start_s=0.0, cc_kwargs=dict(cc_kwargs)))
        paths.append(("link1", "link2"))
    return TopologyConfig(
        links=(link1, link2),
        flows=tuple(flows),
        paths=tuple(paths),
        duration_s=duration_s,
        seed=seed,
    )


def parking_lot_ideal_shares(n_fs1: int, n_fs2: int = 2,
                             link1_mbps: float = 100.0,
                             link2_mbps: float = 20.0) -> tuple[float, float]:
    """Max-min-fair per-flow shares (Mbps) for FS-1 and FS-2 in Fig. 11."""
    if n_fs1 <= 0 or n_fs2 <= 0:
        raise ConfigError("both flow sets need at least one flow")
    even_split = link1_mbps / (n_fs1 + n_fs2)
    if even_split <= link2_mbps / n_fs2:
        # Link 1 is the common bottleneck for everybody.
        return even_split, even_split
    fs2 = link2_mbps / n_fs2
    fs1 = (link1_mbps - link2_mbps) / n_fs1
    return fs1, fs2
