"""Composable link-fault injection (runtime-resilience layer).

The paper's Mahimahi traces expose policies to link conditions far outside
the tidy training envelope — cellular fades, satellite loss, bursty WAN
cross traffic.  This module makes those conditions *injectable on
purpose*: a :class:`FaultSchedule` attaches to a
:class:`~repro.config.ScenarioConfig` and both network engines
(:class:`~repro.netsim.fluid.FluidNetwork` and
:class:`~repro.netsim.packet.PacketNetwork`) consult it every tick/event.

Five impairment primitives compose freely over time windows:

* :class:`Blackout` — the link delivers nothing for a while (a handover
  gap, a tunnel, a modem retrain).  Queues keep filling and overflow.
* :class:`BandwidthFlap` — capacity is multiplied by ``factor`` (a deep
  fade or a sudden upgrade).
* :class:`LossBurst` — additional non-congestion random loss.
* :class:`DelaySpike` — extra propagation delay on the path (route flap,
  bufferbloat upstream of the bottleneck).
* :class:`ReorderWindow` — a fraction of deliveries is signalled to the
  sender as lost although the data arrives (the duplicate-ACK-driven
  spurious-retransmit signature of packet reordering).  The fluid engine
  keeps the goodput and only inflates the *observed* loss; the
  packet engine approximates the same signal as real loss.

All queries are pure functions of simulated time, so a schedule is
deterministic, serialisable (:meth:`FaultSchedule.to_dicts`) and cheap to
evaluate per tick.  :meth:`FaultSchedule.sample` draws a random schedule
from a seed — the training loop uses it to harden policies against faults
(``sample_training_scenario(..., fault_prob=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import ConfigError

#: Ceiling on the combined (link-configured + fault-injected) loss rate.
MAX_FAULT_LOSS = 0.95


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one impairment active on ``[start_s, start_s + duration_s)``."""

    start_s: float
    duration_s: float

    kind = "fault"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError(f"fault start must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ConfigError(
                f"fault duration must be positive, got {self.duration_s}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class Blackout(FaultEvent):
    """Total outage: the link serves nothing while active."""

    kind = "blackout"


@dataclass(frozen=True)
class BandwidthFlap(FaultEvent):
    """Capacity multiplied by ``factor`` while active (0 < factor)."""

    factor: float = 0.25
    kind = "flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise ConfigError(
                f"flap factor must be positive, got {self.factor} "
                f"(use Blackout for a total outage)")


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Extra non-congestion random loss while active."""

    loss_rate: float = 0.05
    kind = "loss-burst"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.loss_rate < 1:
            raise ConfigError(
                f"burst loss rate must lie in (0, 1), got {self.loss_rate}")


@dataclass(frozen=True)
class DelaySpike(FaultEvent):
    """Extra path propagation delay while active."""

    extra_ms: float = 50.0
    kind = "delay-spike"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_ms <= 0:
            raise ConfigError(
                f"delay spike must be positive, got {self.extra_ms}")


@dataclass(frozen=True)
class ReorderWindow(FaultEvent):
    """Spurious loss signal: ``rate`` of deliveries reported as lost."""

    rate: float = 0.02
    kind = "reorder"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.rate < 1:
            raise ConfigError(
                f"reorder rate must lie in (0, 1), got {self.rate}")


_EVENT_KINDS: dict[str, type[FaultEvent]] = {
    cls.kind: cls
    for cls in (Blackout, BandwidthFlap, LossBurst, DelaySpike, ReorderWindow)
}


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable set of fault events queried by simulated time.

    Events may overlap: bandwidth multipliers compose multiplicatively,
    loss rates add (capped), delay spikes add.  The schedule is attached
    to a :class:`~repro.config.ScenarioConfig` and consulted by both
    engines, so the *same* schedule produces the same impairment under
    fluid and packet simulation.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigError(
                    f"fault schedule entries must be FaultEvents, "
                    f"got {type(event).__name__}")

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def end_s(self) -> float:
        """When the last fault clears (0 for an empty schedule)."""
        return max((e.end_s for e in self.events), default=0.0)

    def active(self, t: float) -> tuple[FaultEvent, ...]:
        """The events covering time ``t``."""
        return tuple(e for e in self.events if e.active(t))

    # ------------------------------------------------------------------
    # Engine queries
    # ------------------------------------------------------------------

    def bandwidth_multiplier(self, t: float) -> float:
        """Combined capacity multiplier at ``t`` (0 during a blackout)."""
        mult = 1.0
        for e in self.events:
            if not e.active(t):
                continue
            if isinstance(e, Blackout):
                return 0.0
            if isinstance(e, BandwidthFlap):
                mult *= e.factor
        return mult

    def extra_loss(self, t: float) -> float:
        """Additional random-loss probability injected at ``t``."""
        loss = sum(e.loss_rate for e in self.events
                   if isinstance(e, LossBurst) and e.active(t))
        return min(loss, MAX_FAULT_LOSS)

    def spurious_loss(self, t: float) -> float:
        """Fraction of deliveries to *report* lost at ``t`` (reordering)."""
        rate = sum(e.rate for e in self.events
                   if isinstance(e, ReorderWindow) and e.active(t))
        return min(rate, MAX_FAULT_LOSS)

    def extra_delay_s(self, t: float) -> float:
        """Additional path delay (seconds) at ``t``."""
        return sum(e.extra_ms / 1e3 for e in self.events
                   if isinstance(e, DelaySpike) and e.active(t))

    def blackout_until(self, t: float) -> float | None:
        """End time of the blackout covering ``t``, or ``None``.

        The packet engine uses this to park the server for the exact
        outage instead of scheduling events at an infinite service time.
        """
        ends = [e.end_s for e in self.events
                if isinstance(e, Blackout) and e.active(t)]
        if not ends:
            return None
        # Chained blackouts: follow the resume point through any blackout
        # that covers it, so service restarts exactly once at the true end.
        until = max(ends)
        while True:
            chained = [e.end_s for e in self.events
                       if isinstance(e, Blackout) and e.active(until)]
            if not chained:
                return until
            until = max(chained)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def sample(cls, duration_s: float, seed: int,
               kinds: Iterable[str] | None = None,
               max_events: int = 3) -> "FaultSchedule":
        """Draw a random schedule for an episode, deterministic per seed.

        Between 1 and ``max_events`` events of the requested ``kinds``
        (default: all five) land uniformly inside the middle 80% of the
        episode, each lasting 2-15% of it — long enough to hurt, short
        enough that the episode still contains recovery.
        """
        if duration_s <= 0:
            raise ConfigError("episode duration must be positive")
        if max_events <= 0:
            raise ConfigError("need at least one event")
        kinds = tuple(kinds) if kinds is not None else tuple(_EVENT_KINDS)
        unknown = [k for k in kinds if k not in _EVENT_KINDS]
        if unknown:
            raise ConfigError(
                f"unknown fault kinds {unknown}; known: {sorted(_EVENT_KINDS)}")
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, max_events + 1))
        events: list[FaultEvent] = []
        for _ in range(n):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            start = float(rng.uniform(0.1, 0.9) * duration_s)
            length = float(rng.uniform(0.02, 0.15) * duration_s)
            if kind == "blackout":
                events.append(Blackout(start, length))
            elif kind == "flap":
                events.append(BandwidthFlap(start, length,
                                            factor=float(rng.uniform(0.1, 0.6))))
            elif kind == "loss-burst":
                events.append(LossBurst(start, length,
                                        loss_rate=float(rng.uniform(0.02, 0.2))))
            elif kind == "delay-spike":
                events.append(DelaySpike(start, length,
                                         extra_ms=float(rng.uniform(20.0, 200.0))))
            else:
                events.append(ReorderWindow(start, length,
                                            rate=float(rng.uniform(0.01, 0.08))))
        events.sort(key=lambda e: (e.start_s, e.kind))
        return cls(events=tuple(events))

    # ------------------------------------------------------------------
    # Serialisation (scenario JSON round-trip)
    # ------------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """JSON-serialisable event list (see :mod:`repro.persist`)."""
        out = []
        for e in self.events:
            d = {"kind": e.kind, "start_s": e.start_s,
                 "duration_s": e.duration_s}
            for extra in ("factor", "loss_rate", "extra_ms", "rate"):
                if hasattr(e, extra):
                    d[extra] = getattr(e, extra)
            out.append(d)
        return out

    @classmethod
    def from_dicts(cls, data: Iterable[dict]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dicts` output."""
        events = []
        for d in data:
            d = dict(d)
            kind = d.pop("kind", None)
            if kind not in _EVENT_KINDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r}; known: "
                    f"{sorted(_EVENT_KINDS)}")
            try:
                events.append(_EVENT_KINDS[kind](**d))
            except TypeError as exc:
                raise ConfigError(f"malformed fault event: {exc}") from exc
        return cls(events=tuple(events))

    def describe(self) -> str:
        """One line per event, in time order (the CLI fault demo)."""
        if not self.events:
            return "(no faults)"
        lines = []
        for e in sorted(self.events, key=lambda e: e.start_s):
            extra = ""
            if isinstance(e, BandwidthFlap):
                extra = f" x{e.factor:.2f} capacity"
            elif isinstance(e, LossBurst):
                extra = f" +{e.loss_rate:.1%} loss"
            elif isinstance(e, DelaySpike):
                extra = f" +{e.extra_ms:.0f} ms delay"
            elif isinstance(e, ReorderWindow):
                extra = f" {e.rate:.1%} spurious loss"
            lines.append(f"{e.start_s:7.2f}s - {e.end_s:7.2f}s  "
                         f"{e.kind}{extra}")
        return "\n".join(lines)
