"""Active queue management for the emulated link (§3.2).

The paper's environment "can also configure user-defined queuing
policies"; this module provides the three classic ones in fluid form:

* :class:`DropTail` — drop only on buffer overflow (the default; overflow
  itself is handled by the engine).
* :class:`Red` — Random Early Detection: an EWMA of the queue length maps
  to an early-drop probability between ``min_th`` and ``max_th``.
* :class:`CoDel` — Controlled Delay: when the queueing delay stays above
  ``target`` for longer than ``interval``, drop an increasing fraction of
  arrivals (the fluid analogue of CoDel's sqrt-spaced drop schedule).

A qdisc returns the *fraction of arriving fluid to drop this tick*; the
engine applies it before the tail-drop overflow check, so AQM drops and
overflow drops compose exactly as in a real queue.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..errors import ConfigError


class QueueDiscipline(ABC):
    """Maps instantaneous queue state to an early-drop fraction.

    With ``ecn=True`` (supported by RED and CoDel, per their RFCs) the
    discipline *marks* instead of dropping: :meth:`drop_fraction` returns
    0 and :meth:`mark_fraction` returns what would have been dropped.
    ECN-capable controllers react to the mark rate as a congestion signal
    without losing data.
    """

    ecn: bool = False

    @abstractmethod
    def drop_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        """Fraction of this tick's arrivals to drop, in [0, 1]."""

    def mark_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        """Fraction of this tick's deliveries to ECN-mark, in [0, 1].

        Only meaningful for disciplines constructed with ``ecn=True``;
        the default (drop-mode) implementation marks nothing.
        """
        return 0.0

    def reset(self) -> None:
        """Restore initial state (new run)."""


class DropTail(QueueDiscipline):
    """No early drops; overflow handling lives in the engine."""

    def drop_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        return 0.0


class Red(QueueDiscipline):
    """Random Early Detection over an EWMA of the backlog."""

    def __init__(self, min_th_pkts: float = 50.0, max_th_pkts: float = 150.0,
                 max_p: float = 0.1, ewma: float = 0.05, ecn: bool = False):
        if not 0 < min_th_pkts < max_th_pkts:
            raise ConfigError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ConfigError("max_p must lie in (0, 1]")
        if not 0 < ewma <= 1:
            raise ConfigError("ewma weight must lie in (0, 1]")
        self.min_th = min_th_pkts
        self.max_th = max_th_pkts
        self.max_p = max_p
        self.ewma = ewma
        self.ecn = ecn
        self.reset()

    def reset(self) -> None:
        self.avg_queue = 0.0

    def _congestion_fraction(self, queue_pkts: float) -> float:
        self.avg_queue += self.ewma * (queue_pkts - self.avg_queue)
        if self.avg_queue <= self.min_th:
            return 0.0
        if self.avg_queue >= self.max_th:
            return 1.0
        return self.max_p * (self.avg_queue - self.min_th) \
            / (self.max_th - self.min_th)

    def drop_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        if self.ecn:
            return 0.0
        return self._congestion_fraction(queue_pkts)

    def mark_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        if not self.ecn:
            return 0.0
        return self._congestion_fraction(queue_pkts)


class CoDel(QueueDiscipline):
    """Controlled Delay in fluid form.

    While the queueing delay exceeds ``target_s`` continuously for at
    least ``interval_s``, the discipline enters a dropping state whose
    drop fraction grows with the number of elapsed control intervals
    (mirroring CoDel's ``interval / sqrt(count)`` drop spacing); it exits
    as soon as the delay dips below target.
    """

    def __init__(self, target_s: float = 0.005, interval_s: float = 0.100,
                 base_drop: float = 0.02, ecn: bool = False):
        if target_s <= 0 or interval_s <= 0:
            raise ConfigError("target and interval must be positive")
        if not 0 < base_drop <= 1:
            raise ConfigError("base drop must lie in (0, 1]")
        self.target_s = target_s
        self.interval_s = interval_s
        self.base_drop = base_drop
        self.ecn = ecn
        self.reset()

    def reset(self) -> None:
        self._above_since: float | None = None
        self._dropping = False
        self._count = 0

    def _congestion_fraction(self, qdelay_s: float, now: float) -> float:
        if qdelay_s <= self.target_s:
            self._above_since = None
            self._dropping = False
            self._count = 0
            return 0.0
        if self._above_since is None:
            self._above_since = now
        if not self._dropping:
            if now - self._above_since < self.interval_s:
                return 0.0
            self._dropping = True
            self._count = 1
        # Escalate roughly once per (shrinking) control interval.
        spacing = self.interval_s / math.sqrt(self._count)
        if now - self._above_since >= self.interval_s + self._count * spacing:
            self._count += 1
        return min(self.base_drop * math.sqrt(self._count), 1.0)

    def drop_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        if self.ecn:
            return 0.0
        return self._congestion_fraction(qdelay_s, now)

    def mark_fraction(self, queue_pkts: float, qdelay_s: float, now: float,
                      dt: float) -> float:
        if not self.ecn:
            return 0.0
        return self._congestion_fraction(qdelay_s, now)


_QDISC_FACTORIES = {
    "droptail": DropTail,
    "red": Red,
    "codel": CoDel,
}


def create_qdisc(name: str, **kwargs) -> QueueDiscipline:
    """Instantiate a queue discipline by registry name."""
    try:
        factory = _QDISC_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown qdisc {name!r}; available: {sorted(_QDISC_FACTORIES)}"
        ) from None
    return factory(**kwargs)
