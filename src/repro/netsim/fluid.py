"""Fluid-model network engine.

This is the workhorse simulator that replaces the paper's Mahimahi +
Pantheon-tunnel emulation.  It advances in small ticks (default 2 ms) and
models each flow as a fluid whose instantaneous arrival rate at its first
bottleneck is the classic window-limited rate ``cwnd / rtt`` (optionally
capped by a pacing rate).  Every link keeps a drop-tail FIFO queue; queueing
delay feeds back into each flow's RTT, which closes the congestion loop:

    queue grows -> RTT grows -> window-limited rate drops.

Multiple links are supported so the multi-bottleneck topology of Fig. 11
runs on the same engine: a flow follows a *path* (a sequence of links) and
its departure rate from one hop is its arrival rate at the next.  FIFO
sharing is approximated by serving each flow in proportion to its share of
the aggregate arrival rate, which is the standard fluid approximation and
matches packet-level FIFO on MTP timescales (validated by the fidelity
tests against :mod:`repro.netsim.packet`).

Observation delay: the conditions a tick records become visible to the
sender one ACK-return delay later (about half the current RTT after the
bottleneck experienced them — a full RTT after the send decision), via
:class:`repro.netsim.stats.FlowMonitor`.

Fast path (docs/architecture.md §7): controllers only intervene once per
MTP (~15 ticks), so the engine keeps its per-flow state in persistent
structure-of-arrays vectors — ``base_rtt``/``cwnd``/``pacing`` plus a
link x flow path-membership matrix maintained incrementally by
:meth:`FluidNetwork.add_flow` / :meth:`~FluidNetwork.remove_flow` /
:meth:`~FluidNetwork.set_cwnd` — and :meth:`FluidNetwork.advance_block`
advances whole tick batches with zero per-tick Python object churn,
flushing results columnwise into each flow's ring-buffer monitor.  The
original per-tick implementation is retained verbatim as the reference
path and selected by setting ``REPRO_ENGINE_SLOWPATH=1`` (or the
``slowpath=True`` constructor argument); the differential equivalence
suite pins the two paths to per-tick per-flow deltas <= 1e-9.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..config import LinkConfig
from ..errors import SimulationError
from .faults import FaultSchedule
from .qdisc import QueueDiscipline, create_qdisc
from .stats import (
    COL_AVAIL,
    COL_DLV,
    COL_DT,
    COL_LOST,
    COL_MARK,
    COL_RTT,
    COL_SENT,
    COL_TIME,
    N_SAMPLE_COLS,
    FlowMonitor,
    TickSample,
)
from .traces import CapacityTrace, ConstantTrace

INITIAL_CWND_PKTS = 10.0
MIN_CWND_PKTS = 2.0

#: Environment variable selecting the per-tick reference implementation.
SLOWPATH_ENV = "REPRO_ENGINE_SLOWPATH"


def slowpath_enabled() -> bool:
    """Whether ``REPRO_ENGINE_SLOWPATH`` selects the reference path."""
    return os.environ.get(SLOWPATH_ENV, "").strip() not in ("", "0")


@dataclass
class _LinkState:
    """Runtime state of one link."""

    config: LinkConfig
    trace: CapacityTrace
    qdisc: QueueDiscipline = None  # type: ignore[assignment]
    queue_pkts: float = 0.0
    # Cumulative counters for diagnostics.
    total_arrived_pkts: float = 0.0
    total_delivered_pkts: float = 0.0
    total_dropped_pkts: float = 0.0
    # Last per-flow arrival-share vector seen with nonzero arrivals,
    # aligned with the link's current on-link flow set; used to attribute
    # backlog drained on ticks with zero arrivals (otherwise that goodput
    # would be delivered to no flow).  Invalidated on flow churn.
    last_share: np.ndarray | None = None

    def capacity_pps(self, t: float) -> float:
        from ..units import mbps_to_pps

        return mbps_to_pps(self.trace.capacity_mbps(t))

    @property
    def buffer_pkts(self) -> float:
        return self.config.buffer_size_packets


@dataclass
class _FlowState:
    """Runtime state of one flow inside the engine."""

    flow_id: int
    path: tuple[int, ...]
    base_rtt_s: float
    cwnd_pkts: float = INITIAL_CWND_PKTS
    pacing_pps: float | None = None
    monitor: FlowMonitor = field(default=None)  # type: ignore[assignment]
    # Last-tick values cached for accessors.
    last_rtt_s: float = 0.0
    last_rate_pps: float = 0.0
    last_goodput_pps: float = 0.0
    total_delivered_pkts: float = 0.0
    total_lost_pkts: float = 0.0
    total_sent_pkts: float = 0.0


class FluidNetwork:
    """Multi-flow, multi-link fluid simulator.

    Parameters
    ----------
    links:
        The links of the network in the order flows traverse them (a path
        refers to links by name).  A single-bottleneck scenario passes one
        link.
    traces:
        Optional per-link capacity traces, keyed by link name.  Links
        without a trace run at their configured constant bandwidth.
    seed:
        Seeds the engine RNG (currently only used by stochastic-loss
        smoothing; the loss process itself is fluid and deterministic).
    faults:
        Optional :class:`~repro.netsim.faults.FaultSchedule` of link
        impairments (blackouts, flaps, loss bursts, delay spikes, reorder
        windows) applied to every link on each tick.
    slowpath:
        ``True`` forces the per-tick reference implementation, ``False``
        forces the vectorized fast path; ``None`` (default) follows the
        ``REPRO_ENGINE_SLOWPATH`` environment variable.
    """

    def __init__(self, links: list[LinkConfig] | LinkConfig,
                 traces: dict[str, CapacityTrace] | None = None,
                 seed: int = 0, faults: FaultSchedule | None = None,
                 slowpath: bool | None = None):
        if isinstance(links, LinkConfig):
            links = [links]
        if not links:
            raise SimulationError("a network needs at least one link")
        names = [l.name for l in links]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate link names: {names}")
        traces = traces or {}
        self._links = [
            _LinkState(
                config=l,
                trace=traces.get(l.name, ConstantTrace(l.bandwidth_mbps)),
                qdisc=create_qdisc(l.qdisc, **l.qdisc_kwargs),
            )
            for l in links
        ]
        self._link_index = {l.name: i for i, l in enumerate(links)}
        self._flows: dict[int, _FlowState] = {}
        self._next_flow_id = 0
        self._rng = np.random.default_rng(seed)
        self._faults = faults if faults else None
        self.now = 0.0
        self._slowpath = slowpath_enabled() if slowpath is None else slowpath
        # Constant-rate links resolve their capacity once; traced links
        # are re-evaluated per tick through the same code path as the
        # reference implementation.
        self._static_cap = np.array([
            link.capacity_pps(0.0)
            if isinstance(link.trace, ConstantTrace) else np.nan
            for link in self._links
        ])
        self._traced_idx = [
            li for li, link in enumerate(self._links)
            if not isinstance(link.trace, ConstantTrace)
        ]
        self._rebuild_soa()

    # ------------------------------------------------------------------
    # Structure-of-arrays state (fast path)
    # ------------------------------------------------------------------

    def _rebuild_soa(self) -> None:
        """Rebuild the per-flow state vectors after flow churn.

        Slot order matches dict insertion order, i.e. the exact order the
        reference path iterates ``self._flows.values()``.  Flow churn also
        invalidates every link's drain-attribution share vector, whose
        positions are aligned with the on-link flow sets.
        """
        flows = list(self._flows.values())
        self._order = flows
        n = len(flows)
        n_links = len(self._links)
        self._slot = {f.flow_id: i for i, f in enumerate(flows)}
        self._base_rtt = np.array([f.base_rtt_s for f in flows]) \
            if n else np.zeros(0)
        self._cwnd = np.array([f.cwnd_pkts for f in flows]) \
            if n else np.zeros(0)
        self._pacing = np.array(
            [f.pacing_pps if f.pacing_pps is not None else np.inf
             for f in flows]) if n else np.zeros(0)
        member = np.zeros((n_links, n))
        for i, f in enumerate(flows):
            for li in f.path:
                member[li, i] += 1.0
        # (n, L) layout: path delay is one matrix-vector product.
        self._member_t = np.ascontiguousarray(member.T)
        self._on_link = [np.flatnonzero(member[li] > 0)
                         for li in range(n_links)]
        # The specialised single-link kernel assumes every flow crosses
        # the one link exactly once (always true for default paths).
        self._single_simple = n_links == 1 and all(
            len(f.path) == 1 for f in flows)
        for link in self._links:
            link.last_share = None

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------

    def _resolve_path(self, base_rtt_s: float,
                      path: list[str] | None) -> tuple[int, ...]:
        """Validate one flow spec and resolve its path to link indices."""
        if base_rtt_s <= 0:
            raise SimulationError(f"base rtt must be positive, got {base_rtt_s}")
        if path is None:
            return tuple(range(len(self._links)))
        try:
            link_ids = tuple(self._link_index[name] for name in path)
        except KeyError as exc:
            raise SimulationError(f"unknown link in path: {exc}") from None
        if not link_ids:
            raise SimulationError("a flow path needs at least one link")
        return link_ids

    def _register_flow(self, base_rtt_s: float, link_ids: tuple[int, ...],
                       cwnd_pkts: float, pacing_pps: float | None) -> int:
        fid = self._next_flow_id
        self._next_flow_id += 1
        flow = _FlowState(
            flow_id=fid,
            path=link_ids,
            base_rtt_s=base_rtt_s,
            cwnd_pkts=max(cwnd_pkts, MIN_CWND_PKTS),
            pacing_pps=pacing_pps,
            monitor=FlowMonitor(base_rtt_s),
        )
        flow.last_rtt_s = base_rtt_s
        self._flows[fid] = flow
        return fid

    def add_flow(self, base_rtt_s: float, path: list[str] | None = None,
                 cwnd_pkts: float = INITIAL_CWND_PKTS,
                 pacing_pps: float | None = None) -> int:
        """Register a flow and return its engine id.

        ``path`` lists link names in traversal order; ``None`` means "all
        links in network order", which is the single-bottleneck default.
        """
        link_ids = self._resolve_path(base_rtt_s, path)
        fid = self._register_flow(base_rtt_s, link_ids, cwnd_pkts, pacing_pps)
        self._rebuild_soa()
        return fid

    def add_flows(self, specs) -> list[int]:
        """Register a batch of flows with one SoA rebuild for the batch.

        ``specs`` is an iterable of dicts accepting the same keys as
        :meth:`add_flow` (``base_rtt_s`` required; ``path``,
        ``cwnd_pkts``, ``pacing_pps`` optional).  Every spec is validated
        before any flow is registered, so a bad spec leaves the network
        unchanged.  Registering n flows one by one rebuilds the
        structure-of-arrays state n times (O(n^2) total work when
        building a large shard); this path rebuilds once.
        """
        specs = list(specs)
        known = {"base_rtt_s", "path", "cwnd_pkts", "pacing_pps"}
        resolved = []
        for spec in specs:
            if not isinstance(spec, dict):
                raise SimulationError(
                    f"flow spec must be a dict, got {type(spec).__name__}")
            unknown = set(spec) - known
            if unknown:
                raise SimulationError(
                    f"unknown flow-spec keys {sorted(unknown)}; "
                    f"known: {sorted(known)}")
            if "base_rtt_s" not in spec:
                raise SimulationError("flow spec needs base_rtt_s")
            resolved.append(
                self._resolve_path(spec["base_rtt_s"], spec.get("path")))
        fids = [
            self._register_flow(
                spec["base_rtt_s"], link_ids,
                spec.get("cwnd_pkts", INITIAL_CWND_PKTS),
                spec.get("pacing_pps"))
            for spec, link_ids in zip(specs, resolved)
        ]
        if fids:
            self._rebuild_soa()
        return fids

    def remove_flow(self, fid: int) -> None:
        """Deregister a flow (its remaining queued fluid is discarded)."""
        if self._flows.pop(fid, None) is not None:
            self._rebuild_soa()

    def set_cwnd(self, fid: int, cwnd_pkts: float,
                 pacing_pps: float | None = None) -> None:
        """Apply a controller decision to a flow."""
        flow = self._require(fid)
        if not np.isfinite(cwnd_pkts):
            raise SimulationError(f"non-finite cwnd for flow {fid}: {cwnd_pkts}")
        flow.cwnd_pkts = float(np.clip(cwnd_pkts, MIN_CWND_PKTS, 1e9))
        flow.pacing_pps = pacing_pps
        i = self._slot[fid]
        self._cwnd[i] = flow.cwnd_pkts
        self._pacing[i] = pacing_pps if pacing_pps is not None else np.inf

    def _require(self, fid: int) -> _FlowState:
        try:
            return self._flows[fid]
        except KeyError:
            raise SimulationError(f"unknown flow id {fid}") from None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def flow_ids(self) -> list[int]:
        """Ids of all currently registered flows."""
        return list(self._flows)

    def monitor(self, fid: int) -> FlowMonitor:
        """The sender-side monitor of a flow."""
        return self._require(fid).monitor

    def cwnd(self, fid: int) -> float:
        """Current congestion window of a flow in packets."""
        return self._require(fid).cwnd_pkts

    def flow_rtt_s(self, fid: int) -> float:
        """Instantaneous RTT of a flow (base plus path queueing delay)."""
        return self._require(fid).last_rtt_s

    def flow_rate_pps(self, fid: int) -> float:
        """Instantaneous sending rate of a flow (pkts/s)."""
        return self._require(fid).last_rate_pps

    def flow_goodput_pps(self, fid: int) -> float:
        """Instantaneous delivery rate of a flow (pkts/s)."""
        return self._require(fid).last_goodput_pps

    def flow_delivered_pkts(self, fid: int) -> float:
        """Cumulative packets delivered to a flow since registration."""
        return self._require(fid).total_delivered_pkts

    def pkts_in_flight(self, fid: int) -> float:
        """Approximate packets in flight (rate times RTT, capped by cwnd)."""
        flow = self._require(fid)
        return min(flow.last_rate_pps * flow.last_rtt_s, flow.cwnd_pkts)

    def queue_pkts(self, link_name: str | None = None) -> float:
        """Current backlog of a link (first link by default), in packets."""
        idx = 0 if link_name is None else self._link_index[link_name]
        return self._links[idx].queue_pkts

    def queue_delay_s(self, link_name: str | None = None) -> float:
        """Current queueing delay of a link in seconds.

        During a blackout the drain-time estimate uses the unimpaired
        capacity (the backlog clears at that rate once service resumes).
        """
        idx = 0 if link_name is None else self._link_index[link_name]
        link = self._links[idx]
        cap = self.link_capacity_pps(link_name)
        if cap <= 0:
            cap = link.capacity_pps(self.now)
        return link.queue_pkts / cap if cap > 0 else 0.0

    def link_capacity_pps(self, link_name: str | None = None) -> float:
        """Instantaneous capacity of a link (pkts/s), faults applied."""
        idx = 0 if link_name is None else self._link_index[link_name]
        cap = self._links[idx].capacity_pps(self.now)
        if self._faults is not None:
            cap *= self._faults.bandwidth_multiplier(self.now)
        return cap

    def link_drops_pkts(self, link_name: str | None = None) -> float:
        """Cumulative packets dropped at a link."""
        idx = 0 if link_name is None else self._link_index[link_name]
        return self._links[idx].total_dropped_pkts

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Advance the network by one tick of ``dt`` seconds."""
        if dt <= 0:
            raise SimulationError(f"tick must be positive, got {dt}")
        if self._slowpath:
            self._advance_reference(dt)
        else:
            self._advance_fast(dt, 1)

    def advance_block(self, dt: float, n_ticks: int) -> None:
        """Advance the network by ``n_ticks`` ticks of ``dt`` seconds each.

        The block kernel produces the exact same trajectory as ``n_ticks``
        calls to :meth:`advance` — same tick boundaries, same fault/qdisc
        queries, same monitor samples — but runs the whole batch through
        persistent state vectors with no per-tick Python object churn.
        Callers use it to cover the controller-free stretches between MTP
        decisions.
        """
        if dt <= 0:
            raise SimulationError(f"tick must be positive, got {dt}")
        n_ticks = int(n_ticks)
        if n_ticks <= 0:
            raise SimulationError(
                f"block must cover at least one tick, got {n_ticks}")
        if self._slowpath:
            for _ in range(n_ticks):
                self._advance_reference(dt)
        else:
            self._advance_fast(dt, n_ticks)

    # -- reference per-tick path ---------------------------------------

    def _advance_reference(self, dt: float) -> None:
        """One tick of the original per-tick implementation.

        Kept as the executable specification of the engine: the fast
        kernel is pinned against it by the differential suite.  Selected
        at run time via ``REPRO_ENGINE_SLOWPATH=1``.
        """
        flows = list(self._flows.values())
        t = self.now
        n_links = len(self._links)
        # Fault impairments are uniform across links (single-bottleneck
        # scenarios dominate; a multi-link path degrades end to end).
        fault_mult, fault_loss = 1.0, 0.0
        fault_spurious, fault_delay = 0.0, 0.0
        if self._faults is not None:
            fault_mult = self._faults.bandwidth_multiplier(t)
            fault_loss = self._faults.extra_loss(t)
            fault_spurious = self._faults.spurious_loss(t)
            fault_delay = self._faults.extra_delay_s(t)
        qdelay = np.empty(n_links)
        capacity = np.empty(n_links)
        for li, link in enumerate(self._links):
            capacity[li] = link.capacity_pps(t) * fault_mult
            if capacity[li] > 0:
                qdelay[li] = link.queue_pkts / capacity[li]
            else:
                # Blackout: estimate drain time at the unimpaired rate so
                # RTTs stay finite (service resumes at that rate).
                nominal = link.capacity_pps(t)
                qdelay[li] = link.queue_pkts / nominal if nominal > 0 else 0.0

        if not flows:
            # Queues still drain when idle.
            for li, link in enumerate(self._links):
                drained = min(link.queue_pkts, capacity[li] * dt)
                link.queue_pkts -= drained
                link.total_delivered_pkts += drained
            self.now = t + dt
            return

        n = len(flows)
        base_rtt = np.array([f.base_rtt_s for f in flows])
        cwnd = np.array([f.cwnd_pkts for f in flows])
        pacing = np.array(
            [f.pacing_pps if f.pacing_pps is not None else np.inf for f in flows]
        )
        # Path delay through the precomputed membership matrix — the same
        # product the block kernel uses, so the two paths agree bitwise.
        path_delay = self._member_t @ qdelay
        rtt = base_rtt + path_delay + fault_delay

        # Window-limited sending rate, optionally pacing-capped.
        rate = np.minimum(cwnd / rtt, pacing)
        sent = rate * dt
        lost = np.zeros(n)
        marked = np.zeros(n)

        # Push the fluid through each link in network order.  A flow's rate
        # entering a link is its departure rate from the previous hop.
        current = rate.copy()
        for li, link in enumerate(self._links):
            on_link = [i for i, f in enumerate(flows) if li in f.path]
            if not on_link:
                drained = min(link.queue_pkts, capacity[li] * dt)
                link.queue_pkts -= drained
                link.total_delivered_pkts += drained
                continue
            idx = np.array(on_link)
            arrival = current[idx]
            # Active queue management: early-drop a fraction of arrivals.
            early = link.qdisc.drop_fraction(
                link.queue_pkts, qdelay[li], t, dt)
            if early > 0:
                early_drop = arrival * early
                lost[idx] += early_drop * dt
                link.total_dropped_pkts += float(early_drop.sum()) * dt
                arrival = arrival - early_drop
            total_arrival = float(arrival.sum())
            link.total_arrived_pkts += total_arrival * dt
            q_tentative = link.queue_pkts + (total_arrival - capacity[li]) * dt
            dropped_pkts = 0.0
            if q_tentative > link.buffer_pkts:
                dropped_pkts = q_tentative - link.buffer_pkts
                q_new = link.buffer_pkts
            else:
                q_new = max(q_tentative, 0.0)
            delivered_pkts = (
                link.queue_pkts + total_arrival * dt - dropped_pkts - q_new
            )
            departure = delivered_pkts / dt
            link.queue_pkts = q_new
            link.total_delivered_pkts += delivered_pkts
            link.total_dropped_pkts += dropped_pkts
            if total_arrival > 0:
                share = arrival / total_arrival
                link.last_share = share
            elif link.last_share is not None and \
                    link.last_share.size == idx.size:
                # Zero arrivals over a queued backlog: the drain serves
                # the flows whose fluid is queued, in the proportions of
                # the last tick that actually sent (goodput-attribution
                # fix; previously the drained packets went to no flow).
                share = link.last_share
            else:
                share = np.zeros_like(arrival)
            out = share * departure
            drop_rate = share * (dropped_pkts / dt)
            # ECN marking: a fraction of what passes through is marked.
            mark = link.qdisc.mark_fraction(link.queue_pkts, qdelay[li],
                                            t, dt)
            if mark > 0:
                marked[idx] += out * mark * dt
            # Stochastic (non-congestion) loss happens on the wire after the
            # queue; it removes goodput but does not occupy the buffer.
            # Fault-injected loss bursts add to the configured rate.
            p = min(link.config.random_loss + fault_loss, 0.99)
            if p > 0:
                rand_loss = out * p
                out = out - rand_loss
                drop_rate = drop_rate + rand_loss
            # Reordering: a fraction of deliveries is *signalled* lost
            # (duplicate-ACK spurious retransmits) but still arrives, so
            # it inflates the loss observation without touching goodput.
            if fault_spurious > 0:
                drop_rate = drop_rate + out * fault_spurious
            lost[idx] += drop_rate * dt
            current[idx] = out

        delivered = current * dt

        # Record per-flow samples; they become observable one ACK-return
        # delay (~rtt/2 from the bottleneck's perspective) later.
        for i, f in enumerate(flows):
            f.last_rtt_s = float(rtt[i])
            f.last_rate_pps = float(rate[i])
            f.last_goodput_pps = float(current[i])
            f.total_sent_pkts += float(sent[i])
            f.total_delivered_pkts += float(delivered[i])
            f.total_lost_pkts += float(lost[i])
            f.monitor.push(TickSample(
                time=t,
                avail_at=t + dt + rtt[i] / 2.0,
                dt=dt,
                rtt_s=float(rtt[i]),
                sent_pkts=float(sent[i]),
                delivered_pkts=float(delivered[i]),
                lost_pkts=float(lost[i]),
                marked_pkts=float(marked[i]),
            ))

        self.now = t + dt

    # -- vectorized block kernel ---------------------------------------

    def _fault_terms(self, t: float) -> tuple[float, float, float, float]:
        faults = self._faults
        if faults is None:
            return 1.0, 0.0, 0.0, 0.0
        return (faults.bandwidth_multiplier(t), faults.extra_loss(t),
                faults.spurious_loss(t), faults.extra_delay_s(t))

    def _nominal_cap(self, li: int, t: float) -> float:
        cap = self._static_cap[li]
        if cap == cap:  # not NaN: constant-rate link
            return float(cap)
        return self._links[li].capacity_pps(t)

    def _advance_fast(self, dt: float, n_ticks: int) -> None:
        n = len(self._order)
        if n == 0:
            self._advance_fast_idle(dt, n_ticks)
            return
        if self._single_simple:
            self._advance_fast_single(dt, n_ticks)
        else:
            self._advance_fast_multi(dt, n_ticks)

    def _advance_fast_idle(self, dt: float, n_ticks: int) -> None:
        """Idle drain: no flows registered, queues still serve."""
        t = self.now
        links = self._links
        for _ in range(n_ticks):
            fault_mult = self._fault_terms(t)[0]
            for li, link in enumerate(links):
                cap = self._nominal_cap(li, t) * fault_mult
                drained = min(link.queue_pkts, cap * dt)
                link.queue_pkts -= drained
                link.total_delivered_pkts += drained
            t = t + dt
        self.now = t

    def _new_sample_block(self, n_ticks: int, n: int) -> np.ndarray:
        """A ``(n_ticks, 8, n)`` sample block in ring-column layout.

        The kernel writes each tick's per-flow results straight into
        ``blk[k, COL_*]`` (contiguous length-``n`` rows); the flush then
        lands flow ``i``'s samples in its monitor with the single
        assignment ``push_rows(blk[:, :, i])``.  Loss and mark columns
        start zeroed — the kernel only writes them when nonzero.
        """
        blk = np.empty((n_ticks, N_SAMPLE_COLS, n))
        blk[:, COL_LOST:, :] = 0.0
        return blk

    def _flush_block(self, dt: float, times: np.ndarray, blk: np.ndarray,
                     last_rate: np.ndarray,
                     last_goodput: np.ndarray) -> None:
        """Columnwise flush of one finished block into the flow states."""
        blk[:, COL_TIME, :] = times[:, None]
        # avail = (t + dt) + rtt/2, folded in the reference order (float
        # addition is commutative, so adding the rtt/2 term first is
        # bitwise identical).
        avail = blk[:, COL_AVAIL, :]
        np.multiply(blk[:, COL_RTT, :], 0.5, out=avail)
        avail += (times + dt)[:, None]
        blk[:, COL_DT, :] = dt
        rtt_last = blk[-1, COL_RTT].tolist()
        sent_sums = blk[:, COL_SENT, :].sum(axis=0).tolist()
        dlv_sums = blk[:, COL_DLV, :].sum(axis=0).tolist()
        lost_sums = blk[:, COL_LOST, :].sum(axis=0).tolist()
        rate_l = last_rate.tolist()
        gp_l = last_goodput.tolist()
        for i, f in enumerate(self._order):
            f.last_rtt_s = rtt_last[i]
            f.last_rate_pps = rate_l[i]
            f.last_goodput_pps = gp_l[i]
            f.total_sent_pkts += sent_sums[i]
            f.total_delivered_pkts += dlv_sums[i]
            f.total_lost_pkts += lost_sums[i]
            f.monitor.push_rows(blk[:, :, i])

    def _advance_fast_single(self, dt: float, n_ticks: int) -> None:
        """Block kernel specialised for the dominant single-link case.

        Queue state lives in Python scalars and per-flow state in the
        persistent SoA vectors; each tick costs a handful of ufunc calls
        on length-``n`` arrays and two qdisc method calls, nothing else.
        """
        link = self._links[0]
        qdisc = link.qdisc
        base_rtt = self._base_rtt
        cwnd = self._cwnd
        pacing = self._pacing
        n = len(self._order)
        have_faults = self._faults is not None
        traced = bool(self._traced_idx)
        static0 = float(self._static_cap[0]) if not traced else 0.0
        rloss = link.config.random_loss
        buffer_pkts = link.buffer_pkts

        times = np.empty(n_ticks)
        blk = self._new_sample_block(n_ticks, n)
        rate = np.empty(n)
        goodput = np.empty(n)
        share = np.empty(n)
        have_share = link.last_share is not None and \
            link.last_share.size == n
        if have_share:
            np.copyto(share, link.last_share)

        q = link.queue_pkts
        arr_acc = dlv_acc = drop_acc = 0.0
        t = self.now
        for k in range(n_ticks):
            if have_faults:
                fm, fl, fs, fd = self._fault_terms(t)
            else:
                fm = 1.0
                fl = fs = fd = 0.0
            nominal = link.capacity_pps(t) if traced else static0
            cap = nominal * fm
            if cap > 0:
                qd = q / cap
            else:
                qd = q / nominal if nominal > 0 else 0.0

            row = blk[k]
            rtt_row = row[COL_RTT]
            np.add(base_rtt, qd, out=rtt_row)
            if fd:
                rtt_row += fd
            np.divide(cwnd, rtt_row, out=rate)
            np.minimum(rate, pacing, out=rate)
            np.multiply(rate, dt, out=row[COL_SENT])

            arrival = rate
            early = qdisc.drop_fraction(q, qd, t, dt)
            if early > 0:
                early_drop = rate * early
                row[COL_LOST] += early_drop * dt
                drop_acc += float(early_drop.sum()) * dt
                arrival = rate - early_drop
            total_arrival = float(arrival.sum())
            arr_acc += total_arrival * dt
            q_tentative = q + (total_arrival - cap) * dt
            if q_tentative > buffer_pkts:
                dropped = q_tentative - buffer_pkts
                q_new = buffer_pkts
            else:
                dropped = 0.0
                q_new = q_tentative if q_tentative > 0.0 else 0.0
            delivered_pkts = q + total_arrival * dt - dropped - q_new
            departure = delivered_pkts / dt
            q = q_new
            dlv_acc += delivered_pkts
            drop_acc += dropped

            if total_arrival > 0:
                np.divide(arrival, total_arrival, out=share)
                have_share = True
            if have_share:
                np.multiply(share, departure, out=goodput)
                mark = qdisc.mark_fraction(q, qd, t, dt)
                if mark > 0:
                    row[COL_MARK] += goodput * (mark * dt)
                p = min(rloss + fl, 0.99)
                if dropped > 0.0 or p > 0 or fs > 0:
                    drop_rate = share * (dropped / dt)
                    if p > 0:
                        rand_loss = goodput * p
                        goodput -= rand_loss
                        drop_rate = drop_rate + rand_loss
                    if fs > 0:
                        drop_rate = drop_rate + goodput * fs
                    row[COL_LOST] += drop_rate * dt
            else:
                # Nothing has ever arrived at this link: fluid (if any)
                # is unattributable, matching the reference zero share.
                goodput[:] = 0.0
                mark = qdisc.mark_fraction(q, qd, t, dt)
            np.multiply(goodput, dt, out=row[COL_DLV])
            times[k] = t
            t = t + dt

        self.now = t
        link.queue_pkts = q
        link.total_arrived_pkts += arr_acc
        link.total_delivered_pkts += dlv_acc
        link.total_dropped_pkts += drop_acc
        link.last_share = share if have_share else None
        self._flush_block(dt, times, blk, rate, goodput)

    def _advance_fast_multi(self, dt: float, n_ticks: int) -> None:
        """Block kernel for multi-link topologies.

        A vectorized transcription of the reference tick: path delay is
        one matrix-vector product over the precomputed membership matrix,
        and per-link flow sets come from the cached index vectors.
        """
        links = self._links
        n_links = len(links)
        n = len(self._order)
        base_rtt = self._base_rtt
        cwnd = self._cwnd
        pacing = self._pacing
        member_t = self._member_t
        on_link = self._on_link

        times = np.empty(n_ticks)
        blk = self._new_sample_block(n_ticks, n)
        rate = np.empty(n)
        current = np.empty(n)
        path_delay = np.empty(n)
        qdelay = np.empty(n_links)
        capacity = np.empty(n_links)
        nominal = np.empty(n_links)

        queue = [link.queue_pkts for link in links]
        arr_acc = [0.0] * n_links
        dlv_acc = [0.0] * n_links
        drop_acc = [0.0] * n_links
        last_share: list[np.ndarray | None] = [
            link.last_share
            if link.last_share is not None and
            link.last_share.size == on_link[li].size else None
            for li, link in enumerate(links)
        ]

        t = self.now
        for k in range(n_ticks):
            fm, fl, fs, fd = self._fault_terms(t)
            for li in range(n_links):
                nominal[li] = self._nominal_cap(li, t)
            np.multiply(nominal, fm, out=capacity)
            for li in range(n_links):
                if capacity[li] > 0:
                    qdelay[li] = queue[li] / capacity[li]
                else:
                    qdelay[li] = queue[li] / nominal[li] \
                        if nominal[li] > 0 else 0.0

            np.matmul(member_t, qdelay, out=path_delay)
            row = blk[k]
            rtt_row = row[COL_RTT]
            np.add(base_rtt, path_delay, out=rtt_row)
            if fd:
                rtt_row += fd
            np.divide(cwnd, rtt_row, out=rate)
            np.minimum(rate, pacing, out=rate)
            np.multiply(rate, dt, out=row[COL_SENT])
            lost_row = row[COL_LOST]
            marked_row = row[COL_MARK]
            np.copyto(current, rate)

            for li in range(n_links):
                link = links[li]
                idx = on_link[li]
                if idx.size == 0:
                    drained = min(queue[li], capacity[li] * dt)
                    queue[li] -= drained
                    dlv_acc[li] += drained
                    continue
                q_li = queue[li]
                arrival = current[idx]
                early = link.qdisc.drop_fraction(q_li, qdelay[li], t, dt)
                if early > 0:
                    early_drop = arrival * early
                    lost_row[idx] += early_drop * dt
                    drop_acc[li] += float(early_drop.sum()) * dt
                    arrival = arrival - early_drop
                total_arrival = float(arrival.sum())
                arr_acc[li] += total_arrival * dt
                q_tentative = q_li + (total_arrival - capacity[li]) * dt
                dropped_pkts = 0.0
                if q_tentative > link.buffer_pkts:
                    dropped_pkts = q_tentative - link.buffer_pkts
                    q_new = link.buffer_pkts
                else:
                    q_new = max(q_tentative, 0.0)
                delivered_pkts = (
                    q_li + total_arrival * dt - dropped_pkts - q_new
                )
                departure = delivered_pkts / dt
                queue[li] = q_new
                dlv_acc[li] += delivered_pkts
                drop_acc[li] += dropped_pkts
                if total_arrival > 0:
                    share = arrival / total_arrival
                    last_share[li] = share
                elif last_share[li] is not None:
                    share = last_share[li]
                else:
                    share = np.zeros_like(arrival)
                out = share * departure
                drop_rate = share * (dropped_pkts / dt)
                mark = link.qdisc.mark_fraction(q_new, qdelay[li], t, dt)
                if mark > 0:
                    marked_row[idx] += out * mark * dt
                p = min(link.config.random_loss + fl, 0.99)
                if p > 0:
                    rand_loss = out * p
                    out = out - rand_loss
                    drop_rate = drop_rate + rand_loss
                if fs > 0:
                    drop_rate = drop_rate + out * fs
                lost_row[idx] += drop_rate * dt
                current[idx] = out

            np.multiply(current, dt, out=row[COL_DLV])
            times[k] = t
            t = t + dt

        self.now = t
        for li, link in enumerate(links):
            link.queue_pkts = queue[li]
            link.total_arrived_pkts += arr_acc[li]
            link.total_delivered_pkts += dlv_acc[li]
            link.total_dropped_pkts += drop_acc[li]
            link.last_share = last_share[li]
        self._flush_block(dt, times, blk, rate, current)
