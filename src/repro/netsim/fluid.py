"""Fluid-model network engine.

This is the workhorse simulator that replaces the paper's Mahimahi +
Pantheon-tunnel emulation.  It advances in small ticks (default 2 ms) and
models each flow as a fluid whose instantaneous arrival rate at its first
bottleneck is the classic window-limited rate ``cwnd / rtt`` (optionally
capped by a pacing rate).  Every link keeps a drop-tail FIFO queue; queueing
delay feeds back into each flow's RTT, which closes the congestion loop:

    queue grows -> RTT grows -> window-limited rate drops.

Multiple links are supported so the multi-bottleneck topology of Fig. 11
runs on the same engine: a flow follows a *path* (a sequence of links) and
its departure rate from one hop is its arrival rate at the next.  FIFO
sharing is approximated by serving each flow in proportion to its share of
the aggregate arrival rate, which is the standard fluid approximation and
matches packet-level FIFO on MTP timescales (validated by the fidelity
tests against :mod:`repro.netsim.packet`).

Observation delay: the conditions a tick records become visible to the
sender one ACK-return delay later (about half the current RTT after the
bottleneck experienced them — a full RTT after the send decision), via
:class:`repro.netsim.stats.FlowMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import LinkConfig
from ..errors import SimulationError
from .faults import FaultSchedule
from .qdisc import QueueDiscipline, create_qdisc
from .stats import FlowMonitor, TickSample
from .traces import CapacityTrace, ConstantTrace

INITIAL_CWND_PKTS = 10.0
MIN_CWND_PKTS = 2.0


@dataclass
class _LinkState:
    """Runtime state of one link."""

    config: LinkConfig
    trace: CapacityTrace
    qdisc: QueueDiscipline = None  # type: ignore[assignment]
    queue_pkts: float = 0.0
    # Cumulative counters for diagnostics.
    total_arrived_pkts: float = 0.0
    total_delivered_pkts: float = 0.0
    total_dropped_pkts: float = 0.0

    def capacity_pps(self, t: float) -> float:
        from ..units import mbps_to_pps

        return mbps_to_pps(self.trace.capacity_mbps(t))

    @property
    def buffer_pkts(self) -> float:
        return self.config.buffer_size_packets


@dataclass
class _FlowState:
    """Runtime state of one flow inside the engine."""

    flow_id: int
    path: tuple[int, ...]
    base_rtt_s: float
    cwnd_pkts: float = INITIAL_CWND_PKTS
    pacing_pps: float | None = None
    monitor: FlowMonitor = field(default=None)  # type: ignore[assignment]
    # Last-tick values cached for accessors.
    last_rtt_s: float = 0.0
    last_rate_pps: float = 0.0
    last_goodput_pps: float = 0.0
    total_delivered_pkts: float = 0.0
    total_lost_pkts: float = 0.0
    total_sent_pkts: float = 0.0


class FluidNetwork:
    """Multi-flow, multi-link fluid simulator.

    Parameters
    ----------
    links:
        The links of the network in the order flows traverse them (a path
        refers to links by name).  A single-bottleneck scenario passes one
        link.
    traces:
        Optional per-link capacity traces, keyed by link name.  Links
        without a trace run at their configured constant bandwidth.
    seed:
        Seeds the engine RNG (currently only used by stochastic-loss
        smoothing; the loss process itself is fluid and deterministic).
    faults:
        Optional :class:`~repro.netsim.faults.FaultSchedule` of link
        impairments (blackouts, flaps, loss bursts, delay spikes, reorder
        windows) applied to every link on each tick.
    """

    def __init__(self, links: list[LinkConfig] | LinkConfig,
                 traces: dict[str, CapacityTrace] | None = None,
                 seed: int = 0, faults: FaultSchedule | None = None):
        if isinstance(links, LinkConfig):
            links = [links]
        if not links:
            raise SimulationError("a network needs at least one link")
        names = [l.name for l in links]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate link names: {names}")
        traces = traces or {}
        self._links = [
            _LinkState(
                config=l,
                trace=traces.get(l.name, ConstantTrace(l.bandwidth_mbps)),
                qdisc=create_qdisc(l.qdisc, **l.qdisc_kwargs),
            )
            for l in links
        ]
        self._link_index = {l.name: i for i, l in enumerate(links)}
        self._flows: dict[int, _FlowState] = {}
        self._next_flow_id = 0
        self._rng = np.random.default_rng(seed)
        self._faults = faults if faults else None
        self.now = 0.0

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------

    def add_flow(self, base_rtt_s: float, path: list[str] | None = None,
                 cwnd_pkts: float = INITIAL_CWND_PKTS,
                 pacing_pps: float | None = None) -> int:
        """Register a flow and return its engine id.

        ``path`` lists link names in traversal order; ``None`` means "all
        links in network order", which is the single-bottleneck default.
        """
        if base_rtt_s <= 0:
            raise SimulationError(f"base rtt must be positive, got {base_rtt_s}")
        if path is None:
            link_ids = tuple(range(len(self._links)))
        else:
            try:
                link_ids = tuple(self._link_index[name] for name in path)
            except KeyError as exc:
                raise SimulationError(f"unknown link in path: {exc}") from None
            if not link_ids:
                raise SimulationError("a flow path needs at least one link")
        fid = self._next_flow_id
        self._next_flow_id += 1
        flow = _FlowState(
            flow_id=fid,
            path=link_ids,
            base_rtt_s=base_rtt_s,
            cwnd_pkts=max(cwnd_pkts, MIN_CWND_PKTS),
            pacing_pps=pacing_pps,
            monitor=FlowMonitor(base_rtt_s),
        )
        flow.last_rtt_s = base_rtt_s
        self._flows[fid] = flow
        return fid

    def remove_flow(self, fid: int) -> None:
        """Deregister a flow (its remaining queued fluid is discarded)."""
        self._flows.pop(fid, None)

    def set_cwnd(self, fid: int, cwnd_pkts: float,
                 pacing_pps: float | None = None) -> None:
        """Apply a controller decision to a flow."""
        flow = self._require(fid)
        if not np.isfinite(cwnd_pkts):
            raise SimulationError(f"non-finite cwnd for flow {fid}: {cwnd_pkts}")
        flow.cwnd_pkts = float(np.clip(cwnd_pkts, MIN_CWND_PKTS, 1e9))
        flow.pacing_pps = pacing_pps

    def _require(self, fid: int) -> _FlowState:
        try:
            return self._flows[fid]
        except KeyError:
            raise SimulationError(f"unknown flow id {fid}") from None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def flow_ids(self) -> list[int]:
        """Ids of all currently registered flows."""
        return list(self._flows)

    def monitor(self, fid: int) -> FlowMonitor:
        """The sender-side monitor of a flow."""
        return self._require(fid).monitor

    def cwnd(self, fid: int) -> float:
        """Current congestion window of a flow in packets."""
        return self._require(fid).cwnd_pkts

    def flow_rtt_s(self, fid: int) -> float:
        """Instantaneous RTT of a flow (base plus path queueing delay)."""
        return self._require(fid).last_rtt_s

    def flow_rate_pps(self, fid: int) -> float:
        """Instantaneous sending rate of a flow (pkts/s)."""
        return self._require(fid).last_rate_pps

    def flow_goodput_pps(self, fid: int) -> float:
        """Instantaneous delivery rate of a flow (pkts/s)."""
        return self._require(fid).last_goodput_pps

    def pkts_in_flight(self, fid: int) -> float:
        """Approximate packets in flight (rate times RTT, capped by cwnd)."""
        flow = self._require(fid)
        return min(flow.last_rate_pps * flow.last_rtt_s, flow.cwnd_pkts)

    def queue_pkts(self, link_name: str | None = None) -> float:
        """Current backlog of a link (first link by default), in packets."""
        idx = 0 if link_name is None else self._link_index[link_name]
        return self._links[idx].queue_pkts

    def queue_delay_s(self, link_name: str | None = None) -> float:
        """Current queueing delay of a link in seconds.

        During a blackout the drain-time estimate uses the unimpaired
        capacity (the backlog clears at that rate once service resumes).
        """
        idx = 0 if link_name is None else self._link_index[link_name]
        link = self._links[idx]
        cap = self.link_capacity_pps(link_name)
        if cap <= 0:
            cap = link.capacity_pps(self.now)
        return link.queue_pkts / cap if cap > 0 else 0.0

    def link_capacity_pps(self, link_name: str | None = None) -> float:
        """Instantaneous capacity of a link (pkts/s), faults applied."""
        idx = 0 if link_name is None else self._link_index[link_name]
        cap = self._links[idx].capacity_pps(self.now)
        if self._faults is not None:
            cap *= self._faults.bandwidth_multiplier(self.now)
        return cap

    def link_drops_pkts(self, link_name: str | None = None) -> float:
        """Cumulative packets dropped at a link."""
        idx = 0 if link_name is None else self._link_index[link_name]
        return self._links[idx].total_dropped_pkts

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Advance the network by one tick of ``dt`` seconds."""
        if dt <= 0:
            raise SimulationError(f"tick must be positive, got {dt}")
        flows = list(self._flows.values())
        t = self.now
        n_links = len(self._links)
        # Fault impairments are uniform across links (single-bottleneck
        # scenarios dominate; a multi-link path degrades end to end).
        fault_mult, fault_loss = 1.0, 0.0
        fault_spurious, fault_delay = 0.0, 0.0
        if self._faults is not None:
            fault_mult = self._faults.bandwidth_multiplier(t)
            fault_loss = self._faults.extra_loss(t)
            fault_spurious = self._faults.spurious_loss(t)
            fault_delay = self._faults.extra_delay_s(t)
        qdelay = np.empty(n_links)
        capacity = np.empty(n_links)
        for li, link in enumerate(self._links):
            capacity[li] = link.capacity_pps(t) * fault_mult
            if capacity[li] > 0:
                qdelay[li] = link.queue_pkts / capacity[li]
            else:
                # Blackout: estimate drain time at the unimpaired rate so
                # RTTs stay finite (service resumes at that rate).
                nominal = link.capacity_pps(t)
                qdelay[li] = link.queue_pkts / nominal if nominal > 0 else 0.0

        if not flows:
            # Queues still drain when idle.
            for li, link in enumerate(self._links):
                drained = min(link.queue_pkts, capacity[li] * dt)
                link.queue_pkts -= drained
                link.total_delivered_pkts += drained
            self.now = t + dt
            return

        n = len(flows)
        base_rtt = np.array([f.base_rtt_s for f in flows])
        cwnd = np.array([f.cwnd_pkts for f in flows])
        pacing = np.array(
            [f.pacing_pps if f.pacing_pps is not None else np.inf for f in flows]
        )
        path_delay = np.zeros(n)
        for i, f in enumerate(flows):
            for li in f.path:
                path_delay[i] += qdelay[li]
        rtt = base_rtt + path_delay + fault_delay

        # Window-limited sending rate, optionally pacing-capped.
        rate = np.minimum(cwnd / rtt, pacing)
        sent = rate * dt
        lost = np.zeros(n)
        marked = np.zeros(n)

        # Push the fluid through each link in network order.  A flow's rate
        # entering a link is its departure rate from the previous hop.
        current = rate.copy()
        for li, link in enumerate(self._links):
            on_link = [i for i, f in enumerate(flows) if li in f.path]
            if not on_link:
                drained = min(link.queue_pkts, capacity[li] * dt)
                link.queue_pkts -= drained
                link.total_delivered_pkts += drained
                continue
            idx = np.array(on_link)
            arrival = current[idx]
            # Active queue management: early-drop a fraction of arrivals.
            early = link.qdisc.drop_fraction(
                link.queue_pkts, qdelay[li], t, dt)
            if early > 0:
                early_drop = arrival * early
                lost[idx] += early_drop * dt
                link.total_dropped_pkts += float(early_drop.sum()) * dt
                arrival = arrival - early_drop
            total_arrival = float(arrival.sum())
            link.total_arrived_pkts += total_arrival * dt
            q_tentative = link.queue_pkts + (total_arrival - capacity[li]) * dt
            dropped_pkts = 0.0
            if q_tentative > link.buffer_pkts:
                dropped_pkts = q_tentative - link.buffer_pkts
                q_new = link.buffer_pkts
            else:
                q_new = max(q_tentative, 0.0)
            delivered_pkts = (
                link.queue_pkts + total_arrival * dt - dropped_pkts - q_new
            )
            departure = delivered_pkts / dt
            link.queue_pkts = q_new
            link.total_delivered_pkts += delivered_pkts
            link.total_dropped_pkts += dropped_pkts
            if total_arrival > 0:
                share = arrival / total_arrival
            else:
                share = np.zeros_like(arrival)
            out = share * departure
            drop_rate = share * (dropped_pkts / dt)
            # ECN marking: a fraction of what passes through is marked.
            mark = link.qdisc.mark_fraction(link.queue_pkts, qdelay[li],
                                            t, dt)
            if mark > 0:
                marked[idx] += out * mark * dt
            # Stochastic (non-congestion) loss happens on the wire after the
            # queue; it removes goodput but does not occupy the buffer.
            # Fault-injected loss bursts add to the configured rate.
            p = min(link.config.random_loss + fault_loss, 0.99)
            if p > 0:
                rand_loss = out * p
                out = out - rand_loss
                drop_rate = drop_rate + rand_loss
            # Reordering: a fraction of deliveries is *signalled* lost
            # (duplicate-ACK spurious retransmits) but still arrives, so
            # it inflates the loss observation without touching goodput.
            if fault_spurious > 0:
                drop_rate = drop_rate + out * fault_spurious
            lost[idx] += drop_rate * dt
            current[idx] = out

        delivered = current * dt

        # Record per-flow samples; they become observable one ACK-return
        # delay (~rtt/2 from the bottleneck's perspective) later.
        for i, f in enumerate(flows):
            f.last_rtt_s = float(rtt[i])
            f.last_rate_pps = float(rate[i])
            f.last_goodput_pps = float(current[i])
            f.total_sent_pkts += float(sent[i])
            f.total_delivered_pkts += float(delivered[i])
            f.total_lost_pkts += float(lost[i])
            f.monitor.push(TickSample(
                time=t,
                avail_at=t + dt + rtt[i] / 2.0,
                dt=dt,
                rtt_s=float(rtt[i]),
                sent_pkts=float(sent[i]),
                delivered_pkts=float(delivered[i]),
                lost_pkts=float(lost[i]),
                marked_pkts=float(marked[i]),
            ))

        self.now = t + dt
