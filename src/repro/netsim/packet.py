"""Packet-level discrete-event simulator (single bottleneck).

The fluid engine is fast enough for training and large parameter sweeps,
but it is an approximation.  This module provides a reference packet-level
simulator — a drop-tail FIFO bottleneck with per-packet service, explicit
propagation delay and per-packet random loss — used by the fidelity tests
to check that the fluid model's per-MTP statistics (throughput shares,
RTT inflation, loss under overload) agree with real FIFO queueing, and by
integration tests that drive full CC controllers per-ACK-clocked.

Event model
-----------
All propagation delay is folded into the ACK return path, so a packet's
measured RTT is ``queue_wait + service_time + base_rtt`` — identical in
expectation to the fluid model's ``base_rtt + queue/capacity``.  Senders
are cwnd-limited and optionally paced; drops are tail drops plus Bernoulli
random loss, and the sender learns of a drop one base RTT after it happens
(a duplicate-ACK-like notification), which also releases the in-flight slot.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..config import LinkConfig
from ..errors import SimulationError
from ..units import mbps_to_pps
from .faults import FaultSchedule

_SEND = 0
_SERVICE_DONE = 1
_ACK = 2
_LOSS_NOTE = 3
_MTP = 4


@dataclass
class PacketFlowStats:
    """Cumulative per-flow counters exposed after a run."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    rtt_sum: float = 0.0

    @property
    def avg_rtt_s(self) -> float:
        return self.rtt_sum / self.delivered if self.delivered else 0.0


@dataclass
class _Flow:
    fid: int
    cwnd: float
    base_rtt_s: float
    max_cwnd: float = float("inf")
    pacing_pps: float | None = None
    start_s: float = 0.0
    stop_s: float = float("inf")
    inflight: int = 0
    next_send_ok: float = 0.0
    send_event_at: float = -1.0
    stats: PacketFlowStats = field(default_factory=PacketFlowStats)
    # Per-MTP accumulators.
    mtp_delivered: int = 0
    mtp_lost: int = 0
    mtp_sent: int = 0
    mtp_rtt_sum: float = 0.0


class PacketNetwork:
    """Single-bottleneck packet-level simulator.

    Flows are added with :meth:`add_flow`; an optional per-flow callback
    ``on_mtp(stats_dict) -> new_cwnd`` runs every ``mtp_s`` and may adjust
    the window, which lets real controllers drive the packet engine.
    """

    def __init__(self, link: LinkConfig, seed: int = 0, mtp_s: float = 0.030,
                 faults: FaultSchedule | None = None):
        self._link = link
        self._faults = faults if faults else None
        self._capacity_pps = mbps_to_pps(link.bandwidth_mbps)
        self._buffer_pkts = int(round(link.buffer_size_packets))
        self._queue: deque[tuple[int, float]] = deque()
        self._busy = False
        self._events: list[tuple[float, int, int, int, float]] = []
        self._counter = itertools.count()
        self._flows: dict[int, _Flow] = {}
        self._callbacks: dict[int, object] = {}
        self._rng = np.random.default_rng(seed)
        self._mtp_s = mtp_s
        self.now = 0.0

    # ------------------------------------------------------------------

    def add_flow(self, base_rtt_s: float, cwnd: float = 10.0,
                 pacing_pps: float | None = None,
                 on_mtp=None, start_s: float = 0.0,
                 stop_s: float = float("inf")) -> int:
        """Register a flow; returns its id.  Must be called before run().

        The flow sends only inside ``[start_s, stop_s)``; in-flight
        packets launched before ``stop_s`` still drain normally.
        """
        if base_rtt_s <= 0:
            raise SimulationError("base rtt must be positive")
        if start_s < 0:
            raise SimulationError("flow start must be >= 0")
        if stop_s <= start_s:
            raise SimulationError("flow stop must be after its start")
        fid = len(self._flows)
        # Cap the acceptable window at the pipe limit (buffer plus a few
        # bandwidth-delay products).  Every packet beyond it is an
        # immediate, guaranteed tail drop: simulating each one costs an
        # event while telling the sender nothing it does not already see
        # at the cap, and rate-based schemes (BBR, Vivace, Astraea) can
        # otherwise push cwnd so high during a blackout that the event
        # queue grows without bound.
        max_cwnd = self._buffer_pkts + 4.0 * self._capacity_pps * base_rtt_s
        self._flows[fid] = _Flow(fid=fid, cwnd=min(cwnd, max_cwnd),
                                 base_rtt_s=base_rtt_s, max_cwnd=max_cwnd,
                                 pacing_pps=pacing_pps, start_s=start_s,
                                 stop_s=stop_s)
        if on_mtp is not None:
            self._callbacks[fid] = on_mtp
        return fid

    def set_cwnd(self, fid: int, cwnd: float,
                 pacing_pps: float | None = None) -> None:
        flow = self._flows[fid]
        flow.cwnd = min(max(cwnd, 1.0), flow.max_cwnd)
        flow.pacing_pps = pacing_pps

    def stats(self, fid: int) -> PacketFlowStats:
        return self._flows[fid].stats

    # ------------------------------------------------------------------

    def _push(self, t: float, kind: int, fid: int, payload: float = 0.0) -> None:
        heapq.heappush(self._events, (t, next(self._counter), kind, fid, payload))

    def _try_send(self, flow: _Flow) -> None:
        """Send as permitted by cwnd and pacing; schedules follow-ups."""
        if (self.now < flow.start_s - 1e-12
                or self.now >= flow.stop_s - 1e-12):
            return
        while flow.inflight < int(flow.cwnd):
            if flow.pacing_pps is not None and self.now < flow.next_send_ok:
                # One pending wake-up per flow: every ACK retries the send,
                # and re-pushing an identical event per attempt floods the
                # heap at high ACK rates.
                if flow.send_event_at < flow.next_send_ok:
                    self._push(flow.next_send_ok, _SEND, flow.fid)
                    flow.send_event_at = flow.next_send_ok
                return
            flow.inflight += 1
            flow.stats.sent += 1
            flow.mtp_sent += 1
            if flow.pacing_pps:
                flow.next_send_ok = max(flow.next_send_ok, self.now) + 1.0 / flow.pacing_pps
            self._enqueue(flow)

    def _enqueue(self, flow: _Flow) -> None:
        if len(self._queue) >= self._buffer_pkts and (self._busy or self._queue):
            # Tail drop; the sender learns one base RTT later.
            flow.stats.lost += 1
            flow.mtp_lost += 1
            self._push(self.now + flow.base_rtt_s, _LOSS_NOTE, flow.fid)
            return
        self._queue.append((flow.fid, self.now))
        if not self._busy:
            self._start_service()

    def _service_done_at(self) -> float:
        """When the packet now entering service finishes.

        Faults slow the server (bandwidth flap) or park it until the end
        of a blackout — the queue keeps filling and tail-drops meanwhile,
        exactly as a dead link behaves.
        """
        base = 1.0 / self._capacity_pps
        if self._faults is None:
            return self.now + base
        until = self._faults.blackout_until(self.now)
        if until is not None:
            return until + base
        mult = self._faults.bandwidth_multiplier(self.now)
        return self.now + base / mult

    def _start_service(self) -> None:
        self._busy = True
        self._push(self._service_done_at(), _SERVICE_DONE, -1)

    def _loss_probability(self) -> float:
        """Configured random loss plus any fault-injected loss.

        Reorder windows contribute here too: at packet level the spurious
        duplicate-ACK signal is approximated as loss (the fluid engine
        keeps the goodput and only inflates the observation).
        """
        p = self._link.random_loss
        if self._faults is not None:
            p += self._faults.extra_loss(self.now)
            p += self._faults.spurious_loss(self.now)
        return min(p, 0.99)

    def _finish_service(self) -> None:
        if not self._queue:
            self._busy = False
            return
        fid, enq_time = self._queue.popleft()
        flow = self._flows[fid]
        delay = flow.base_rtt_s
        if self._faults is not None:
            delay += self._faults.extra_delay_s(self.now)
        p_loss = self._loss_probability()
        if p_loss > 0 and self._rng.random() < p_loss:
            flow.stats.lost += 1
            flow.mtp_lost += 1
            self._push(self.now + delay, _LOSS_NOTE, fid)
        else:
            rtt = (self.now - enq_time) + delay
            self._push(self.now + delay, _ACK, fid, rtt)
        if self._queue:
            self._push(self._service_done_at(), _SERVICE_DONE, -1)
        else:
            self._busy = False

    def _fire_mtp(self, fid: int) -> None:
        flow = self._flows[fid]
        cb = self._callbacks.get(fid)
        if cb is not None:
            stats = {
                "time_s": self.now,
                "duration_s": self._mtp_s,
                "throughput_pps": flow.mtp_delivered / self._mtp_s,
                "avg_rtt_s": (flow.mtp_rtt_sum / flow.mtp_delivered
                              if flow.mtp_delivered else flow.base_rtt_s),
                "lost_pkts": float(flow.mtp_lost),
                "sent_pkts": float(flow.mtp_sent),
                "pkts_in_flight": float(flow.inflight),
                "cwnd_pkts": flow.cwnd,
            }
            new_cwnd = cb(stats)
            if new_cwnd is not None:
                self.set_cwnd(fid, float(new_cwnd), flow.pacing_pps)
        flow.mtp_delivered = flow.mtp_lost = flow.mtp_sent = 0
        flow.mtp_rtt_sum = 0.0
        if self.now < flow.stop_s - 1e-12:
            self._push(self.now + self._mtp_s, _MTP, fid)
        self._try_send(flow)

    # ------------------------------------------------------------------

    def run(self, duration_s: float) -> None:
        """Run the event loop for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        end = self.now + duration_s
        for flow in self._flows.values():
            start = max(self.now, flow.start_s)
            self._push(start, _SEND, flow.fid)
            self._push(start + self._mtp_s, _MTP, flow.fid)
        while self._events:
            t, _, kind, fid, payload = heapq.heappop(self._events)
            if t > end:
                break
            self.now = t
            if kind == _SERVICE_DONE:
                self._finish_service()
            elif kind == _ACK:
                flow = self._flows[fid]
                flow.inflight = max(flow.inflight - 1, 0)
                flow.stats.delivered += 1
                flow.stats.rtt_sum += payload
                flow.mtp_delivered += 1
                flow.mtp_rtt_sum += payload
                self._try_send(flow)
            elif kind == _LOSS_NOTE:
                flow = self._flows[fid]
                flow.inflight = max(flow.inflight - 1, 0)
                self._try_send(flow)
            elif kind == _SEND:
                flow = self._flows[fid]
                flow.send_event_at = -1.0
                self._try_send(flow)
            elif kind == _MTP:
                self._fire_mtp(fid)
        self.now = end
