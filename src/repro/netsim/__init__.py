"""Network emulation substrate: fluid and packet-level simulators.

This package replaces the paper's Mahimahi/Pantheon-tunnel emulation stack
(see DESIGN.md §2 for the substitution argument).
"""

from .faults import (
    BandwidthFlap,
    Blackout,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    LossBurst,
    ReorderWindow,
)
from .fluid import FluidNetwork, INITIAL_CWND_PKTS, MIN_CWND_PKTS
from .flowgen import (
    heterogeneous_rtt_flows,
    poisson_flows,
    randomized_training_flows,
    simultaneous_flows,
    staggered_flows,
)
from .packet import PacketNetwork
from .qdisc import CoDel, DropTail, QueueDiscipline, Red, create_qdisc
from .stats import FlowMonitor, MtpStats, TickSample
from .topology import TopologyConfig, parking_lot, parking_lot_ideal_shares
from .traces import (
    CapacityTrace,
    ConstantTrace,
    DiurnalTrace,
    LteTrace,
    StepTrace,
    WanTrace,
    WifiTrace,
    create_trace,
)

__all__ = [
    "FluidNetwork",
    "PacketNetwork",
    "FaultEvent",
    "FaultSchedule",
    "Blackout",
    "BandwidthFlap",
    "LossBurst",
    "DelaySpike",
    "ReorderWindow",
    "QueueDiscipline",
    "DropTail",
    "Red",
    "CoDel",
    "create_qdisc",
    "FlowMonitor",
    "MtpStats",
    "TickSample",
    "CapacityTrace",
    "ConstantTrace",
    "StepTrace",
    "LteTrace",
    "WanTrace",
    "WifiTrace",
    "DiurnalTrace",
    "create_trace",
    "TopologyConfig",
    "parking_lot",
    "parking_lot_ideal_shares",
    "staggered_flows",
    "simultaneous_flows",
    "heterogeneous_rtt_flows",
    "poisson_flows",
    "randomized_training_flows",
    "INITIAL_CWND_PKTS",
    "MIN_CWND_PKTS",
]
