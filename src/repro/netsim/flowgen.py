"""Flow generation (§3.2, "Flow generator").

The environment starts flows according to a user-defined configuration —
start times, running times, CC scheme, per-flow extra delay — and supports
randomised arrivals.  The paper recommends Poisson arrivals over
deterministic ones so the RL agent does not overfit a fixed traffic
pattern; :func:`poisson_flows` implements that recommendation and
:func:`staggered_flows` the deterministic fixed-interval pattern used by
most evaluation scenarios (e.g. three flows at 40 s intervals in Fig. 6).
"""

from __future__ import annotations

import numpy as np

from ..config import FlowConfig
from ..errors import ConfigError


def staggered_flows(n: int, cc: str = "astraea", interval_s: float = 40.0,
                    duration_s: float | None = 120.0,
                    extra_rtt_ms: float = 0.0, **cc_kwargs) -> tuple[FlowConfig, ...]:
    """``n`` identical flows starting ``interval_s`` apart.

    This is the canonical convergence-study arrival pattern: each flow runs
    for ``duration_s`` so that consecutive flows overlap and the scheme's
    reaction to both arrivals and departures is visible.
    """
    if n <= 0:
        raise ConfigError(f"flow count must be positive, got {n}")
    if interval_s < 0:
        raise ConfigError("interval must be >= 0")
    return tuple(
        FlowConfig(cc=cc, start_s=i * interval_s, duration_s=duration_s,
                   extra_rtt_ms=extra_rtt_ms, cc_kwargs=dict(cc_kwargs))
        for i in range(n)
    )


def simultaneous_flows(n: int, cc: str = "astraea",
                       duration_s: float | None = None,
                       extra_rtt_ms: float = 0.0, **cc_kwargs) -> tuple[FlowConfig, ...]:
    """``n`` identical flows all starting at t=0."""
    return staggered_flows(n, cc=cc, interval_s=0.0, duration_s=duration_s,
                           extra_rtt_ms=extra_rtt_ms, **cc_kwargs)


def heterogeneous_rtt_flows(n: int, cc: str, rtt_range_ms: tuple[float, float],
                            link_rtt_ms: float,
                            duration_s: float | None = None) -> tuple[FlowConfig, ...]:
    """``n`` flows whose base RTTs evenly span ``rtt_range_ms``.

    The link contributes ``link_rtt_ms``; per-flow extra delay makes up the
    difference, mirroring the RTT-fairness setup of Fig. 8 (five flows with
    base RTTs evenly spaced between 40 and 200 ms).
    """
    lo, hi = rtt_range_ms
    if lo < link_rtt_ms:
        raise ConfigError(
            f"smallest flow RTT {lo} ms is below the link base RTT {link_rtt_ms} ms"
        )
    if n <= 0:
        raise ConfigError("flow count must be positive")
    rtts = np.linspace(lo, hi, n) if n > 1 else np.array([lo])
    return tuple(
        FlowConfig(cc=cc, start_s=0.0, duration_s=duration_s,
                   extra_rtt_ms=float(r - link_rtt_ms))
        for r in rtts
    )


def poisson_flows(rate_per_s: float, horizon_s: float, cc: str = "astraea",
                  mean_duration_s: float = 30.0, seed: int = 0,
                  max_flows: int | None = None) -> tuple[FlowConfig, ...]:
    """Poisson flow arrivals with exponential holding times.

    Arrivals form a Poisson process of intensity ``rate_per_s`` over
    ``[0, horizon_s)``; each flow's duration is exponential with mean
    ``mean_duration_s``.  Used during training to randomise competition
    patterns (§3.2).
    """
    if rate_per_s <= 0 or horizon_s <= 0 or mean_duration_s <= 0:
        raise ConfigError("rate, horizon and mean duration must be positive")
    rng = np.random.default_rng(seed)
    flows = []
    t = rng.exponential(1.0 / rate_per_s)
    while t < horizon_s:
        flows.append(FlowConfig(
            cc=cc,
            start_s=float(t),
            duration_s=float(max(rng.exponential(mean_duration_s), 1.0)),
        ))
        if max_flows is not None and len(flows) >= max_flows:
            break
        t += rng.exponential(1.0 / rate_per_s)
    if not flows:
        flows.append(FlowConfig(cc=cc, start_s=0.0, duration_s=mean_duration_s))
    return tuple(flows)


def randomized_training_flows(n: int, horizon_s: float, seed: int,
                              cc: str = "astraea",
                              rtt_jitter_ms: tuple[float, float] = (0.0, 120.0),
                              ) -> tuple[FlowConfig, ...]:
    """Training-episode arrivals: randomised starts, durations and RTTs.

    The first flow starts at t=0 so the link is never idle; the rest start
    uniformly in the first third of the episode and run until (close to) the
    end, giving long co-existence windows in which fairness is measurable.
    Per-flow extra delay injects the RTT heterogeneity the paper trains
    with; the wide default jitter is what teaches the policy *absolute*
    (RTT-independent) queue-delay responses and hence RTT fairness (§5.1.2).
    """
    if n <= 0:
        raise ConfigError("flow count must be positive")
    rng = np.random.default_rng(seed)
    flows = []
    for i in range(n):
        start = 0.0 if i == 0 else float(rng.uniform(0.0, horizon_s / 3.0))
        duration = float(horizon_s - start - rng.uniform(0.0, horizon_s / 6.0))
        extra = float(rng.uniform(*rtt_jitter_ms))
        flows.append(FlowConfig(cc=cc, start_s=start,
                                duration_s=max(duration, horizon_s / 4.0),
                                extra_rtt_ms=extra))
    return tuple(flows)
