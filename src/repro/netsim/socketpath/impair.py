"""In-process impairment proxy: the emulated bottleneck on the wire.

Sender sockets address every DATA datagram to the proxy; the proxy
models the bottleneck (service rate, drop-tail queue, the attached
:class:`~repro.netsim.faults.FaultSchedule`) and forwards survivors to
the receiver after the computed release delay.  ACKs travel the reverse
path (loss and blackout apply, the queue does not — the return path is
assumed uncongested, as in both simulators).

Determinism despite real sockets: every drop/reorder decision hashes
``(seed, direction, flow, seq, attempt)`` into a unit float
(:func:`impairment_unit`), so the *fate* of each copy of each segment is
a pure function of the seeded schedule — independent of scheduling
jitter.  Only timing-derived metrics (RTT, throughput) vary run to run;
which segments die does not.

Fault-kind mapping (same semantics as the fluid/packet engines):

* ``Blackout`` — service is parked until the outage ends; arrivals keep
  queueing and overflow, ACKs are dropped outright.
* ``BandwidthFlap`` — the service rate is multiplied by the factor.
* ``LossBurst`` — extra random loss on top of ``link.random_loss``.
* ``DelaySpike`` — extra one-way delay on the data direction.
* ``ReorderWindow`` — the affected segment is held back several service
  times, creating genuine on-wire reordering (which the SACK-driven
  sender may answer with a spurious fast retransmit — the same
  duplicate-ACK signature the simulators model).
"""

from __future__ import annotations

import heapq
import socket
import struct
from collections import deque
from hashlib import blake2b

from ...config import LinkConfig
from ...errors import ConfigError, TransportError
from ...netsim.faults import MAX_FAULT_LOSS, FaultSchedule
from .transport import KIND_DATA, peek

_DIR_DATA_LOSS = 1
_DIR_DATA_REORDER = 2
_DIR_ACK_LOSS = 3

_MAX_DATAGRAM = 65535


def impairment_unit(seed: int, *keys: int) -> float:
    """Deterministic hash of integer keys onto ``[0, 1)``."""
    h = blake2b(digest_size=8)
    for k in (seed, *keys):
        h.update(struct.pack("!q", int(k)))
    return int.from_bytes(h.digest(), "big") / 2.0 ** 64


class ImpairmentLink:
    """Pure decision core: when (and whether) each datagram is released.

    All inputs/outputs are wall-clock seconds; ``sim_now`` (simulated
    seconds) is only used to query the fault schedule.  The bottleneck
    is a single-server queue: one segment takes ``1/rate`` to serialise,
    at most ``buffer`` segments may be waiting, and the fault schedule
    scales the rate (flap), parks the server (blackout), adds loss and
    delay, or holds segments back (reorder).
    """

    def __init__(self, link: LinkConfig, faults: FaultSchedule | None, *,
                 seed: int, time_scale: float, pkts_per_seg: int):
        if time_scale <= 0:
            raise ConfigError(f"time scale must be positive, "
                              f"got {time_scale}")
        if pkts_per_seg < 1:
            raise ConfigError(f"pkts_per_seg must be >= 1, "
                              f"got {pkts_per_seg}")
        self._faults = faults if faults is not None else FaultSchedule()
        self._seed = seed
        self._scale = time_scale
        #: Segments per *wall* second at nominal capacity.
        self._seg_rate0 = link.capacity_pps * time_scale / pkts_per_seg
        self._one_way_wall = link.one_way_delay_s / time_scale
        self._buffer_segs = max(2.0, link.buffer_size_packets / pkts_per_seg)
        self._random_loss = link.random_loss
        self._busy_until = 0.0
        self._departs: deque[float] = deque()
        self.drops = {"loss": 0, "overflow": 0, "blackout_ack": 0}
        self.reordered = 0

    @property
    def queue_segs(self) -> int:
        return len(self._departs)

    def data_release_wall(self, flow: int, seq: int, attempt: int,
                          now_wall: float, sim_now: float) -> float | None:
        """Release time for one DATA segment, ``None`` if dropped."""
        p = min(self._random_loss + self._faults.extra_loss(sim_now),
                MAX_FAULT_LOSS)
        if p > 0 and impairment_unit(self._seed, _DIR_DATA_LOSS, flow, seq,
                                     attempt) < p:
            self.drops["loss"] += 1
            return None
        while self._departs and self._departs[0] <= now_wall:
            self._departs.popleft()
        if len(self._departs) >= self._buffer_segs:
            self.drops["overflow"] += 1
            return None
        mult = self._faults.bandwidth_multiplier(sim_now)
        if mult <= 0.0:
            # Blackout: the server is parked until the outage clears,
            # but arrivals keep occupying the (overflowing) queue.
            until_sim = self._faults.blackout_until(sim_now)
            resume_wall = now_wall
            if until_sim is not None:
                resume_wall += max(0.0, until_sim - sim_now) / self._scale
            service = 1.0 / self._seg_rate0
            depart = max(resume_wall, self._busy_until) + service
        else:
            service = 1.0 / (self._seg_rate0 * mult)
            depart = max(now_wall, self._busy_until) + service
        self._busy_until = depart
        self._departs.append(depart)
        release = (depart + self._one_way_wall
                   + self._faults.extra_delay_s(sim_now) / self._scale)
        rr = self._faults.spurious_loss(sim_now)
        if rr > 0 and impairment_unit(self._seed, _DIR_DATA_REORDER, flow,
                                      seq, attempt) < rr:
            # Hold the segment long enough for several successors to
            # overtake it: real reordering on the wire.
            release += 4.0 * service + 0.5 * self._one_way_wall
            self.reordered += 1
        return release

    def ack_release_wall(self, flow: int, echo_seq: int, echo_attempt: int,
                         now_wall: float, sim_now: float) -> float | None:
        """Release time for one ACK, ``None`` if dropped."""
        if self._faults.bandwidth_multiplier(sim_now) <= 0.0:
            self.drops["blackout_ack"] += 1
            return None
        p = min(self._random_loss + self._faults.extra_loss(sim_now),
                MAX_FAULT_LOSS)
        if p > 0 and impairment_unit(self._seed, _DIR_ACK_LOSS, flow,
                                     echo_seq, echo_attempt) < p:
            self.drops["loss"] += 1
            return None
        return now_wall + self._one_way_wall


class ImpairmentProxy:
    """The UDP middlebox: one socket both directions route through.

    DATA frames learn the sender's address per flow (for the ACK return
    path) and are forwarded to the receiver; ACK frames go back to the
    recorded sender.  Forwarding is delayed through a release heap
    pumped by the runner's event loop.
    """

    def __init__(self, core: ImpairmentLink, clock, host: str = "127.0.0.1"):
        self.core = core
        self._clock = clock
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((host, 0))
        self.sock.setblocking(False)
        self.address = self.sock.getsockname()
        self._heap: list[tuple[float, int, bytes, tuple]] = []
        self._n = 0
        self._sender_addr: dict[int, tuple] = {}
        self._receiver_addr: tuple | None = None
        self.malformed = 0
        self.send_failures = 0

    def set_receiver(self, addr: tuple) -> None:
        self._receiver_addr = addr

    def on_readable(self) -> None:
        """Drain the socket, deciding each datagram's fate immediately."""
        now_wall = self._clock.now_wall()
        sim_now = self._clock.sim_at(now_wall)
        while True:
            try:
                data, addr = self.sock.recvfrom(_MAX_DATAGRAM)
            except BlockingIOError:
                break
            try:
                kind, flow, seq, attempt = peek(data)
            except TransportError:
                self.malformed += 1
                continue
            if kind == KIND_DATA:
                self._sender_addr[flow] = addr
                release = self.core.data_release_wall(flow, seq, attempt,
                                                      now_wall, sim_now)
                dest = self._receiver_addr
            else:
                release = self.core.ack_release_wall(flow, seq, attempt,
                                                     now_wall, sim_now)
                dest = self._sender_addr.get(flow)
            if release is None or dest is None:
                continue
            heapq.heappush(self._heap, (release, self._n, data, dest))
            self._n += 1

    def next_release_wall(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def pump(self) -> None:
        """Forward every datagram whose release time has arrived."""
        now_wall = self._clock.now_wall()
        while self._heap and self._heap[0][0] <= now_wall:
            _, _, data, dest = heapq.heappop(self._heap)
            try:
                self.sock.sendto(data, dest)
            except (BlockingIOError, OSError):
                # A full loopback buffer is just more loss; the
                # transport's retransmission machinery absorbs it.
                self.send_failures += 1

    def close(self) -> None:
        self.sock.close()
