"""Reliable-UDP segment layer for the loopback datapath.

The wire carries two frame kinds over UDP datagrams:

* **DATA** — ``kind u8 | flow u16 | seq u32 | attempt u8 | len u16 |
  payload`` — one sequence-numbered segment.  ``attempt`` counts
  transmissions of this seq (1 = original), so an ACK can echo exactly
  which copy it acknowledges and Karn's rule falls out for free.
* **ACK** — ``kind u8 | flow u16 | cum u32 | echo_seq u32 |
  echo_attempt u8 | n_sack u8 | n_sack x (start u32, end u32)`` — a
  cumulative acknowledgement (``cum`` = next in-order seq expected,
  everything below it delivered) plus up to :data:`MAX_SACK_BLOCKS`
  selective ranges ``[start, end)`` already held above the hole.

On top of that framing sit three small state machines:

* :class:`RtoEstimator` — RFC 6298 smoothed RTT/RTT variance with an
  adaptive retransmission timeout, exponential backoff capped at
  ``max_rto_s``, and backoff reset on any valid sample.
* :class:`SenderFlow` — the sliding-window sender: cwnd-bounded
  (re)transmission, SACK-driven fast retransmit, RTO-driven timeout
  retransmit, per-segment attempt budget and a no-progress stall budget,
  both of which give up with a typed
  :class:`~repro.errors.TransportStalledError`.
* :class:`ReceiverFlow` — in-order reassembly with duplicate
  suppression; every arriving segment is answered with one ACK.

All times at this layer are *wall-clock seconds* — the runner owns the
wall/simulated conversion.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable

from ...errors import ConfigError, TransportError, TransportStalledError

KIND_DATA = 1
KIND_ACK = 2

#: At most this many SACK ranges ride on one ACK (RFC 2018 carries 3-4).
MAX_SACK_BLOCKS = 3

_DATA_HDR = struct.Struct("!BHIBH")
_ACK_HDR = struct.Struct("!BHIIBB")
_SACK_BLK = struct.Struct("!II")

#: Datagrams above this are a protocol violation on the loopback path.
MAX_SEGMENT_BYTES = 2048


@dataclass(frozen=True)
class DataSegment:
    """One decoded DATA frame."""

    flow_id: int
    seq: int
    attempt: int
    payload: bytes


@dataclass(frozen=True)
class AckSegment:
    """One decoded ACK frame (``sacks`` are ``[start, end)`` ranges)."""

    flow_id: int
    cum: int
    echo_seq: int
    echo_attempt: int
    sacks: tuple[tuple[int, int], ...]


def encode_data(flow_id: int, seq: int, attempt: int,
                payload: bytes) -> bytes:
    """Serialise one DATA frame."""
    frame = _DATA_HDR.pack(KIND_DATA, flow_id, seq, attempt,
                           len(payload)) + payload
    if len(frame) > MAX_SEGMENT_BYTES:
        raise TransportError(
            f"segment of {len(frame)} bytes exceeds {MAX_SEGMENT_BYTES}")
    return frame


def encode_ack(flow_id: int, cum: int, echo_seq: int, echo_attempt: int,
               sacks: tuple[tuple[int, int], ...] = ()) -> bytes:
    """Serialise one ACK frame."""
    if len(sacks) > MAX_SACK_BLOCKS:
        sacks = sacks[:MAX_SACK_BLOCKS]
    parts = [_ACK_HDR.pack(KIND_ACK, flow_id, cum, echo_seq, echo_attempt,
                           len(sacks))]
    parts += [_SACK_BLK.pack(s, e) for s, e in sacks]
    return b"".join(parts)


def decode(data: bytes) -> DataSegment | AckSegment:
    """Parse one frame; raises :class:`TransportError` on garbage."""
    if not data:
        raise TransportError("empty datagram")
    kind = data[0]
    if kind == KIND_DATA:
        if len(data) < _DATA_HDR.size:
            raise TransportError(
                f"truncated DATA header ({len(data)} bytes)")
        _, flow_id, seq, attempt, length = _DATA_HDR.unpack_from(data)
        payload = data[_DATA_HDR.size:]
        if len(payload) != length:
            raise TransportError(
                f"DATA length field {length} != payload {len(payload)}")
        return DataSegment(flow_id, seq, attempt, payload)
    if kind == KIND_ACK:
        if len(data) < _ACK_HDR.size:
            raise TransportError(f"truncated ACK header ({len(data)} bytes)")
        _, flow_id, cum, echo_seq, echo_attempt, n_sack = \
            _ACK_HDR.unpack_from(data)
        need = _ACK_HDR.size + n_sack * _SACK_BLK.size
        if n_sack > MAX_SACK_BLOCKS or len(data) != need:
            raise TransportError(
                f"ACK with {n_sack} SACK blocks / {len(data)} bytes "
                f"is malformed")
        sacks = tuple(
            _SACK_BLK.unpack_from(data, _ACK_HDR.size + i * _SACK_BLK.size)
            for i in range(n_sack))
        for start, end in sacks:
            if end <= start:
                raise TransportError(f"empty SACK range [{start}, {end})")
        return AckSegment(flow_id, cum, echo_seq, echo_attempt, sacks)
    raise TransportError(f"unknown frame kind {kind}")


def peek(data: bytes) -> tuple[int, int, int, int]:
    """Header-only view ``(kind, flow_id, seq, attempt)`` for the proxy.

    For ACK frames ``seq``/``attempt`` are the echo fields — each
    distinct ACK still gets a distinct impairment key.
    """
    if not data:
        raise TransportError("empty datagram")
    kind = data[0]
    if kind == KIND_DATA and len(data) >= _DATA_HDR.size:
        _, flow_id, seq, attempt, _ = _DATA_HDR.unpack_from(data)
        return kind, flow_id, seq, attempt
    if kind == KIND_ACK and len(data) >= _ACK_HDR.size:
        _, flow_id, _, echo_seq, echo_attempt, _ = _ACK_HDR.unpack_from(data)
        return kind, flow_id, echo_seq, echo_attempt
    raise TransportError(f"unreadable header (kind {kind}, "
                         f"{len(data)} bytes)")


# ---------------------------------------------------------------------------
# RFC 6298-style retransmission timeout
# ---------------------------------------------------------------------------

RTO_ALPHA = 0.125   # srtt gain
RTO_BETA = 0.25     # rttvar gain
_MAX_BACKOFF_EXP = 16


class RtoEstimator:
    """Smoothed RTT / RTT variance with an adaptive, backed-off RTO.

    Units are whatever the caller feeds in (the runner uses wall
    seconds).  Properties the test suite pins: ``rto_s`` always lies in
    ``[min_rto_s, max_rto_s]``; consecutive :meth:`back_off` calls never
    decrease it; :meth:`observe` resets the backoff.
    """

    def __init__(self, *, min_rto_s: float, max_rto_s: float,
                 initial_rto_s: float | None = None):
        if min_rto_s <= 0 or max_rto_s < min_rto_s:
            raise ConfigError(
                f"need 0 < min_rto ({min_rto_s}) <= max_rto ({max_rto_s})")
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.srtt_s: float | None = None
        self.rttvar_s: float | None = None
        if initial_rto_s is None:
            initial_rto_s = min(4.0 * min_rto_s, max_rto_s)
        self._base_rto_s = self._clamp(initial_rto_s)
        self._backoff = 0

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min_rto_s), self.max_rto_s)

    @property
    def backoff(self) -> int:
        return self._backoff

    @property
    def rto_s(self) -> float:
        return self._clamp(self._base_rto_s * (2.0 ** self._backoff))

    def observe(self, sample_s: float) -> None:
        """Fold one valid RTT sample (resets any backoff)."""
        if not sample_s > 0:
            raise ConfigError(f"rtt sample must be positive, got {sample_s}")
        if self.srtt_s is None or self.rttvar_s is None:
            self.srtt_s = sample_s
            self.rttvar_s = sample_s / 2.0
        else:
            self.rttvar_s = ((1.0 - RTO_BETA) * self.rttvar_s
                             + RTO_BETA * abs(self.srtt_s - sample_s))
            self.srtt_s = ((1.0 - RTO_ALPHA) * self.srtt_s
                           + RTO_ALPHA * sample_s)
        self._base_rto_s = self._clamp(self.srtt_s + 4.0 * self.rttvar_s)
        self._backoff = 0

    def back_off(self) -> None:
        """Double the timeout after an expiry (capped at ``max_rto_s``)."""
        self._backoff = min(self._backoff + 1, _MAX_BACKOFF_EXP)


# ---------------------------------------------------------------------------
# Sender
# ---------------------------------------------------------------------------


class _Inflight:
    """Book-keeping for one unacknowledged segment."""

    __slots__ = ("seq", "attempt", "sent_wall", "rto_deadline",
                 "sack_passes", "rtx_queued")

    def __init__(self, seq: int, attempt: int, sent_wall: float,
                 rto_deadline: float):
        self.seq = seq
        self.attempt = attempt
        self.sent_wall = sent_wall
        self.rto_deadline = rto_deadline
        self.sack_passes = 0
        self.rtx_queued = False


class SenderFlow:
    """Sliding-window reliable sender over an unreliable datagram hop.

    ``payload_for_seq`` supplies the bytes of segment ``seq`` (called
    again on retransmission, so the sender never buffers payload);
    ``n_segments`` bounds a finite transfer (``None`` = endless stream).
    The runner polls :meth:`poll_segment` for the next datagram to put
    on the wire, feeds arriving ACKs to :meth:`on_ack` and calls
    :meth:`check_timers` every loop iteration.
    """

    def __init__(self, flow_id: int, *, rto: RtoEstimator,
                 payload_for_seq: Callable[[int], bytes],
                 n_segments: int | None = None,
                 cwnd_segs: float = 10.0,
                 max_attempts: int = 30,
                 stall_wall_s: float | None = None,
                 fast_rtx_dupes: int = 3,
                 now_wall: float = 0.0):
        if max_attempts < 1:
            raise ConfigError(
                f"need at least one attempt, got {max_attempts}")
        if fast_rtx_dupes < 1:
            raise ConfigError(
                f"fast-retransmit threshold must be >= 1, "
                f"got {fast_rtx_dupes}")
        self.flow_id = flow_id
        self.rto = rto
        self._payload_for_seq = payload_for_seq
        self.n_segments = n_segments
        self.cwnd_segs = cwnd_segs
        self.max_attempts = max_attempts
        self.stall_wall_s = stall_wall_s
        self.fast_rtx_dupes = fast_rtx_dupes
        #: Wall seconds between sends; ``None`` = window-clocked only.
        self.pace_gap_wall: float | None = None
        self._next_send_wall = now_wall
        self._next_seq = 0
        self._cum = 0                       # all seqs below are delivered
        self._inflight: dict[int, _Inflight] = {}
        self._attempts: dict[int, int] = {}  # total sends per open seq
        self._rtx: deque[int] = deque()
        self.last_progress_wall = now_wall
        # lifetime counters
        self.sent_segs = 0
        self.delivered_segs = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.rto_timeouts = 0
        # per-MTP window accumulators (drained by take_window)
        self._sent_w = 0
        self._delivered_w = 0
        self._lost_w = 0
        self._rtt_samples_w: list[float] = []

    # -- queries -------------------------------------------------------

    @property
    def inflight_segs(self) -> int:
        return len(self._inflight)

    @property
    def done(self) -> bool:
        """Every segment of a finite transfer acknowledged."""
        return (self.n_segments is not None
                and self._next_seq >= self.n_segments
                and not self._inflight and not self._rtx)

    def next_due_wall(self) -> float | None:
        """Earliest wall time at which the sender has timed work."""
        due = [e.rto_deadline for e in self._inflight.values()]
        if self.pace_gap_wall is not None and self._has_sendable():
            due.append(self._next_send_wall)
        return min(due) if due else None

    def _has_sendable(self) -> bool:
        if self._rtx:
            return True
        if self.n_segments is not None and self._next_seq >= self.n_segments:
            return False
        return len(self._inflight) < max(1, int(self.cwnd_segs))

    # -- sending -------------------------------------------------------

    def poll_segment(self, now_wall: float) -> bytes | None:
        """The next datagram to transmit, or ``None`` if nothing is due
        (window full, pacing gap not yet elapsed, transfer exhausted)."""
        if self.pace_gap_wall is not None and now_wall < self._next_send_wall:
            return None
        while self._rtx and self._rtx[0] not in self._inflight:
            self._rtx.popleft()       # acknowledged before the resend
        if self._rtx:
            seq = self._rtx.popleft()
            entry = self._inflight[seq]
            attempt = self._attempts[seq] + 1
            if attempt > self.max_attempts:
                raise TransportStalledError(
                    f"flow {self.flow_id} gave up on seq {seq} after "
                    f"{self._attempts[seq]} attempts",
                    flow_id=self.flow_id, seq=seq,
                    attempts=self._attempts[seq])
            self._attempts[seq] = attempt
            entry.attempt = attempt
            entry.sent_wall = now_wall
            entry.rto_deadline = now_wall + self.rto.rto_s
            entry.sack_passes = 0
            entry.rtx_queued = False
            self.retransmits += 1
        else:
            if not self._has_sendable():
                return None
            seq = self._next_seq
            self._next_seq += 1
            attempt = 1
            self._attempts[seq] = attempt
            self._inflight[seq] = _Inflight(seq, attempt, now_wall,
                                            now_wall + self.rto.rto_s)
        self.sent_segs += 1
        self._sent_w += 1
        if self.pace_gap_wall is not None:
            self._next_send_wall = now_wall + self.pace_gap_wall
        return encode_data(self.flow_id, seq, self._attempts[seq],
                           self._payload_for_seq(seq))

    # -- receiving -----------------------------------------------------

    def on_ack(self, ack: AckSegment, now_wall: float) -> None:
        """Fold one ACK: RTT sample, window advance, fast retransmit."""
        if ack.flow_id != self.flow_id:
            return
        entry = self._inflight.get(ack.echo_seq)
        if entry is not None and entry.attempt == ack.echo_attempt:
            # Karn's rule: only an un-retransmitted copy times the path.
            sample = now_wall - entry.sent_wall
            if sample > 0:
                self.rto.observe(sample)
                self._rtt_samples_w.append(sample)
        top_delivered: int | None = None
        if ack.cum > self._cum:
            for seq in range(self._cum, ack.cum):
                if self._pop_delivered(seq):
                    top_delivered = seq
            self._cum = ack.cum
            self.last_progress_wall = now_wall
        for start, end in ack.sacks:
            for seq in range(max(start, self._cum), end):
                if self._pop_delivered(seq):
                    top_delivered = seq if top_delivered is None \
                        else max(top_delivered, seq)
                    self.last_progress_wall = now_wall
        if top_delivered is None:
            return
        # A delivery above a still-missing seq is one reordering pass;
        # enough passes and the hole is declared lost (fast retransmit).
        for seq, entry in self._inflight.items():
            if seq >= top_delivered or entry.rtx_queued:
                continue
            entry.sack_passes += 1
            if entry.sack_passes >= self.fast_rtx_dupes:
                entry.rtx_queued = True
                self._rtx.append(seq)
                self.fast_retransmits += 1
                self._lost_w += 1

    def _pop_delivered(self, seq: int) -> bool:
        entry = self._inflight.pop(seq, None)
        if entry is None:
            return False
        self._attempts.pop(seq, None)
        self.delivered_segs += 1
        self._delivered_w += 1
        return True

    # -- timers --------------------------------------------------------

    def check_timers(self, now_wall: float) -> None:
        """Fire expired RTOs; raise on an exhausted stall budget."""
        if not self._inflight:
            self.last_progress_wall = now_wall
            return
        if (self.stall_wall_s is not None
                and now_wall - self.last_progress_wall > self.stall_wall_s):
            oldest = min(self._inflight)
            raise TransportStalledError(
                f"flow {self.flow_id} made no progress for "
                f"{now_wall - self.last_progress_wall:.3f}s wall "
                f"(oldest unacked seq {oldest})",
                flow_id=self.flow_id, seq=oldest,
                attempts=self._attempts.get(oldest))
        fired = False
        for entry in self._inflight.values():
            if entry.rto_deadline > now_wall or entry.rtx_queued:
                continue
            if self._attempts[entry.seq] >= self.max_attempts:
                raise TransportStalledError(
                    f"flow {self.flow_id} gave up on seq {entry.seq} "
                    f"after {self._attempts[entry.seq]} attempts "
                    f"(rto {self.rto.rto_s:.4f}s)",
                    flow_id=self.flow_id, seq=entry.seq,
                    attempts=self._attempts[entry.seq])
            entry.rtx_queued = True
            self._rtx.appendleft(entry.seq)
            entry.rto_deadline = now_wall + self.rto.rto_s
            self.rto_timeouts += 1
            self._lost_w += 1
            fired = True
        if fired:
            self.rto.back_off()

    # -- MTP window ----------------------------------------------------

    def take_window(self) -> tuple[int, int, int, list[float]]:
        """Drain ``(sent, delivered, lost, rtt_samples)`` since last call."""
        out = (self._sent_w, self._delivered_w, self._lost_w,
               self._rtt_samples_w)
        self._sent_w = self._delivered_w = self._lost_w = 0
        self._rtt_samples_w = []
        return out


# ---------------------------------------------------------------------------
# Receiver
# ---------------------------------------------------------------------------


class ReceiverFlow:
    """In-order reassembly with duplicate suppression and SACK feedback.

    ``expected_for_seq`` optionally verifies payload content (the stream
    mode of the scenario runner checks every segment against the
    deterministic generator and counts mismatches in ``corrupt``);
    ``capture=True`` additionally retains delivered payloads in order
    (:func:`~.runner.transfer_payload` reassembles from ``chunks``).
    """

    def __init__(self, flow_id: int, *,
                 expected_for_seq: Callable[[int], bytes] | None = None,
                 capture: bool = False,
                 max_sack_blocks: int = MAX_SACK_BLOCKS):
        self.flow_id = flow_id
        self._expected_for_seq = expected_for_seq
        self._capture = capture
        self._max_sack_blocks = max_sack_blocks
        self.cum = 0
        self._above: dict[int, bytes] = {}
        self.delivered_segs = 0
        self.duplicates = 0
        self.corrupt = 0
        self.chunks: list[bytes] = []

    def on_data(self, seg: DataSegment) -> bytes:
        """Accept one segment; returns the encoded ACK to send back."""
        seq = seg.seq
        if seq < self.cum or seq in self._above:
            self.duplicates += 1
        else:
            if (self._expected_for_seq is not None
                    and seg.payload != self._expected_for_seq(seq)):
                self.corrupt += 1
            self._above[seq] = seg.payload if self._capture else b""
            while self.cum in self._above:
                payload = self._above.pop(self.cum)
                if self._capture:
                    self.chunks.append(payload)
                self.delivered_segs += 1
                self.cum += 1
        return encode_ack(self.flow_id, self.cum, seq, seg.attempt,
                          self._sack_blocks())

    def _sack_blocks(self) -> tuple[tuple[int, int], ...]:
        blocks: list[list[int]] = []
        for seq in sorted(self._above):
            if blocks and seq == blocks[-1][1]:
                blocks[-1][1] = seq + 1
            elif len(blocks) < self._max_sack_blocks:
                blocks.append([seq, seq + 1])
            else:
                break
        return tuple((s, e) for s, e in blocks)
