"""Loopback-UDP datapath: the third engine (fluid / packet / socket).

The same :class:`~repro.cc.base.CongestionController` interface that
drives the simulators drives a real sender/receiver pair over localhost
UDP sockets here.  :mod:`.transport` implements the reliable-UDP segment
layer (cumulative ACK + SACK, RFC 6298-style RTO), :mod:`.impair` the
deterministic in-process impairment proxy honouring
:class:`~repro.netsim.faults.FaultSchedule`, and :mod:`.runner` the
event loop plus :func:`run_scenario_socket`, which mirrors
:func:`~repro.env.packetrun.run_scenario_packet`.
"""

from .runner import (  # noqa: F401
    SocketRunReport,
    SocketTuning,
    TransferReport,
    run_scenario_socket,
    run_scenario_socket_report,
    transfer_payload,
)
from .transport import (  # noqa: F401
    AckSegment,
    DataSegment,
    ReceiverFlow,
    RtoEstimator,
    SenderFlow,
)
