"""Socket-engine scenario runner: real datagrams, simulated clock.

:func:`run_scenario_socket` executes a
:class:`~repro.config.ScenarioConfig` over localhost UDP: per-flow
sender sockets, one shared receiver socket and the
:class:`~.impair.ImpairmentProxy` in between, all serviced by one
single-threaded ``selectors`` event loop.  It produces the same
:class:`~repro.env.multiflow.ScenarioResult` record the other engines
emit, so every metric (:mod:`repro.metrics.recovery` included) works
unchanged.

**Time scaling.**  The loop runs in wall-clock time; simulated time is
``wall x time_scale`` (default 6), so a 30 s quick scenario finishes in
~5 s wall.  Rates convert by multiplying with the scale, delays by
dividing.  **Packet aggregation** keeps a Python loop feasible: one UDP
datagram represents ``pkts_per_seg`` simulated packets, sized so the
wall datagram rate stays near ``max_wall_dgrams_per_s``.  Per-MTP
counters are converted back to simulated packets before they reach the
controller, mirroring :class:`~repro.env.packetrun._PacketFlowDriver`.

:func:`transfer_payload` is the byte-exact entry point the reliability
tests drive: a finite payload crosses the impaired loopback path and
comes back reassembled — every byte exactly once, in order, or a typed
:class:`~repro.errors.TransportStalledError`.
"""

from __future__ import annotations

import math
import selectors
import socket
import time
from dataclasses import dataclass
from hashlib import blake2b

from ...cc import create
from ...cc.base import CongestionController
from ...config import LinkConfig, ScenarioConfig
from ...errors import ConfigError, SimulationError, TransportError, \
    TransportStalledError
from ...env.multiflow import FlowLog, ScenarioResult
from ...netsim.stats import FlowMonitor, MtpStats
from ...units import mbps_to_pps
from .impair import ImpairmentLink, ImpairmentProxy
from .transport import AckSegment, DataSegment, ReceiverFlow, RtoEstimator, \
    SenderFlow, decode

_MAX_DATAGRAM = 65535


@dataclass(frozen=True)
class SocketTuning:
    """Knobs of the wall-clock execution (all *_s in simulated seconds).

    ``time_scale`` compresses wall time into simulated time;
    ``max_wall_dgrams_per_s`` caps the per-flow wall datagram rate and
    thereby sets the packet-aggregation factor
    (:meth:`pkts_per_seg`).  RTO bounds follow the transport's RFC
    6298-style estimator; ``stall_s`` is the no-progress give-up budget
    (``None`` derives ``8 x max_rto_s``).
    """

    time_scale: float = 6.0
    max_wall_dgrams_per_s: float = 2500.0
    seg_payload_bytes: int = 32
    max_attempts: int = 30
    min_rto_s: float = 0.04
    max_rto_s: float = 2.0
    stall_s: float | None = None
    fast_rtx_dupes: int = 3
    #: Longest the event loop may sleep between housekeeping passes.
    poll_cap_wall_s: float = 0.005
    #: Most datagrams one flow puts on the wire per loop pass.
    burst_segs: int = 64

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ConfigError(
                f"time scale must be positive, got {self.time_scale}")
        if self.max_wall_dgrams_per_s <= 0:
            raise ConfigError("wall datagram budget must be positive")
        if self.seg_payload_bytes < 1:
            raise ConfigError("segment payload must be at least one byte")
        if self.min_rto_s <= 0 or self.max_rto_s < self.min_rto_s:
            raise ConfigError(
                f"need 0 < min_rto ({self.min_rto_s}) <= max_rto "
                f"({self.max_rto_s})")
        if self.stall_s is not None and self.stall_s <= 0:
            raise ConfigError("stall budget must be positive")

    def pkts_per_seg(self, capacity_pps: float) -> int:
        """Simulated packets one datagram represents on this link."""
        return max(1, math.ceil(capacity_pps * self.time_scale
                                / self.max_wall_dgrams_per_s))

    @property
    def stall_budget_s(self) -> float:
        return self.stall_s if self.stall_s is not None \
            else 8.0 * self.max_rto_s


class WallClock:
    """Anchors the simulated clock: ``sim = (wall - t0) x scale``."""

    def __init__(self, time_scale: float):
        self.scale = time_scale
        self.t0 = time.monotonic()

    def now_wall(self) -> float:
        return time.monotonic()

    def sim_at(self, wall: float) -> float:
        return (wall - self.t0) * self.scale


def stream_chunk(flow_id: int, seq: int, nbytes: int) -> bytes:
    """Deterministic payload of stream segment ``seq`` of ``flow_id``.

    Sender and receiver derive the same bytes independently, so the
    scenario runner verifies content integrity without buffering the
    stream anywhere.
    """
    out = b""
    counter = 0
    while len(out) < nbytes:
        h = blake2b(digest_size=32)
        h.update(b"socketpath-stream")
        for k in (flow_id, seq, counter):
            h.update(int(k).to_bytes(8, "big"))
        out += h.digest()
        counter += 1
    return out[:nbytes]


@dataclass
class _FlowRuntime:
    """Everything the event loop tracks for one flow."""

    index: int
    sender: SenderFlow
    sock: socket.socket
    pkts_per_seg: int
    controller: CongestionController | None = None
    monitor: FlowMonitor | None = None
    log: FlowLog | None = None
    mtp_s: float = 0.0
    cwnd_pkts: float = 0.0
    pacing_pps: float | None = None
    next_ctrl_wall: float = math.inf
    window_start_sim: float = 0.0


@dataclass(frozen=True)
class SocketRunReport:
    """Datapath-level accounting of one socket-engine run."""

    wall_s: float
    sim_s: float
    time_scale: float
    pkts_per_seg: int
    flows: tuple[dict, ...]
    proxy_drops: dict
    proxy_reordered: int
    proxy_malformed: int

    @property
    def total_corrupt(self) -> int:
        return sum(f["corrupt"] for f in self.flows)

    @property
    def total_delivered_segs(self) -> int:
        return sum(f["delivered_segs"] for f in self.flows)

    @property
    def wire_segs_per_wall_s(self) -> float:
        sent = sum(f["sent_segs"] for f in self.flows)
        return sent / self.wall_s if self.wall_s > 0 else 0.0


@dataclass(frozen=True)
class TransferReport:
    """Outcome of one :func:`transfer_payload` call."""

    n_segments: int
    delivered_bytes: int
    retransmits: int
    fast_retransmits: int
    rto_timeouts: int
    duplicates: int
    wall_s: float
    srtt_s: float | None


def _open_udp(host: str = "127.0.0.1") -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind((host, 0))
    sock.setblocking(False)
    return sock


def _drain_acks(fr: _FlowRuntime, clock: WallClock) -> None:
    while True:
        try:
            data, _ = fr.sock.recvfrom(_MAX_DATAGRAM)
        except BlockingIOError:
            return
        try:
            frame = decode(data)
        except TransportError:
            continue
        if isinstance(frame, AckSegment):
            fr.sender.on_ack(frame, clock.now_wall())


def _drain_receiver(recv_sock: socket.socket,
                    receivers: dict[int, ReceiverFlow],
                    proxy: ImpairmentProxy) -> None:
    while True:
        try:
            data, _ = recv_sock.recvfrom(_MAX_DATAGRAM)
        except BlockingIOError:
            return
        try:
            frame = decode(data)
        except TransportError:
            continue
        if not isinstance(frame, DataSegment):
            continue
        receiver = receivers.get(frame.flow_id)
        if receiver is None:
            continue
        ack = receiver.on_data(frame)
        try:
            recv_sock.sendto(ack, proxy.address)
        except (BlockingIOError, OSError):
            pass  # a lost ACK is just loss; the sender retransmits


def _pump_send(fr: _FlowRuntime, now_wall: float, burst: int,
               proxy_addr: tuple) -> None:
    for _ in range(burst):
        segment = fr.sender.poll_segment(now_wall)
        if segment is None:
            return
        try:
            fr.sock.sendto(segment, proxy_addr)
        except (BlockingIOError, OSError):
            return


def _control_tick(fr: _FlowRuntime, now_wall: float, sim_now: float,
                  clock: WallClock) -> None:
    """One controller interval: assemble MtpStats, apply the decision.

    Mirrors :class:`~repro.env.packetrun._PacketFlowDriver` — counters
    are converted from wire segments back to simulated packets and
    wall RTTs back to simulated seconds before the controller sees them.
    """
    assert fr.controller is not None and fr.monitor is not None \
        and fr.log is not None
    scale = clock.scale
    pps = fr.pkts_per_seg
    sent, delivered, lost, samples = fr.sender.take_window()
    for sample in samples:
        fr.monitor.observe_rtt(sample * scale)
    duration = max(sim_now - fr.window_start_sim, 1e-9)
    if samples:
        avg_rtt = sum(samples) / len(samples) * scale
        min_rtt = min(samples) * scale
    else:
        avg_rtt = min_rtt = fr.monitor.srtt_s
    stats = MtpStats(
        time_s=sim_now,
        duration_s=duration,
        throughput_pps=delivered * pps / duration,
        avg_rtt_s=avg_rtt,
        min_rtt_s=min_rtt,
        sent_pkts=sent * pps,
        delivered_pkts=delivered * pps,
        lost_pkts=lost * pps,
        pkts_in_flight=fr.sender.inflight_segs * pps,
        cwnd_pkts=fr.cwnd_pkts,
        pacing_pps=fr.pacing_pps if fr.pacing_pps else 0.0,
        srtt_s=fr.monitor.srtt_s,
    )
    decision = fr.controller.on_interval(stats)
    fr.cwnd_pkts = decision.cwnd_pkts
    fr.pacing_pps = decision.pacing_pps
    fr.sender.cwnd_segs = max(1.0, decision.cwnd_pkts / pps)
    if decision.pacing_pps:
        fr.sender.pace_gap_wall = pps / (decision.pacing_pps * scale)
    else:
        fr.sender.pace_gap_wall = None
    log = fr.log
    log.times.append(sim_now)
    log.throughput_mbps.append(stats.throughput_mbps)
    log.rtt_s.append(stats.avg_rtt_s)
    log.loss_rate.append(stats.loss_rate)
    log.cwnd_pkts.append(decision.cwnd_pkts)
    log.send_rate_mbps.append(
        decision.cwnd_pkts / max(stats.srtt_s, 1e-6) / mbps_to_pps(1.0))
    fr.window_start_sim = sim_now
    interval_sim = max(fr.controller.interval_s(stats.srtt_s), fr.mtp_s)
    fr.next_ctrl_wall = now_wall + interval_sim / scale


def _event_loop(clock: WallClock, proxy: ImpairmentProxy,
                recv_sock: socket.socket,
                receivers: dict[int, ReceiverFlow],
                flows: list[_FlowRuntime], tuning: SocketTuning, *,
                end_wall: float | None,
                hard_deadline_wall: float | None = None) -> None:
    """Service sockets, timers and controller ticks until done.

    ``end_wall`` bounds a scenario run; with ``end_wall=None`` the loop
    runs until every (finite) sender is done — ``hard_deadline_wall``
    then backstops a transfer that cannot complete.
    """
    sel = selectors.DefaultSelector()
    sel.register(proxy.sock, selectors.EVENT_READ, ("proxy", None))
    sel.register(recv_sock, selectors.EVENT_READ, ("recv", None))
    for fr in flows:
        sel.register(fr.sock, selectors.EVENT_READ, ("flow", fr))
    try:
        while True:
            now = clock.now_wall()
            if end_wall is not None and now >= end_wall:
                return
            if end_wall is None and all(fr.sender.done for fr in flows):
                return
            if hard_deadline_wall is not None and now > hard_deadline_wall:
                raise TransportStalledError(
                    f"transfer exceeded its wall deadline "
                    f"({hard_deadline_wall - clock.t0:.2f}s)")
            due = [release for release in (proxy.next_release_wall(),)
                   if release is not None]
            for fr in flows:
                if fr.next_ctrl_wall != math.inf:
                    due.append(fr.next_ctrl_wall)
                sender_due = fr.sender.next_due_wall()
                if sender_due is not None:
                    due.append(sender_due)
            timeout = tuning.poll_cap_wall_s
            if due:
                timeout = min(timeout, max(0.0, min(due) - now))
            for key, _ in sel.select(timeout):
                tag, fr = key.data
                if tag == "proxy":
                    proxy.on_readable()
                elif tag == "recv":
                    _drain_receiver(recv_sock, receivers, proxy)
                else:
                    _drain_acks(fr, clock)
            proxy.pump()
            now = clock.now_wall()
            sim_now = clock.sim_at(now)
            for fr in flows:
                fr.sender.check_timers(now)
                _pump_send(fr, now, tuning.burst_segs, proxy.address)
                if fr.controller is not None and now >= fr.next_ctrl_wall:
                    _control_tick(fr, now, sim_now, clock)
    finally:
        sel.close()


def _validate_scenario(scenario: ScenarioConfig) -> None:
    if scenario.trace is not None:
        raise SimulationError(
            "the socket runner does not support capacity traces; "
            "run traced scenarios on the fluid engine")
    for f in scenario.flows:
        if f.start_s != 0.0 or f.end_s() < scenario.duration_s:
            raise SimulationError(
                "the socket runner requires every flow to start at t=0 "
                "and run for the whole scenario; use the fluid engine "
                "for staggered arrivals")
        if f.extra_rtt_ms != 0.0:
            raise SimulationError(
                "the socket runner shares one loopback path; "
                "RTT-heterogeneous flows stay on the simulators")


def run_scenario_socket_report(
        scenario: ScenarioConfig,
        controllers: list[CongestionController | None] | None = None, *,
        tuning: SocketTuning | None = None,
) -> tuple[ScenarioResult, SocketRunReport]:
    """Run a scenario over real loopback sockets; result + datapath report.

    ``controllers`` optionally injects pre-built instances, index-aligned
    with ``scenario.flows`` (``None`` entries are created from the
    registry), matching the other engine runners.
    """
    _validate_scenario(scenario)
    tuning = tuning if tuning is not None else SocketTuning()
    scale = tuning.time_scale
    pkts_per_seg = tuning.pkts_per_seg(scenario.link.capacity_pps)
    clock = WallClock(scale)
    core = ImpairmentLink(scenario.link, scenario.faults,
                          seed=scenario.seed, time_scale=scale,
                          pkts_per_seg=pkts_per_seg)
    proxy = ImpairmentProxy(core, clock)
    recv_sock = _open_udp()
    proxy.set_receiver(recv_sock.getsockname())
    receivers: dict[int, ReceiverFlow] = {}
    flows: list[_FlowRuntime] = []
    logs: list[FlowLog] = []
    seg_bytes = tuning.seg_payload_bytes
    try:
        for i, cfg in enumerate(scenario.flows):
            if controllers is not None and controllers[i] is not None:
                controller = controllers[i]
            else:
                controller = create(cfg.cc, **cfg.cc_kwargs)
            controller.reset()
            receivers[i] = ReceiverFlow(
                i, expected_for_seq=(
                    lambda seq, fid=i: stream_chunk(fid, seq, seg_bytes)))
            rto = RtoEstimator(min_rto_s=tuning.min_rto_s / scale,
                               max_rto_s=tuning.max_rto_s / scale)
            now0 = clock.now_wall()
            sender = SenderFlow(
                i, rto=rto,
                payload_for_seq=(
                    lambda seq, fid=i: stream_chunk(fid, seq, seg_bytes)),
                cwnd_segs=max(1.0, controller.initial_cwnd / pkts_per_seg),
                max_attempts=tuning.max_attempts,
                stall_wall_s=tuning.stall_budget_s / scale,
                fast_rtx_dupes=tuning.fast_rtx_dupes,
                now_wall=now0)
            log = FlowLog(cc_name=cfg.cc, start_s=0.0,
                          end_s=scenario.duration_s)
            logs.append(log)
            flows.append(_FlowRuntime(
                index=i, sender=sender, sock=_open_udp(),
                pkts_per_seg=pkts_per_seg, controller=controller,
                monitor=FlowMonitor(scenario.link.rtt_s), log=log,
                mtp_s=scenario.mtp_s,
                cwnd_pkts=controller.initial_cwnd,
                next_ctrl_wall=clock.t0 + scenario.mtp_s / scale))
        end_wall = clock.t0 + scenario.duration_s / scale
        _event_loop(clock, proxy, recv_sock, receivers, flows, tuning,
                    end_wall=end_wall)
        wall_s = clock.now_wall() - clock.t0
    finally:
        proxy.close()
        recv_sock.close()
        for fr in flows:
            fr.sock.close()
    report = SocketRunReport(
        wall_s=wall_s,
        sim_s=scenario.duration_s,
        time_scale=scale,
        pkts_per_seg=pkts_per_seg,
        flows=tuple({
            "flow": fr.index,
            "cc": scenario.flows[fr.index].cc,
            "sent_segs": fr.sender.sent_segs,
            "delivered_segs": receivers[fr.index].delivered_segs,
            "retransmits": fr.sender.retransmits,
            "fast_retransmits": fr.sender.fast_retransmits,
            "rto_timeouts": fr.sender.rto_timeouts,
            "duplicates": receivers[fr.index].duplicates,
            "corrupt": receivers[fr.index].corrupt,
        } for fr in flows),
        proxy_drops=dict(core.drops),
        proxy_reordered=core.reordered,
        proxy_malformed=proxy.malformed,
    )
    result = ScenarioResult(
        flows=logs,
        duration_s=scenario.duration_s,
        bottleneck_mbps=scenario.link.bandwidth_mbps,
        base_rtt_s=scenario.link.rtt_s,
    )
    return result, report


def run_scenario_socket(
        scenario: ScenarioConfig,
        controllers: list[CongestionController | None] | None = None, *,
        tuning: SocketTuning | None = None) -> ScenarioResult:
    """Run a scenario on the socket engine (third-engine dispatch entry).

    Same contract as :func:`~repro.env.packetrun.run_scenario_packet`;
    use :func:`run_scenario_socket_report` when the datapath accounting
    (retransmits, duplicates, content integrity) is needed too.
    """
    result, _ = run_scenario_socket_report(scenario, controllers,
                                           tuning=tuning)
    return result


def transfer_payload(payload: bytes, *, link: LinkConfig | None = None,
                     faults=None, seed: int = 0,
                     tuning: SocketTuning | None = None,
                     cwnd_segs: float = 16.0,
                     max_wall_s: float = 30.0,
                     ) -> tuple[bytes, TransferReport]:
    """Push ``payload`` across the impaired loopback path and reassemble.

    Returns the received bytes (the reliability contract: equal to
    ``payload``, every byte exactly once, in order) plus a
    :class:`TransferReport`.  Raises
    :class:`~repro.errors.TransportStalledError` when the retry budget
    or the wall deadline is exhausted (e.g. a blackout outlasting every
    retransmission attempt).
    """
    # The default path is deliberately over-buffered (4 BDP): a fixed
    # ``cwnd_segs`` has no controller backing off, so the clean-link
    # baseline should see no congestion drops of its own making.
    link = link if link is not None else LinkConfig(bandwidth_mbps=8.0,
                                                    rtt_ms=20.0,
                                                    buffer_bdp=4.0)
    tuning = tuning if tuning is not None else SocketTuning()
    scale = tuning.time_scale
    seg_bytes = tuning.seg_payload_bytes
    chunks = [payload[i:i + seg_bytes]
              for i in range(0, len(payload), seg_bytes)]
    if not chunks:
        report = TransferReport(n_segments=0, delivered_bytes=0,
                                retransmits=0, fast_retransmits=0,
                                rto_timeouts=0, duplicates=0, wall_s=0.0,
                                srtt_s=None)
        return b"", report
    pkts_per_seg = tuning.pkts_per_seg(link.capacity_pps)
    clock = WallClock(scale)
    core = ImpairmentLink(link, faults, seed=seed, time_scale=scale,
                          pkts_per_seg=pkts_per_seg)
    proxy = ImpairmentProxy(core, clock)
    recv_sock = _open_udp()
    proxy.set_receiver(recv_sock.getsockname())
    receiver = ReceiverFlow(0, capture=True)
    rto = RtoEstimator(min_rto_s=tuning.min_rto_s / scale,
                       max_rto_s=tuning.max_rto_s / scale)
    sender = SenderFlow(
        0, rto=rto, payload_for_seq=lambda seq: chunks[seq],
        n_segments=len(chunks), cwnd_segs=cwnd_segs,
        max_attempts=tuning.max_attempts,
        stall_wall_s=tuning.stall_budget_s / scale,
        fast_rtx_dupes=tuning.fast_rtx_dupes,
        now_wall=clock.now_wall())
    fr = _FlowRuntime(index=0, sender=sender, sock=_open_udp(),
                      pkts_per_seg=pkts_per_seg)
    try:
        _event_loop(clock, proxy, recv_sock, {0: receiver}, [fr], tuning,
                    end_wall=None,
                    hard_deadline_wall=clock.t0 + max_wall_s)
        wall_s = clock.now_wall() - clock.t0
    finally:
        proxy.close()
        recv_sock.close()
        fr.sock.close()
    data = b"".join(receiver.chunks)
    report = TransferReport(
        n_segments=len(chunks),
        delivered_bytes=len(data),
        retransmits=sender.retransmits,
        fast_retransmits=sender.fast_retransmits,
        rto_timeouts=sender.rto_timeouts,
        duplicates=receiver.duplicates,
        wall_s=wall_s,
        srtt_s=None if rto.srtt_s is None else rto.srtt_s * scale,
    )
    return data, report
