"""Bottleneck capacity traces.

The paper evaluates on fixed-rate Mahimahi links, on a Verizon LTE trace
from Sprout (Figs. 13 and 21) and on wide-area Internet paths (Fig. 15).
Neither the LTE trace file nor the real Internet is available offline, so
this module provides synthetic equivalents:

* :class:`ConstantTrace` — a fixed-rate link (the common case).
* :class:`StepTrace` — piecewise-constant capacity for hand-built dynamics.
* :class:`LteTrace` — a Markov-modulated rate process whose statistics match
  the published characteristics of the Verizon LTE downlink trace: mean
  capacity in the low tens of Mbps, millisecond-scale drastic variation,
  occasional deep fades and bursts.
* :class:`WanTrace` — a long-haul Internet path model: nominal capacity with
  slow jitter plus bursty cross-traffic that temporarily reduces available
  bandwidth, used for the "real-world" experiments of Fig. 15.

A trace is a callable mapping simulation time (seconds) to capacity in Mbps.
All randomised traces draw from their own :class:`numpy.random.Generator`
so that scenarios are reproducible from a seed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigError


class CapacityTrace(ABC):
    """Maps simulation time to instantaneous link capacity (Mbps)."""

    @abstractmethod
    def capacity_mbps(self, t: float) -> float:
        """Capacity available at time ``t`` seconds."""

    def __call__(self, t: float) -> float:
        return self.capacity_mbps(t)

    @property
    def mean_mbps(self) -> float:
        """Approximate long-run mean capacity (used for buffer sizing)."""
        samples = [self.capacity_mbps(t) for t in np.linspace(0.0, 60.0, 601)]
        return float(np.mean(samples))


class ConstantTrace(CapacityTrace):
    """A fixed-rate link."""

    def __init__(self, mbps: float):
        if mbps <= 0:
            raise ConfigError(f"capacity must be positive, got {mbps}")
        self._mbps = float(mbps)

    def capacity_mbps(self, t: float) -> float:
        return self._mbps

    @property
    def mean_mbps(self) -> float:
        return self._mbps


class StepTrace(CapacityTrace):
    """Piecewise-constant capacity.

    ``steps`` is a sequence of ``(start_time_s, mbps)`` pairs sorted by start
    time; the first pair must start at 0.
    """

    def __init__(self, steps: list[tuple[float, float]]):
        if not steps:
            raise ConfigError("a step trace needs at least one step")
        if steps[0][0] != 0.0:
            raise ConfigError("the first step must start at t=0")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ConfigError("step times must be sorted")
        for _, mbps in steps:
            if mbps <= 0:
                raise ConfigError("step capacities must be positive")
        self._times = np.array(times)
        self._rates = np.array([r for _, r in steps])

    def capacity_mbps(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._rates[max(idx, 0)])


class LteTrace(CapacityTrace):
    """Markov-modulated LTE-like downlink capacity.

    The process holds one of a small set of rate levels for an exponentially
    distributed dwell time, with transitions biased towards neighbouring
    levels, plus fast multiplicative fading noise.  Pre-sampled on a 10 ms
    grid so repeated lookups are cheap and deterministic for a seed.
    """

    LEVELS_MBPS = (1.5, 4.0, 8.0, 14.0, 22.0, 32.0, 45.0)
    MEAN_DWELL_S = 0.8
    FADE_STD = 0.18
    GRID_S = 0.010

    def __init__(self, seed: int = 0, duration_s: float = 600.0):
        if duration_s <= 0:
            raise ConfigError("trace duration must be positive")
        rng = np.random.default_rng(seed)
        n = int(math.ceil(duration_s / self.GRID_S)) + 1
        rates = np.empty(n)
        level = rng.integers(2, len(self.LEVELS_MBPS) - 1)
        dwell_left = rng.exponential(self.MEAN_DWELL_S)
        fade = 1.0
        for i in range(n):
            dwell_left -= self.GRID_S
            if dwell_left <= 0:
                step = rng.choice([-2, -1, -1, 1, 1, 2])
                level = int(np.clip(level + step, 0, len(self.LEVELS_MBPS) - 1))
                dwell_left = rng.exponential(self.MEAN_DWELL_S)
            # AR(1) multiplicative fading around the current level.
            fade = 0.9 * fade + 0.1 * (1.0 + rng.normal(0.0, self.FADE_STD))
            fade = float(np.clip(fade, 0.25, 1.9))
            rates[i] = self.LEVELS_MBPS[level] * fade
        self._rates = np.maximum(rates, 0.3)
        self._duration = duration_s

    def capacity_mbps(self, t: float) -> float:
        idx = int(t / self.GRID_S) % len(self._rates)
        return float(self._rates[idx])

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self._rates))


class WanTrace(CapacityTrace):
    """Wide-area Internet path: jittered capacity plus bursty cross traffic.

    ``kind`` selects the Fig. 15 path class: ``"intra"`` models a short-haul
    residential-to-cloud path (higher nominal capacity, mild cross traffic),
    ``"inter"`` a long-haul path with heavier, burstier cross traffic.
    """

    def __init__(self, kind: str = "intra", nominal_mbps: float | None = None,
                 seed: int = 0, duration_s: float = 300.0):
        if kind not in ("intra", "inter"):
            raise ConfigError(f"unknown WAN path kind {kind!r}")
        rng = np.random.default_rng(seed)
        if nominal_mbps is None:
            nominal_mbps = 900.0 if kind == "intra" else 800.0
        if nominal_mbps <= 0:
            raise ConfigError("nominal capacity must be positive")
        grid = 0.05
        n = int(math.ceil(duration_s / grid)) + 1
        # Slow capacity jitter (routing/queueing upstream of the bottleneck).
        jitter = np.ones(n)
        for i in range(1, n):
            jitter[i] = np.clip(
                0.98 * jitter[i - 1] + 0.02 * (1.0 + rng.normal(0, 0.15)),
                0.5, 1.2,
            )
        # Bursty cross traffic removing a fraction of the capacity.
        cross = np.zeros(n)
        burst_p = 0.01 if kind == "intra" else 0.03
        burst_frac = 0.25 if kind == "intra" else 0.45
        i = 0
        while i < n:
            if rng.random() < burst_p:
                length = int(rng.exponential(1.5) / grid) + 1
                cross[i:i + length] = burst_frac * rng.uniform(0.5, 1.5)
                i += length
            else:
                i += 1
        rates = nominal_mbps * jitter * np.clip(1.0 - cross, 0.1, 1.0)
        self._rates = np.maximum(rates, 1.0)
        self._grid = grid

    def capacity_mbps(self, t: float) -> float:
        idx = int(t / self._grid) % len(self._rates)
        return float(self._rates[idx])

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self._rates))


class WifiTrace(CapacityTrace):
    """802.11-like capacity: rate-adaptation steps plus contention bursts.

    Wi-Fi links switch among a discrete MCS rate set on second timescales
    (rate adaptation) and suffer short deep throughput collapses when
    contending stations grab the medium.  Used by robustness tests and
    available to scenarios as ``trace="wifi"``.
    """

    RATES_MBPS = (7.2, 14.4, 28.9, 57.8, 86.7, 115.6)
    MEAN_DWELL_S = 2.0
    CONTENTION_P = 0.02
    CONTENTION_FRACTION = 0.15
    GRID_S = 0.020

    def __init__(self, seed: int = 0, duration_s: float = 300.0):
        if duration_s <= 0:
            raise ConfigError("trace duration must be positive")
        rng = np.random.default_rng(seed)
        n = int(math.ceil(duration_s / self.GRID_S)) + 1
        rates = np.empty(n)
        level = rng.integers(2, len(self.RATES_MBPS))
        dwell_left = rng.exponential(self.MEAN_DWELL_S)
        contention_left = 0
        for i in range(n):
            dwell_left -= self.GRID_S
            if dwell_left <= 0:
                level = int(np.clip(level + rng.choice([-1, 1]), 0,
                                    len(self.RATES_MBPS) - 1))
                dwell_left = rng.exponential(self.MEAN_DWELL_S)
            if contention_left > 0:
                contention_left -= 1
                rates[i] = self.RATES_MBPS[level] * self.CONTENTION_FRACTION
            else:
                if rng.random() < self.CONTENTION_P:
                    contention_left = int(rng.exponential(0.3) / self.GRID_S)
                rates[i] = self.RATES_MBPS[level]
        self._rates = np.maximum(rates, 0.5)

    def capacity_mbps(self, t: float) -> float:
        idx = int(t / self.GRID_S) % len(self._rates)
        return float(self._rates[idx])

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self._rates))


class DiurnalTrace(CapacityTrace):
    """Slow sinusoidal capacity swing (a day-scale load pattern, sped up).

    ``period_s`` controls the cycle; capacity oscillates between
    ``low_mbps`` and ``high_mbps``.  Useful for long-run adaptation tests
    where the bottleneck drifts rather than jumps.
    """

    def __init__(self, low_mbps: float = 20.0, high_mbps: float = 100.0,
                 period_s: float = 120.0, phase: float = 0.0):
        if not 0 < low_mbps <= high_mbps:
            raise ConfigError("need 0 < low <= high")
        if period_s <= 0:
            raise ConfigError("period must be positive")
        self.low = low_mbps
        self.high = high_mbps
        self.period = period_s
        self.phase = phase

    def capacity_mbps(self, t: float) -> float:
        mid = (self.high + self.low) / 2.0
        amp = (self.high - self.low) / 2.0
        return mid + amp * math.sin(2.0 * math.pi * t / self.period
                                    + self.phase)

    @property
    def mean_mbps(self) -> float:
        return (self.high + self.low) / 2.0


_TRACE_FACTORIES = {
    "constant": ConstantTrace,
    "step": StepTrace,
    "lte": LteTrace,
    "wan": WanTrace,
    "wifi": WifiTrace,
    "diurnal": DiurnalTrace,
}


def create_trace(name: str, **kwargs) -> CapacityTrace:
    """Instantiate a trace by registry name.

    >>> create_trace("constant", mbps=100.0).capacity_mbps(1.0)
    100.0
    """
    try:
        factory = _TRACE_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown trace {name!r}; available: {sorted(_TRACE_FACTORIES)}"
        ) from None
    return factory(**kwargs)
