"""Per-flow statistics collection with one-RTT observation delay.

The fluid engine produces a *tick sample* per flow per tick at the
bottleneck.  A real sender only learns about those conditions when the
corresponding ACKs return, roughly one RTT after the data was sent; we model
that by stamping every sample with an availability time and letting the
sender-side monitor (the MTP collector) read only samples that have become
observable.  This observation delay is what makes large-RTT scenarios
genuinely harder for every controller, exactly as in the paper (§5.1.3).

Storage is a growable numpy ring buffer, one row per tick sample, so the
engine's block kernel can append a whole tick batch columnwise
(:meth:`FlowMonitor.push_block`) without allocating a Python object per
tick.  :meth:`FlowMonitor.collect` drains the observable prefix — located
with ``searchsorted`` on the availability column when it is monotone — and
folds it with the exact accumulation order of the original deque
implementation, so :class:`MtpStats` values (including the srtt fold) are
bit-compatible with the per-sample path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import pps_to_mbps


@dataclass(frozen=True)
class TickSample:
    """Conditions one flow experienced during one simulator tick.

    All counters are in packets; rates in packets/second; times in seconds.
    ``avail_at`` is the wall-clock time at which the sender can observe the
    sample (generation time plus the ACK return delay).
    """

    time: float
    avail_at: float
    dt: float
    rtt_s: float
    sent_pkts: float
    delivered_pkts: float
    lost_pkts: float
    marked_pkts: float = 0.0


@dataclass(frozen=True)
class MtpStats:
    """Aggregated per-Monitoring-Time-Period statistics handed to a controller.

    This is the observation record of §3.3: average throughput and latency
    over the MTP, lost packets, packets in flight, the congestion window and
    pacing rate in force, plus the smoothed RTT the sender maintains.
    """

    time_s: float
    duration_s: float
    throughput_pps: float
    avg_rtt_s: float
    min_rtt_s: float
    sent_pkts: float
    delivered_pkts: float
    lost_pkts: float
    pkts_in_flight: float
    cwnd_pkts: float
    pacing_pps: float
    srtt_s: float
    marked_pkts: float = 0.0

    @property
    def throughput_mbps(self) -> float:
        """Delivered goodput over the MTP in Mbps."""
        return pps_to_mbps(self.throughput_pps)

    @property
    def pacing_mbps(self) -> float:
        """Pacing rate in force during the MTP in Mbps."""
        return pps_to_mbps(self.pacing_pps)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets lost during the MTP."""
        if self.sent_pkts <= 0:
            return 0.0
        return min(1.0, self.lost_pkts / self.sent_pkts)

    @property
    def loss_pps(self) -> float:
        """Loss expressed as a rate (packets/second)."""
        if self.duration_s <= 0:
            return 0.0
        return self.lost_pkts / self.duration_s

    @property
    def mark_rate(self) -> float:
        """Fraction of delivered packets carrying an ECN mark."""
        if self.delivered_pkts <= 0:
            return 0.0
        return min(1.0, self.marked_pkts / self.delivered_pkts)


# Ring-buffer column layout (one row per tick sample).  The engine's
# block kernel writes sample blocks in this exact layout so a whole
# block lands in the ring with one assignment (:meth:`FlowMonitor.push_rows`).
(COL_TIME, COL_AVAIL, COL_DT, COL_RTT,
 COL_SENT, COL_DLV, COL_LOST, COL_MARK) = range(8)
N_SAMPLE_COLS = 8
_INITIAL_CAPACITY = 64


class FlowMonitor:
    """Sender-side accumulator turning delayed tick samples into MTP stats.

    The monitor keeps an exponentially smoothed RTT (the kernel's
    ``srtt`` with gain 1/8) and exposes :meth:`collect` which drains every
    sample observable at the current time and aggregates it into an
    :class:`MtpStats`.  When no sample is yet observable (e.g. at flow start
    on a long path), the previous smoothed values are reused so controllers
    always receive a well-formed record.

    Drain semantics match the original deque implementation exactly: the
    observable *prefix* is consumed — popping stops at the first sample
    whose ``avail_at`` exceeds ``now``, even if later samples are already
    observable (availability times are not guaranteed monotone when the
    RTT collapses sharply).  A sortedness flag, maintained on every push,
    lets the common monotone case use a binary search.
    """

    SRTT_GAIN = 0.125

    def __init__(self, base_rtt_s: float):
        self._buf = np.empty((_INITIAL_CAPACITY, N_SAMPLE_COLS))
        self._start = 0
        self._end = 0
        self._avail_sorted = True
        self._srtt = base_rtt_s
        self._base_rtt = base_rtt_s
        self._last_collect = 0.0

    @property
    def srtt_s(self) -> float:
        """Current smoothed RTT estimate in seconds."""
        return self._srtt

    @property
    def capacity(self) -> int:
        """Rows the ring buffer currently holds memory for.

        Bounded by roughly twice the peak *live* (undrained) sample count
        of the run: :meth:`collect` compacts the consumed prefix away and
        shrinks the buffer once the live region falls to a quarter of
        capacity, so a long run's history is never retained.
        """
        return len(self._buf)

    def __len__(self) -> int:
        return self._end - self._start

    def pending_samples(self) -> list[TickSample]:
        """Materialise the undrained samples (oldest first) for inspection."""
        rows = self._buf[self._start:self._end]
        return [TickSample(*r) for r in rows.tolist()]

    @property
    def _pending(self) -> list[TickSample]:
        # Backwards-compatible view for callers that peeked at the old
        # deque (diagnostics / ablation benchmarks).
        return self.pending_samples()

    def _reserve(self, k: int) -> None:
        """Make room for ``k`` more rows, compacting or growing the buffer."""
        live = self._end - self._start
        cap = len(self._buf)
        if self._start > 0 and live + k <= cap:
            # Shift the live region to the front (numpy handles the
            # overlapping copy).
            self._buf[:live] = self._buf[self._start:self._end]
        else:
            new_cap = max(cap, _INITIAL_CAPACITY)
            while new_cap < live + k:
                new_cap *= 2
            new_buf = np.empty((new_cap, N_SAMPLE_COLS))
            new_buf[:live] = self._buf[self._start:self._end]
            self._buf = new_buf
        self._start = 0
        self._end = live

    def _compact(self) -> None:
        """Release the consumed prefix after a drain.

        Moves the live region to the front so consumed sample history is
        overwritten by the next push instead of lingering until the next
        ``_reserve``, and reallocates the buffer down (4x hysteresis, so
        steady-state cycles never thrash) when a burst has left it far
        larger than the live region needs.  Pure memory movement: sample
        values and drain order are untouched, so collected statistics
        stay bit-identical.
        """
        live = self._end - self._start
        cap = len(self._buf)
        if cap > _INITIAL_CAPACITY and cap >= 4 * max(live, 1):
            new_cap = _INITIAL_CAPACITY
            while new_cap < 2 * live:
                new_cap *= 2
            new_buf = np.empty((new_cap, N_SAMPLE_COLS))
            new_buf[:live] = self._buf[self._start:self._end]
            self._buf = new_buf
        elif self._start > 0:
            self._buf[:live] = self._buf[self._start:self._end]
        self._start = 0
        self._end = live

    def push(self, sample: TickSample) -> None:
        """Record a tick sample produced by the engine."""
        end = self._end
        if end + 1 > len(self._buf):
            self._reserve(1)
            end = self._end
        buf = self._buf
        if self._avail_sorted and end > self._start and \
                sample.avail_at < buf[end - 1, COL_AVAIL]:
            self._avail_sorted = False
        row = buf[end]
        row[COL_TIME] = sample.time
        row[COL_AVAIL] = sample.avail_at
        row[COL_DT] = sample.dt
        row[COL_RTT] = sample.rtt_s
        row[COL_SENT] = sample.sent_pkts
        row[COL_DLV] = sample.delivered_pkts
        row[COL_LOST] = sample.lost_pkts
        row[COL_MARK] = sample.marked_pkts
        self._end = end + 1

    def push_rows(self, rows: np.ndarray) -> None:
        """Append a ``(k, 8)`` sample block laid out in ring-column order.

        The engine's block kernel assembles its per-flow results in this
        layout so one assignment lands the whole block in the ring.
        """
        k = len(rows)
        if k == 0:
            return
        end = self._end
        if end + k > len(self._buf):
            self._reserve(k)
            end = self._end
        buf = self._buf
        new_end = end + k
        buf[end:new_end] = rows
        if self._avail_sorted:
            avail = buf[end:new_end, COL_AVAIL]
            if (end > self._start and avail[0] < buf[end - 1, COL_AVAIL]) \
                    or (k > 1 and (avail[1:] < avail[:-1]).any()):
                self._avail_sorted = False
        self._end = new_end

    def push_block(self, times: np.ndarray, avail_at: np.ndarray,
                   dt: float, rtt_s: np.ndarray, sent_pkts: np.ndarray,
                   delivered_pkts: np.ndarray, lost_pkts: np.ndarray,
                   marked_pkts: np.ndarray) -> None:
        """Record one engine block of tick samples columnwise.

        Equivalent to ``push``-ing a :class:`TickSample` per row, without
        constructing any; ``dt`` is the (uniform) tick length of the block.
        """
        k = len(times)
        if k == 0:
            return
        rows = np.empty((k, N_SAMPLE_COLS))
        rows[:, COL_TIME] = times
        rows[:, COL_AVAIL] = avail_at
        rows[:, COL_DT] = dt
        rows[:, COL_RTT] = rtt_s
        rows[:, COL_SENT] = sent_pkts
        rows[:, COL_DLV] = delivered_pkts
        rows[:, COL_LOST] = lost_pkts
        rows[:, COL_MARK] = marked_pkts
        self.push_rows(rows)

    def observe_rtt(self, rtt_s: float) -> None:
        """Fold an RTT measurement into the smoothed estimate."""
        self._srtt += self.SRTT_GAIN * (rtt_s - self._srtt)

    def _drain_count(self, now: float) -> int:
        """Length of the observable prefix at ``now``."""
        start, end = self._start, self._end
        if end == start:
            return 0
        avail = self._buf[start:end, COL_AVAIL]
        if self._avail_sorted:
            return int(avail.searchsorted(now, side="right"))
        over = avail > now
        if not over.any():
            return end - start
        return int(np.argmax(over))

    def collect(self, now: float, cwnd_pkts: float, pacing_pps: float,
                pkts_in_flight: float) -> MtpStats:
        """Aggregate all samples observable at ``now`` into one MTP record."""
        duration = max(now - self._last_collect, 1e-9)
        self._last_collect = now
        sent = delivered = lost = marked = 0.0
        rtt_weighted = 0.0
        rtt_min = float("inf")
        weight = 0.0
        k = self._drain_count(now)
        if k > 0:
            start = self._start
            # Sequential fold in sample order: the srtt EWMA is
            # order-dependent and the sums must match the original
            # one-sample-at-a-time accumulation bit for bit.
            srtt = self._srtt
            gain = self.SRTT_GAIN
            for dt_, rtt_, sent_, dlv_, lost_, mark_ in \
                    self._buf[start:start + k, COL_DT:].tolist():
                sent += sent_
                delivered += dlv_
                lost += lost_
                marked += mark_
                rtt_weighted += rtt_ * dt_
                rtt_min = min(rtt_min, rtt_)
                weight += dt_
                srtt += gain * (rtt_ - srtt)
            self._srtt = srtt
            self._start = start + k
            if self._start == self._end:
                self._start = self._end = 0
                self._avail_sorted = True
            self._compact()
        if weight > 0:
            avg_rtt = rtt_weighted / weight
            throughput = delivered / weight
        else:
            avg_rtt = self._srtt
            rtt_min = self._srtt
            throughput = 0.0
        return MtpStats(
            time_s=now,
            duration_s=duration,
            throughput_pps=throughput,
            avg_rtt_s=avg_rtt,
            min_rtt_s=rtt_min if rtt_min != float("inf") else avg_rtt,
            sent_pkts=sent,
            delivered_pkts=delivered,
            lost_pkts=lost,
            pkts_in_flight=pkts_in_flight,
            cwnd_pkts=cwnd_pkts,
            pacing_pps=pacing_pps,
            srtt_s=self._srtt,
            marked_pkts=marked,
        )
