"""Per-flow statistics collection with one-RTT observation delay.

The fluid engine produces a *tick sample* per flow per tick at the
bottleneck.  A real sender only learns about those conditions when the
corresponding ACKs return, roughly one RTT after the data was sent; we model
that by stamping every sample with an availability time and letting the
sender-side monitor (the MTP collector) read only samples that have become
observable.  This observation delay is what makes large-RTT scenarios
genuinely harder for every controller, exactly as in the paper (§5.1.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..units import pps_to_mbps


@dataclass(frozen=True)
class TickSample:
    """Conditions one flow experienced during one simulator tick.

    All counters are in packets; rates in packets/second; times in seconds.
    ``avail_at`` is the wall-clock time at which the sender can observe the
    sample (generation time plus the ACK return delay).
    """

    time: float
    avail_at: float
    dt: float
    rtt_s: float
    sent_pkts: float
    delivered_pkts: float
    lost_pkts: float
    marked_pkts: float = 0.0


@dataclass(frozen=True)
class MtpStats:
    """Aggregated per-Monitoring-Time-Period statistics handed to a controller.

    This is the observation record of §3.3: average throughput and latency
    over the MTP, lost packets, packets in flight, the congestion window and
    pacing rate in force, plus the smoothed RTT the sender maintains.
    """

    time_s: float
    duration_s: float
    throughput_pps: float
    avg_rtt_s: float
    min_rtt_s: float
    sent_pkts: float
    delivered_pkts: float
    lost_pkts: float
    pkts_in_flight: float
    cwnd_pkts: float
    pacing_pps: float
    srtt_s: float
    marked_pkts: float = 0.0

    @property
    def throughput_mbps(self) -> float:
        """Delivered goodput over the MTP in Mbps."""
        return pps_to_mbps(self.throughput_pps)

    @property
    def pacing_mbps(self) -> float:
        """Pacing rate in force during the MTP in Mbps."""
        return pps_to_mbps(self.pacing_pps)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets lost during the MTP."""
        if self.sent_pkts <= 0:
            return 0.0
        return min(1.0, self.lost_pkts / self.sent_pkts)

    @property
    def loss_pps(self) -> float:
        """Loss expressed as a rate (packets/second)."""
        if self.duration_s <= 0:
            return 0.0
        return self.lost_pkts / self.duration_s

    @property
    def mark_rate(self) -> float:
        """Fraction of delivered packets carrying an ECN mark."""
        if self.delivered_pkts <= 0:
            return 0.0
        return min(1.0, self.marked_pkts / self.delivered_pkts)


class FlowMonitor:
    """Sender-side accumulator turning delayed tick samples into MTP stats.

    The monitor keeps an exponentially smoothed RTT (the kernel's
    ``srtt`` with gain 1/8) and exposes :meth:`collect` which drains every
    sample observable at the current time and aggregates it into an
    :class:`MtpStats`.  When no sample is yet observable (e.g. at flow start
    on a long path), the previous smoothed values are reused so controllers
    always receive a well-formed record.
    """

    SRTT_GAIN = 0.125

    def __init__(self, base_rtt_s: float):
        self._pending: deque[TickSample] = deque()
        self._srtt = base_rtt_s
        self._base_rtt = base_rtt_s
        self._last_collect = 0.0

    @property
    def srtt_s(self) -> float:
        """Current smoothed RTT estimate in seconds."""
        return self._srtt

    def push(self, sample: TickSample) -> None:
        """Record a tick sample produced by the engine."""
        self._pending.append(sample)

    def observe_rtt(self, rtt_s: float) -> None:
        """Fold an RTT measurement into the smoothed estimate."""
        self._srtt += self.SRTT_GAIN * (rtt_s - self._srtt)

    def collect(self, now: float, cwnd_pkts: float, pacing_pps: float,
                pkts_in_flight: float) -> MtpStats:
        """Aggregate all samples observable at ``now`` into one MTP record."""
        duration = max(now - self._last_collect, 1e-9)
        self._last_collect = now
        sent = delivered = lost = marked = 0.0
        rtt_weighted = 0.0
        rtt_min = float("inf")
        weight = 0.0
        while self._pending and self._pending[0].avail_at <= now:
            s = self._pending.popleft()
            sent += s.sent_pkts
            delivered += s.delivered_pkts
            lost += s.lost_pkts
            marked += s.marked_pkts
            rtt_weighted += s.rtt_s * s.dt
            rtt_min = min(rtt_min, s.rtt_s)
            weight += s.dt
            self.observe_rtt(s.rtt_s)
        if weight > 0:
            avg_rtt = rtt_weighted / weight
            throughput = delivered / weight
        else:
            avg_rtt = self._srtt
            rtt_min = self._srtt
            throughput = 0.0
        return MtpStats(
            time_s=now,
            duration_s=duration,
            throughput_pps=throughput,
            avg_rtt_s=avg_rtt,
            min_rtt_s=rtt_min if rtt_min != float("inf") else avg_rtt,
            sent_pkts=sent,
            delivered_pkts=delivered,
            lost_pkts=lost,
            pkts_in_flight=pkts_in_flight,
            cwnd_pkts=cwnd_pkts,
            pacing_pps=pacing_pps,
            srtt_s=self._srtt,
            marked_pkts=marked,
        )
