"""Unit conversions shared across the simulator and the learning stack.

The simulator works internally in *packets per second* and *seconds*.
A packet is one MSS-sized segment (1500 bytes including headers, the value
Mahimahi and the Astraea paper use for BDP accounting).  These helpers keep
the conversions in one place so that link capacities quoted in Mbps, buffers
quoted in BDP multiples and statistics reported in Mbps all agree.
"""

from __future__ import annotations

MSS_BYTES = 1500
"""Segment size in bytes used for all packet <-> byte conversions."""

BITS_PER_PACKET = MSS_BYTES * 8
"""Bits carried by one packet."""


def mbps_to_pps(mbps: float) -> float:
    """Convert a rate in Mbps to packets per second."""
    return mbps * 1e6 / BITS_PER_PACKET


def pps_to_mbps(pps: float) -> float:
    """Convert a rate in packets per second to Mbps."""
    return pps * BITS_PER_PACKET / 1e6


def bdp_packets(bandwidth_mbps: float, rtt_s: float) -> float:
    """Bandwidth-delay product in packets for a link.

    ``bandwidth_mbps`` is the bottleneck capacity and ``rtt_s`` the base
    round-trip time in seconds.
    """
    return mbps_to_pps(bandwidth_mbps) * rtt_s


def bytes_to_packets(n_bytes: float) -> float:
    """Convert a byte count to (possibly fractional) packets."""
    return n_bytes / MSS_BYTES


def packets_to_bytes(n_packets: float) -> float:
    """Convert a packet count to bytes."""
    return n_packets * MSS_BYTES


def ms(milliseconds: float) -> float:
    """Milliseconds expressed in seconds (readability helper)."""
    return milliseconds / 1e3
