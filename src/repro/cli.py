"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       run a scenario described by a JSON file (see ``template``)
              and print its summary, optionally saving the full logs.
``compare``   run one canonical multi-flow scenario per scheme and print
              a side-by-side summary table.
``template``  emit a scenario-description JSON template to stdout.
``info``      list registered schemes, traces, queue disciplines,
              scenario families and the shipped pretrained models.
``models``    model-artifact integrity: ``verify`` the checksummed
              manifest (non-zero exit on any damaged bundle — the CI
              gate), ``info`` per-bundle status, ``regenerate`` rebuild
              bundles deterministically from the analytic reference.
``train``     run (or resume) Astraea training with periodic atomic
              checkpoints; ``--resume DIR`` continues bit-exactly from
              the last checkpoint in DIR.
``faults``    inspect or exercise link-fault schedules: print a sampled
              schedule, or run a robustness scenario under one scheme
              and print its summary.
``serve``     run the asyncio inference-serving daemon: length-prefixed
              JSON over loopback TCP, requests batched into the 5 ms
              window of the shared service, admission control, graceful
              drain on SIGTERM, a ``stats`` verb exporting counters and
              latency quantiles, and ``--shards N`` process fan-out
              (flow-id hash -> shard).
``bench``     benchmark sweeps; ``bench robustness`` runs the
              scheme x fault-kind x engine recovery sweep and writes the
              JSON artifact plus markdown table under
              ``benchmarks/results/``; ``bench scenarios`` sweeps
              schemes x workload families (incast, asymmetric-rtt,
              background-udp from the scenario registry) on both
              engines and writes JFI x utilization per cell into
              ``BENCH_scenarios.json``; ``bench scaling`` measures the
              serial-vs-parallel speedup of the small sweep and writes
              ``BENCH_parallel.json``; ``bench engine`` measures the
              fluid engine's vectorized fast path against the per-tick
              reference (ticks/s, episode wall-clock, equivalence) and
              writes ``BENCH_engine.json``; ``bench serve`` drives a
              live daemon with an asyncio load generator over a sweep
              of concurrent-flow counts and writes actions/s plus
              p50/p99/p999 latency into ``BENCH_serve.json``;
              ``bench socket`` exercises the loopback-UDP datapath
              (wire segments/s, goodput efficiency under a seeded 5%
              loss schedule, post-fault recovery time) and writes
              ``BENCH_socket.json`` (``--smoke`` is the gating CI
              reliability check); ``bench train`` measures training
              rollout throughput (serial vs batched vs batched+workers)
              with the embedded equivalence verdict in
              ``BENCH_train.json``; ``bench fleet`` runs the sharded
              fleet scaling sweep (10 -> 10,000 flows across many
              bottlenecks, serial vs sharded legs, bit-identical
              aggregate verdict) and writes ``BENCH_fleet.json``.

Sweep-shaped commands accept ``--workers N`` (default: the
``REPRO_WORKERS`` environment variable, else serial) to fan tasks out
over a spawn-context process pool; results are bit-identical to the
serial path at any worker count.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import persist
from .config import LinkConfig, ScenarioConfig


def _cmd_run(args: argparse.Namespace) -> int:
    from .env import run_scenario
    from .metrics import summarize

    scenario = persist.load_scenario(args.scenario)
    result = run_scenario(scenario)
    schemes = ",".join(sorted({f.cc for f in scenario.flows}))
    summary = summarize(result, schemes, penalty_s=scenario.duration_s)
    for key, value in summary.as_dict().items():
        print(f"{key:20s} {value}")
    if args.plot:
        from .analysis import flow_timelines

        print()
        print(flow_timelines(result, ascii_only=args.ascii))
    if args.out:
        path = persist.save_result(result, args.out)
        print(f"full logs saved to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .bench import print_table
    from .bench.runners import run_scheme_trials, summarize_trials
    from .netsim import staggered_flows

    link = LinkConfig(bandwidth_mbps=args.bandwidth, rtt_ms=args.rtt,
                      buffer_bdp=args.buffer)
    rows = []
    for cc in args.schemes.split(","):
        cc = cc.strip()
        flows = staggered_flows(args.flows, cc=cc,
                                interval_s=args.interval,
                                duration_s=args.flow_duration)
        scenario = ScenarioConfig(link=link, flows=flows,
                                  duration_s=args.duration)
        results = run_scheme_trials(scenario, args.trials,
                                    workers=args.workers)
        s = summarize_trials(results, cc, penalty_s=args.duration)
        rows.append([s.scheme, s.utilization, s.mean_jain, s.mean_rtt_ms,
                     s.mean_loss_rate, s.convergence_time_s,
                     s.stability_mbps])
        print(f"ran {cc}", file=sys.stderr)
    print_table(
        f"{args.flows} flows on {args.bandwidth:g} Mbps / {args.rtt:g} ms "
        f"/ {args.buffer:g} BDP",
        ["scheme", "util", "Jain", "RTT (ms)", "loss", "conv (s)",
         "stab (Mbps)"],
        rows,
    )
    return 0


def _cmd_template(args: argparse.Namespace) -> int:
    from .netsim import staggered_flows

    scenario = ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0),
        flows=staggered_flows(3, cc="astraea", interval_s=20.0,
                              duration_s=60.0),
        duration_s=100.0,
    )
    print(json.dumps(persist.scenario_to_dict(scenario), indent=2))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .cc import available
    from .core.policy import DEFAULT_POLICY_NAMES, default_policy_path
    from .netsim.qdisc import _QDISC_FACTORIES
    from .netsim.traces import _TRACE_FACTORIES

    print("congestion controllers:")
    for name in available():
        print(f"  {name}")
    print("capacity traces:")
    for name in sorted(_TRACE_FACTORIES):
        print(f"  {name}")
    print("queue disciplines:")
    for name in sorted(_QDISC_FACTORIES):
        print(f"  {name}")
    print("scenario families:")
    from .scenarios import describe_families

    for line in describe_families().splitlines():
        print(f"  {line}")
    print("pretrained models:")
    for scheme in DEFAULT_POLICY_NAMES:
        path = default_policy_path(scheme)
        if not path.exists():
            state = "absent"
        else:
            from .core.artifacts import validate_bundle_file
            from .errors import ModelError

            try:
                validate_bundle_file(path)
                state = "present"
            except ModelError:
                state = "DAMAGED — run 'repro models verify'"
        print(f"  {scheme}: {path.name} ({state})")
    return 0


def _cmd_models_verify(args: argparse.Namespace) -> int:
    from .core.artifacts import verify_models

    report = verify_models(args.models_dir)
    for check in report.checks:
        line = f"  {check.name:32s} {check.status}"
        if check.detail:
            line += f"  ({check.detail})"
        print(line)
    if not report.ok:
        names = ", ".join(c.name for c in report.failures)
        print(f"FAILED: {len(report.failures)} artifact(s) not ok: {names}",
              file=sys.stderr)
        print("run 'python -m repro models regenerate' to rebuild",
              file=sys.stderr)
        return 1
    print(f"ok: {len(report.checks)} artifact(s) verified")
    return 0


def _cmd_models_info(args: argparse.Namespace) -> int:
    from .core.artifacts import load_manifest, models_dir
    from .errors import ModelError

    directory = models_dir(args.models_dir)
    print(f"models directory: {directory}")
    try:
        doc = load_manifest(args.models_dir)
    except ModelError as exc:
        print(f"manifest: unavailable ({exc})")
        return 1
    for name, entry in doc["artifacts"].items():
        present = (directory / name).exists()
        print(f"  {name}")
        print(f"    sha256  {entry['sha256']}")
        print(f"    size    {entry.get('size_bytes', '?')} bytes "
              f"({'present' if present else 'MISSING'})")
        for key in ("teacher", "samples", "epochs", "seed", "mae"):
            if key in entry:
                print(f"    {key:7s} {entry[key]}")
    return 0


def _cmd_models_regenerate(args: argparse.Namespace) -> int:
    from .core.artifacts import manifest_entry, models_dir, update_manifest
    from .core.distill import REGEN_RECIPES, regenerate_default_bundle
    from .core.policy import clear_policy_cache
    from .errors import ModelError

    names = args.names or sorted(REGEN_RECIPES)
    unknown = [n for n in names if n not in REGEN_RECIPES]
    if unknown:
        print(f"no regeneration recipe for: {', '.join(unknown)} "
              f"(known: {', '.join(sorted(REGEN_RECIPES))})",
              file=sys.stderr)
        return 2
    directory = models_dir(args.models_dir)
    entries = {}
    for name in names:
        print(f"regenerating {name} ...", file=sys.stderr)
        try:
            _, report = regenerate_default_bundle(
                name, directory / name, epochs=args.epochs, seed=args.seed)
        except ModelError as exc:
            print(f"failed to regenerate {name}: {exc}", file=sys.stderr)
            return 1
        entries[name] = manifest_entry(directory / name, **report)
        print(f"  {report['samples']} samples, mae {report['mae']:.4f}")
    update_manifest(entries, args.models_dir)
    clear_policy_cache()   # repaired files must be re-resolvable at once
    print(f"manifest updated: {len(entries)} artifact(s)")
    return _cmd_models_verify(args)


def _cmd_train(args: argparse.Namespace) -> int:
    from .config import TrainingConfig, replace
    from .core.train import train_astraea
    from .errors import ReproError

    cfg = TrainingConfig()
    overrides = {}
    for name in ("episodes", "episode_duration_s", "checkpoint_every",
                 "fault_prob", "seed"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if args.small:
        overrides.setdefault("episodes", 4)
        overrides.update(episode_duration_s=overrides.get(
                             "episode_duration_s", 4.0),
                         hidden_layers=(8, 8), batch_size=16,
                         warmup_transitions=60, update_steps=1,
                         checkpoint_every=overrides.get(
                             "checkpoint_every", 2))
    if overrides:
        cfg = replace(cfg, **overrides)
    try:
        bundle, history = train_astraea(
            cfg, eval_every=args.eval_every, verbose=True,
            checkpoint_dir=args.checkpoint_dir, resume_from=args.resume,
            checkpoint_keep=args.checkpoint_keep, workers=args.workers)
    except ReproError as exc:
        print(f"training failed: {exc}", file=sys.stderr)
        return 1
    n_failed = len(history.failed_episodes)
    print(f"trained {cfg.episodes} episode(s) in {history.wall_time_s:.1f} s"
          f" ({n_failed} quarantined), best episode {history.best_episode}")
    if args.out:
        path = bundle.save(args.out)
        print(f"policy bundle saved to {path}")
    if args.history_out:
        from pathlib import Path

        doc = {k: v for k, v in history.__dict__.items()}
        path = Path(args.history_out)
        path.write_text(json.dumps(doc, indent=2))
        print(f"training history saved to {path}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .bench.scenarios import ROBUSTNESS_KINDS, robustness_scenario
    from .errors import ReproError
    from .netsim.faults import FaultSchedule

    if args.kind == "sample":
        schedule = FaultSchedule.sample(args.duration, seed=args.seed)
        print(schedule.describe())
        return 0
    if args.kind not in ROBUSTNESS_KINDS:
        print(f"unknown fault kind {args.kind!r} "
              f"(known: sample, {', '.join(ROBUSTNESS_KINDS)})",
              file=sys.stderr)
        return 2
    try:
        scenario = robustness_scenario(args.cc, kind=args.kind,
                                       quick=args.quick, seed=args.seed)
    except ReproError as exc:
        print(f"cannot build scenario: {exc}", file=sys.stderr)
        return 1
    print(scenario.faults.describe())
    if args.describe_only:
        return 0
    from .env import run_scenario
    from .metrics import summarize

    result = run_scenario(scenario)
    summary = summarize(result, args.cc, penalty_s=scenario.duration_s)
    for key, value in summary.as_dict().items():
        print(f"{key:20s} {value}")
    return 0


def _cmd_bench_robustness(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.robustness import (
        ALL_SCHEMES,
        ENGINES,
        FAULT_KINDS,
        SMALL_KINDS,
        SMALL_SCHEMES,
        markdown_report,
        run_robustness_sweep,
    )
    from .errors import ReproError

    def split(value, default):
        if value is None or value == "all":
            return default
        return tuple(v.strip() for v in value.split(",") if v.strip())

    if args.small:
        # The smoke subset, but explicit axis flags still win — e.g.
        # `--small --engines socket` runs the small matrix on the
        # loopback-UDP engine.
        schemes = split(args.schemes, SMALL_SCHEMES)
        kinds = split(args.kinds, SMALL_KINDS)
        engines = split(args.engines, ("fluid",))
        trials = 1
    else:
        schemes = split(args.schemes, ALL_SCHEMES)
        kinds = split(args.kinds, FAULT_KINDS)
        engines = split(args.engines, ENGINES)
        trials = args.trials

    def progress(done, total, cell):
        print(f"[{done}/{total}] {cell.engine}/{cell.scheme}/{cell.kind}: "
              f"recovered {cell.recovered}/{cell.trials}", file=sys.stderr)

    try:
        payload = run_robustness_sweep(
            schemes=schemes, kinds=kinds, engines=engines, trials=trials,
            quick=not args.full, threshold=args.threshold,
            progress=progress, workers=args.workers, policy=args.policy)
    except ReproError as exc:
        print(f"robustness sweep failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # No partial artifacts: the sweep either completes and writes
        # both files, or leaves the output directory untouched.
        print("robustness sweep interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    report = markdown_report(payload)
    exp_id = "robustness_small" if args.small else "robustness"
    if args.out_dir:
        out = Path(args.out_dir)
        json_path = reporting.write_results_file(out / f"{exp_id}.json",
                                                 payload)
        md_path = persist.write_text_atomic(out / f"{exp_id}.md",
                                            report + "\n")
    else:
        json_path = reporting.save_results(exp_id, payload)
        md_path = reporting.save_markdown(exp_id, report)
    print(report)
    print(f"\nJSON artifact: {json_path}\nmarkdown table: {md_path}",
          file=sys.stderr)
    return 0


def _cmd_bench_scenarios(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.robustness import ALL_SCHEMES, ENGINES
    from .bench.scenariobench import (
        BENCH_ID,
        SMALL_SCHEMES,
        SWEEP_FAMILIES,
        markdown_report,
        run_scenario_sweep,
    )
    from .errors import ReproError

    def split(value, default):
        if value is None or value == "all":
            return default
        return tuple(v.strip() for v in value.split(",") if v.strip())

    if args.small:
        # The smoke subset, but explicit axis flags still win.
        schemes = split(args.schemes, SMALL_SCHEMES)
        families = split(args.families, SWEEP_FAMILIES)
        engines = split(args.engines, ENGINES)
        trials = 1
    else:
        schemes = split(args.schemes, ALL_SCHEMES)
        families = split(args.families, SWEEP_FAMILIES)
        engines = split(args.engines, ENGINES)
        trials = args.trials

    def progress(done, total, cell):
        print(f"[{done}/{total}] {cell.engine}/{cell.scheme}/{cell.family}: "
              f"jfi={cell.jfi:.3f} util={cell.utilization:.3f}",
              file=sys.stderr)

    try:
        payload = run_scenario_sweep(
            schemes=schemes, families=families, engines=engines,
            trials=trials, quick=not args.full, progress=progress,
            workers=args.workers)
    except ReproError as exc:
        print(f"scenario sweep failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # No partial artifacts: the sweep either completes and writes
        # both files, or leaves the output directory untouched.
        print("scenario sweep interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    report = markdown_report(payload)
    if args.out_dir:
        out = Path(args.out_dir)
        json_path = reporting.write_results_file(out / f"{BENCH_ID}.json",
                                                 payload)
        md_path = persist.write_text_atomic(out / f"{BENCH_ID}.md",
                                            report + "\n")
    else:
        json_path = reporting.save_results(BENCH_ID, payload)
        md_path = reporting.save_markdown(BENCH_ID, report)
    print(report)
    print(f"\nJSON artifact: {json_path}\nmarkdown table: {md_path}",
          file=sys.stderr)
    return 0


def _cmd_bench_scaling(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.robustness import SMALL_KINDS, SMALL_SCHEMES
    from .bench.scaling import BENCH_ID, run_scaling_benchmark
    from .errors import ReproError

    def split(value, default):
        if value is None or value == "all":
            return default
        return tuple(v.strip() for v in value.split(",") if v.strip())

    try:
        payload = run_scaling_benchmark(
            workers=args.workers,
            schemes=split(args.schemes, SMALL_SCHEMES),
            kinds=split(args.kinds, SMALL_KINDS),
            engines=split(args.engines, ("fluid",)),
            trials=args.trials)
    except ReproError as exc:
        print(f"scaling benchmark failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("scaling benchmark interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    if args.out_dir:
        path = reporting.write_results_file(
            Path(args.out_dir) / f"{BENCH_ID}.json", payload)
    else:
        path = reporting.save_results(BENCH_ID, payload)
    print(f"{payload['cells']} cell(s), {payload['workers']} worker(s) on "
          f"{payload['cpu_count']} CPU(s): serial {payload['serial_s']:.2f}s"
          f" vs parallel {payload['parallel_s']:.2f}s "
          f"(speedup {payload['speedup']:.2f}x, deterministic="
          f"{payload['deterministic']})")
    print(f"JSON artifact: {path}", file=sys.stderr)
    return 0


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.engine import (
        BENCH_ID,
        check_equivalence,
        run_engine_benchmark,
    )
    from .errors import ReproError

    if args.check_only:
        verdict = check_equivalence()
        if verdict["passed"]:
            print(f"fast path equals reference on the pinned scenario "
                  f"({verdict['rows']} log rows, max delta "
                  f"{verdict['max_delta']:.3g} <= {verdict['tolerance']:g})")
            return 0
        print(f"ENGINE DIVERGENCE: {verdict}", file=sys.stderr)
        return 1

    if args.small:
        flow_counts = (2, 8)
        duration_s = 5.0
    else:
        flow_counts = (1, 2, 8, 16)
        duration_s = args.duration
    if args.flows:
        flow_counts = tuple(int(v) for v in args.flows.split(",") if v.strip())

    try:
        payload = run_engine_benchmark(
            flow_counts=flow_counts, duration_s=duration_s,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    except ReproError as exc:
        print(f"engine benchmark failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("engine benchmark interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    if args.out_dir:
        path = reporting.write_results_file(
            Path(args.out_dir) / f"{BENCH_ID}.json", payload)
    else:
        path = reporting.save_results(BENCH_ID, payload)

    from .bench import print_table
    print_table(
        "Engine fast path vs per-tick reference",
        ["flows", "fast ticks/s", "reference ticks/s", "speedup"],
        [[row["n_flows"], row["fast"]["ticks_per_s"],
          row["reference"]["ticks_per_s"], row["speedup"]]
         for row in payload["ticks_per_s"]],
    )
    ep = payload["episode"]
    eq = payload["equivalence"]
    print(f"\nepisode ({ep['n_flows']} flows, {ep['duration_s']:g}s): "
          f"fast {ep['fast']['elapsed_s']:.2f}s vs reference "
          f"{ep['reference']['elapsed_s']:.2f}s "
          f"(speedup {ep['speedup']:.2f}x)")
    print(f"equivalence: passed={eq['passed']} "
          f"max_delta={eq['max_delta']:.3g} over {eq['rows']} rows")
    print(f"JSON artifact: {path}", file=sys.stderr)
    return 0 if eq["passed"] else 1


def _cmd_bench_train(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.trainbench import (
        BENCH_ID,
        check_equivalence,
        run_train_benchmark,
    )
    from .errors import ReproError

    if args.check_only:
        verdict = check_equivalence()
        if verdict["passed"]:
            print(f"batched rollout equals the per-flow reference on the "
                  f"pinned episode ({verdict['rows']} transitions, "
                  f"{verdict['update_bursts']} update bursts, max delta "
                  f"{verdict['max_delta']:g} <= {verdict['tolerance']:g})")
            return 0
        print(f"TRAIN-PATH DIVERGENCE: {verdict}", file=sys.stderr)
        return 1

    if args.small:
        duration_s, episodes = 3.0, 2
    else:
        duration_s, episodes = args.duration, args.episodes

    try:
        payload = run_train_benchmark(
            n_flows=args.flows, duration_s=duration_s, episodes=episodes,
            workers=args.workers,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    except ReproError as exc:
        print(f"train benchmark failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("train benchmark interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    if args.out_dir:
        path = reporting.write_results_file(
            Path(args.out_dir) / f"{BENCH_ID}.json", payload)
    else:
        path = reporting.save_results(BENCH_ID, payload)

    from .bench import print_table
    serial = payload["modes"]["serial"]["steps_per_s"]
    print_table(
        "Training rollouts: batched fast path vs per-flow reference",
        ["mode", "episodes/s", "steps/s", "speedup"],
        [[mode, row["episodes_per_s"], row["steps_per_s"],
          row["steps_per_s"] / serial if serial else None]
         for mode, row in payload["modes"].items()],
    )
    eq = payload["equivalence"]
    print(f"\nequivalence: passed={eq['passed']} "
          f"max_delta={eq['max_delta']:g} over {eq['rows']} transitions, "
          f"{eq['update_bursts']} update bursts")
    print(f"JSON artifact: {path}", file=sys.stderr)
    return 0 if eq["passed"] else 1


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.fleetbench import (
        BENCH_ID,
        FLEET_POINTS,
        SMALL_POINTS,
        fleet_table_rows,
        run_fleet_benchmark,
    )
    from .errors import ReproError
    from .fleet import check_equivalence

    if args.check_only:
        verdict = check_equivalence(workers=args.workers)
        if verdict["passed"]:
            spec = verdict["spec"]
            print(f"fleet aggregates identical for workers "
                  f"{verdict['workers_compared']} on the pinned fleet "
                  f"({spec['n_shards']} shards x {spec['flows_per_shard']} "
                  f"flows, seed {spec['seed']})")
            return 0
        print(f"FLEET DIVERGENCE: {verdict}", file=sys.stderr)
        return 1

    points = SMALL_POINTS if args.small else FLEET_POINTS
    if args.points:
        try:
            points = tuple(
                tuple(int(v) for v in pair.split("x"))
                for pair in args.points.split(",") if pair.strip())
            if any(len(p) != 2 for p in points):
                raise ValueError(points)
        except ValueError:
            print(f"--points must look like '4x25,25x40', got "
                  f"{args.points!r}", file=sys.stderr)
            return 2

    try:
        payload = run_fleet_benchmark(
            points=points, cc=args.cc, seed=args.seed, workers=args.workers,
            small=args.small,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    except ReproError as exc:
        print(f"fleet benchmark failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("fleet benchmark interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    if args.out_dir:
        path = reporting.write_results_file(
            Path(args.out_dir) / f"{BENCH_ID}.json", payload)
    else:
        path = reporting.save_results(BENCH_ID, payload)

    from .bench import print_table
    print_table(
        "Fleet scaling: flow-ticks per wall-second, serial vs sharded",
        ["shards x flows", "flows", "serial ft/s", "sharded ft/s",
         "speedup", "jain", "util"],
        fleet_table_rows(payload),
    )
    eq = payload["equivalence"]
    gate = payload["speedup_gate"]
    print(f"\nequivalence: {eq['verdict']} for workers "
          f"{eq['workers_compared']}")
    if gate["applicable"]:
        print(f"speedup gate (>= {gate['required_speedup']:g}x at >= "
              f"{gate['min_flows']} flows): met={gate['met']} "
              f"(best {gate['best_speedup']:.2f}x on "
              f"{gate['cpu_count']} CPUs)")
    else:
        print(f"speedup gate not applicable on this host "
              f"({gate['cpu_count']} CPU(s) < {gate['min_cores']} or no "
              f">= {gate['min_flows']}-flow point measured)")
    print(f"JSON artifact: {path}", file=sys.stderr)
    return 0 if eq["passed"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .service.daemon import serve_main

    deadline = args.deadline if args.deadline and args.deadline > 0 \
        else None
    fallback = None if args.fallback == "none" else args.fallback
    try:
        return serve_main(
            host=args.host, port=args.port, scheme=args.scheme,
            batch_window_s=args.window, deadline_s=deadline,
            fallback=fallback, max_inflight=args.max_inflight,
            shards=args.shards, max_restarts=args.max_restarts)
    except ReproError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.serve import (
        BENCH_ID,
        DEFAULT_LEVELS,
        SMALL_LEVELS,
        run_serve_benchmark,
    )
    from .errors import ReproError

    if args.small:
        levels, duration = SMALL_LEVELS, 0.6
    else:
        levels, duration = DEFAULT_LEVELS, args.duration
    if args.levels:
        levels = tuple(int(v) for v in args.levels.split(",") if v.strip())
    connect = None
    if args.connect:
        connect = []
        for part in args.connect.split(","):
            host, _, port = part.strip().rpartition(":")
            connect.append((host or "127.0.0.1", int(port)))
    try:
        payload = run_serve_benchmark(
            levels, duration_s=duration, mtp_s=args.mtp,
            shards=args.shards, scheme=args.scheme, window_s=args.window,
            deadline_s=args.deadline if args.deadline > 0 else None,
            max_inflight=args.max_inflight,
            conns_per_shard=args.conns_per_shard, timeout=args.timeout,
            connect=connect,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    except ReproError as exc:
        print(f"serve benchmark failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("serve benchmark interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    if args.out_dir:
        path = reporting.write_results_file(
            Path(args.out_dir) / f"{BENCH_ID}.json", payload)
    else:
        path = reporting.save_results(BENCH_ID, payload)

    from .bench import print_table
    print_table(
        "Serving daemon under closed-loop load "
        f"({payload['config']['shards']} shard(s), "
        f"{payload['config']['window_s'] * 1e3:g} ms window)",
        ["flows", "actions/s", "p50 (ms)", "p99 (ms)", "p999 (ms)",
         "batch", "unanswered"],
        [[row["n_flows"], row["actions_per_s"],
          row["latency"]["p50_s"] * 1e3, row["latency"]["p99_s"] * 1e3,
          row["latency"]["p999_s"] * 1e3,
          row["daemon"]["mean_batch_size"], row["unanswered"]]
         for row in payload["levels"]],
    )
    if payload["clean_shutdown"] is not None:
        print(f"\ndaemon shutdown clean: {payload['clean_shutdown']}")
    print(f"JSON artifact: {path}", file=sys.stderr)
    return 0


def _cmd_bench_socket(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import reporting
    from .bench.socketbench import (
        BENCH_ID,
        run_socket_benchmark,
        run_socket_smoke,
    )
    from .errors import ReproError

    if args.smoke:
        try:
            verdict = run_socket_smoke(seed=args.seed)
        except ReproError as exc:
            print(f"socket smoke failed: {exc}", file=sys.stderr)
            return 1
        loss, rec = verdict["loss"], verdict["recovery"]
        print(f"loss transfer: payload_ok={loss['payload_ok']} "
              f"({loss['n_segments']} segments, "
              f"{loss['retransmits']} retransmits, "
              f"{loss['duplicates']} duplicates)")
        print(f"recovery ({rec['scheme']}/{rec['kind']}): "
              f"recovered={rec['recovered']} "
              f"t_rec={rec['recovery_time_s']}s corrupt={rec['corrupt']}")
        if not verdict["ok"]:
            print("SOCKET SMOKE FAILED", file=sys.stderr)
            return 1
        return 0

    try:
        payload = run_socket_benchmark(
            small=args.small, seed=args.seed,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    except ReproError as exc:
        print(f"socket benchmark failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("socket benchmark interrupted; no artifacts written",
              file=sys.stderr)
        return 130
    if args.out_dir:
        path = reporting.write_results_file(
            Path(args.out_dir) / f"{BENCH_ID}.json", payload)
    else:
        path = reporting.save_results(BENCH_ID, payload)

    from .bench import print_table
    print_table(
        "Socket datapath: delivered goodput vs emulated capacity",
        ["bandwidth (Mbps)", "achieved (Mbps)", "efficiency",
         "wire segs/s", "pkts/seg", "retransmits"],
        [[row["bandwidth_mbps"], row["achieved_mbps"], row["efficiency"],
          row["wire_segs_per_wall_s"], row["pkts_per_seg"],
          row["retransmits"]]
         for row in payload["throughput"]],
    )
    loss, rec = payload["loss"], payload["recovery"]
    print(f"\n5% seeded loss: payload_ok={loss['payload_ok']} "
          f"goodput efficiency {loss['goodput_efficiency']:.3f} "
          f"({loss['retransmits']} retransmits / "
          f"{loss['n_segments']} segments)")
    print(f"recovery ({rec['scheme']}/{rec['kind']}): "
          f"recovered={rec['recovered']} t_rec={rec['recovery_time_s']}s "
          f"baseline {rec['baseline_mbps']:.2f} Mbps")
    print(f"JSON artifact: {path}", file=sys.stderr)
    ok = loss["payload_ok"] and rec["corrupt"] == 0
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a scenario JSON file")
    p_run.add_argument("scenario", help="path to a scenario JSON")
    p_run.add_argument("--out", default=None,
                       help="save the full per-interval logs here")
    p_run.add_argument("--plot", action="store_true",
                       help="render per-flow throughput timelines")
    p_run.add_argument("--ascii", action="store_true",
                       help="use plain-ASCII sparklines")
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare schemes side by side")
    p_cmp.add_argument("--schemes", default="astraea,cubic,bbr,vegas")
    p_cmp.add_argument("--bandwidth", type=float, default=100.0)
    p_cmp.add_argument("--rtt", type=float, default=30.0)
    p_cmp.add_argument("--buffer", type=float, default=1.0)
    p_cmp.add_argument("--flows", type=int, default=3)
    p_cmp.add_argument("--interval", type=float, default=20.0)
    p_cmp.add_argument("--flow-duration", type=float, default=60.0)
    p_cmp.add_argument("--duration", type=float, default=100.0)
    p_cmp.add_argument("--trials", type=int, default=1)
    p_cmp.add_argument("--workers", type=int, default=None,
                       help="process-pool size for the trials "
                            "(default: $REPRO_WORKERS, else serial)")
    p_cmp.set_defaults(func=_cmd_compare)

    p_tpl = sub.add_parser("template", help="print a scenario template")
    p_tpl.set_defaults(func=_cmd_template)

    p_info = sub.add_parser("info", help="list schemes/traces/models")
    p_info.set_defaults(func=_cmd_info)

    p_models = sub.add_parser(
        "models", help="model-artifact integrity (verify/info/regenerate)")
    models_sub = p_models.add_subparsers(dest="models_command", required=True)

    p_verify = models_sub.add_parser(
        "verify", help="check every bundle against the manifest")
    p_verify.add_argument("--models-dir", default=None,
                          help="override the models directory")
    p_verify.set_defaults(func=_cmd_models_verify)

    p_minfo = models_sub.add_parser(
        "info", help="per-bundle manifest details")
    p_minfo.add_argument("--models-dir", default=None)
    p_minfo.set_defaults(func=_cmd_models_info)

    p_regen = models_sub.add_parser(
        "regenerate",
        help="rebuild bundles deterministically from the analytic "
             "reference and restamp the manifest")
    p_regen.add_argument("names", nargs="*",
                         help="bundle filenames (default: all recipes)")
    p_regen.add_argument("--models-dir", default=None)
    p_regen.add_argument("--epochs", type=int, default=3000)
    p_regen.add_argument("--seed", type=int, default=0)
    p_regen.set_defaults(func=_cmd_models_regenerate)

    p_train = sub.add_parser(
        "train", help="run or resume Astraea training with checkpoints")
    p_train.add_argument("--episodes", type=int, default=None)
    p_train.add_argument("--episode-duration-s", type=float, default=None,
                         dest="episode_duration_s")
    p_train.add_argument("--seed", type=int, default=None)
    p_train.add_argument("--fault-prob", type=float, default=None,
                         dest="fault_prob",
                         help="probability an episode carries a sampled "
                              "link-fault schedule")
    p_train.add_argument("--small", action="store_true",
                         help="tiny smoke-test configuration")
    p_train.add_argument("--eval-every", type=int, default=25)
    p_train.add_argument("--checkpoint-dir", default=None,
                         help="write periodic atomic checkpoints here")
    p_train.add_argument("--checkpoint-every", type=int, default=None,
                         dest="checkpoint_every")
    p_train.add_argument("--checkpoint-keep", type=int, default=1,
                         dest="checkpoint_keep",
                         help="retain the last N checkpoint payloads "
                              "(rotation; default 1)")
    p_train.add_argument("--workers", type=int, default=None,
                         help="process-pool size for the periodic eval "
                              "pass (default: $REPRO_WORKERS, else serial)")
    p_train.add_argument("--resume", default=None, metavar="DIR",
                         help="resume bit-exactly from the checkpoint in "
                              "DIR (also keeps checkpointing there)")
    p_train.add_argument("--out", default=None,
                         help="save the best policy bundle here")
    p_train.add_argument("--history-out", default=None,
                         help="save the training history JSON here")
    p_train.set_defaults(func=_cmd_train)

    p_faults = sub.add_parser(
        "faults", help="inspect or run link-fault schedules")
    p_faults.add_argument("kind", nargs="?", default="sample",
                          help="'sample' to print a random schedule, or a "
                               "robustness-scenario kind (blackout, flap, "
                               "loss-burst, delay-spike, reorder, mixed)")
    p_faults.add_argument("--cc", default="astraea",
                          help="scheme to run under the fault")
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--duration", type=float, default=90.0,
                          help="schedule duration for 'sample'")
    p_faults.add_argument("--quick", action="store_true",
                          help="30 s scenario instead of 90 s")
    p_faults.add_argument("--describe-only", action="store_true",
                          help="print the schedule without running")
    p_faults.set_defaults(func=_cmd_faults)

    p_serve = sub.add_parser(
        "serve",
        help="run the asyncio inference-serving daemon (SIGTERM drains)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8731,
                         help="base TCP port; 0 picks ephemeral ports "
                              "(announced as 'LISTENING host port' lines)")
    p_serve.add_argument("--scheme", default="astraea",
                         help="policy bundle to serve")
    p_serve.add_argument("--window", type=float, default=0.005,
                         help="batching window in seconds (default 5 ms)")
    p_serve.add_argument("--deadline", type=float, default=0.050,
                         help="per-request queue deadline in seconds "
                              "(0 disables)")
    p_serve.add_argument("--fallback", default="analytic",
                         choices=("analytic", "none"),
                         help="degraded-mode answer for bad states and "
                              "deadline misses")
    p_serve.add_argument("--max-inflight", type=int, default=4096,
                         dest="max_inflight",
                         help="admission-control ceiling per shard")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="daemon processes; flow-id hash routes "
                              "each flow to one shard (port+index)")
    p_serve.add_argument("--max-restarts", type=int, default=5,
                         dest="max_restarts",
                         help="consecutive crash-restarts per shard "
                              "before the supervisor abandons it")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser(
        "bench", help="benchmark sweeps (robustness report)")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_rob = bench_sub.add_parser(
        "robustness",
        help="recovery metrics per (scheme, fault kind, engine)")
    p_rob.add_argument("--schemes", default=None,
                       help="comma-separated scheme names (default: all)")
    p_rob.add_argument("--kinds", default=None,
                       help="comma-separated fault kinds (default: all 5)")
    p_rob.add_argument("--engines", default=None,
                       help="comma-separated engines: fluid, packet, socket "
                            "(default: fluid,packet)")
    p_rob.add_argument("--trials", type=int, default=2,
                       help="seeds per (scheme, fault, engine) cell")
    p_rob.add_argument("--threshold", type=float, default=0.9,
                       help="recovered = throughput back at this fraction "
                            "of the pre-fault steady state")
    p_rob.add_argument("--small", action="store_true",
                       help="CI smoke subset: 2 schemes x 3 faults, fluid "
                            "engine, 1 trial (explicit --schemes/--kinds/"
                            "--engines still override)")
    p_rob.add_argument("--full", action="store_true",
                       help="full 90 s scenarios instead of quick 30 s")
    p_rob.add_argument("--out-dir", default=None,
                       help="write artifacts here instead of "
                            "benchmarks/results/")
    p_rob.add_argument("--workers", type=int, default=None,
                       help="process-pool size for the sweep cells "
                            "(default: $REPRO_WORKERS, else serial)")
    p_rob.add_argument("--policy", default=None,
                       help="model-bundle path substituted into every "
                            "matching-scheme flow (learned schemes only; "
                            "diff a candidate bundle against the shipped "
                            "one)")
    p_rob.set_defaults(func=_cmd_bench_robustness)

    p_scn = bench_sub.add_parser(
        "scenarios",
        help="JFI x utilization per (scheme, workload family, engine) "
             "over the incast/asymmetric-rtt/background-udp families "
             "(writes BENCH_scenarios.json)")
    p_scn.add_argument("--schemes", default=None,
                       help="comma-separated scheme names (default: all)")
    p_scn.add_argument("--families", default=None,
                       help="comma-separated registry family names "
                            "(default: incast,asymmetric-rtt,"
                            "background-udp; see 'repro info')")
    p_scn.add_argument("--engines", default=None,
                       help="comma-separated engines: fluid, packet, socket "
                            "(default: fluid,packet)")
    p_scn.add_argument("--trials", type=int, default=2,
                       help="seeds per (scheme, family, engine) cell")
    p_scn.add_argument("--small", action="store_true",
                       help="CI smoke subset: 3 schemes x 3 families on "
                            "both engines, 1 trial (explicit --schemes/"
                            "--families/--engines still override)")
    p_scn.add_argument("--full", action="store_true",
                       help="full-length scenarios instead of quick ones")
    p_scn.add_argument("--out-dir", default=None,
                       help="write artifacts here instead of "
                            "benchmarks/results/")
    p_scn.add_argument("--workers", type=int, default=None,
                       help="process-pool size for the sweep cells "
                            "(default: $REPRO_WORKERS, else serial)")
    p_scn.set_defaults(func=_cmd_bench_scenarios)

    p_scale = bench_sub.add_parser(
        "scaling",
        help="serial-vs-parallel speedup of the small robustness sweep "
             "(writes BENCH_parallel.json)")
    p_scale.add_argument("--schemes", default=None,
                         help="comma-separated scheme names "
                              "(default: the CI smoke subset)")
    p_scale.add_argument("--kinds", default=None,
                         help="comma-separated fault kinds "
                              "(default: the CI smoke subset)")
    p_scale.add_argument("--engines", default=None,
                         help="comma-separated engines (default: fluid)")
    p_scale.add_argument("--trials", type=int, default=1)
    p_scale.add_argument("--workers", type=int, default=None,
                         help="pool size of the parallel leg "
                              "(default: $REPRO_WORKERS, else 2)")
    p_scale.add_argument("--out-dir", default=None,
                         help="write the artifact here instead of "
                              "benchmarks/results/")
    p_scale.set_defaults(func=_cmd_bench_scaling)

    p_eng = bench_sub.add_parser(
        "engine",
        help="fluid-engine fast path vs per-tick reference "
             "(writes BENCH_engine.json)")
    p_eng.add_argument("--flows", default=None,
                       help="comma-separated flow counts for the ticks/s "
                            "sweep (default: 1,2,8,16)")
    p_eng.add_argument("--duration", type=float, default=30.0,
                       help="simulated seconds per measurement (default 30)")
    p_eng.add_argument("--small", action="store_true",
                       help="CI smoke subset: 2 and 8 flows, 5 s episodes")
    p_eng.add_argument("--check-only", action="store_true",
                       help="only run the pinned fast-vs-reference "
                            "equivalence scenario; non-zero exit on any "
                            "divergence, no artifact written")
    p_eng.add_argument("--out-dir", default=None,
                       help="write the artifact here instead of "
                            "benchmarks/results/")
    p_eng.set_defaults(func=_cmd_bench_engine)

    p_train = bench_sub.add_parser(
        "train",
        help="training-rollout throughput: serial vs batched vs "
             "batched+workers (writes BENCH_train.json)")
    p_train.add_argument("--flows", type=int, default=8,
                         help="agent flows per episode (default 8)")
    p_train.add_argument("--duration", type=float, default=10.0,
                         help="simulated seconds per episode (default 10)")
    p_train.add_argument("--episodes", type=int, default=3,
                         help="episodes per mode (default 3)")
    p_train.add_argument("--workers", type=int, default=2,
                         help="pool size of the batched+workers mode "
                              "(default 2)")
    p_train.add_argument("--small", action="store_true",
                         help="CI smoke subset: 2 episodes of 3 s")
    p_train.add_argument("--check-only", action="store_true",
                         help="only run the pinned serial-vs-batched "
                              "equivalence episode; non-zero exit on any "
                              "divergence, no artifact written")
    p_train.add_argument("--out-dir", default=None,
                         help="write the artifact here instead of "
                              "benchmarks/results/")
    p_train.set_defaults(func=_cmd_bench_train)

    p_fleet = bench_sub.add_parser(
        "fleet",
        help="fleet scaling sweep: flows per wall-second 10 -> 10k, "
             "serial vs sharded (writes BENCH_fleet.json)")
    p_fleet.add_argument("--points", default=None,
                         help="comma-separated shard-count x flows-per-"
                              "shard pairs, e.g. '4x25,25x40' "
                              "(default: the 10 -> 10,000 ladder)")
    p_fleet.add_argument("--cc", default="cubic",
                         help="scheme every fleet flow runs (default cubic)")
    p_fleet.add_argument("--seed", type=int, default=0,
                         help="fleet seed (default 0)")
    p_fleet.add_argument("--workers", type=int, default=2,
                         help="pool size of the sharded leg (default 2)")
    p_fleet.add_argument("--small", action="store_true",
                         help="CI smoke subset: the 10- and 100-flow points")
    p_fleet.add_argument("--check-only", action="store_true",
                         help="only run the pinned serial-vs-sharded "
                              "equivalence fleet; non-zero exit unless the "
                              "aggregates are identical, no artifact "
                              "written")
    p_fleet.add_argument("--out-dir", default=None,
                         help="write the artifact here instead of "
                              "benchmarks/results/")
    p_fleet.set_defaults(func=_cmd_bench_fleet)

    p_srv = bench_sub.add_parser(
        "serve",
        help="closed-loop load sweep against a live serving daemon "
             "(writes BENCH_serve.json)")
    p_srv.add_argument("--levels", default=None,
                       help="comma-separated concurrent-flow counts "
                            "(default: 8,64,256,1024)")
    p_srv.add_argument("--duration", type=float, default=3.0,
                       help="seconds of load per level (default 3)")
    p_srv.add_argument("--mtp", type=float, default=0.020,
                       help="per-flow request cadence in seconds")
    p_srv.add_argument("--shards", type=int, default=1,
                       help="daemon shard processes to spawn")
    p_srv.add_argument("--scheme", default="astraea")
    p_srv.add_argument("--window", type=float, default=0.005,
                       help="daemon batching window in seconds")
    p_srv.add_argument("--deadline", type=float, default=0.050,
                       help="daemon per-request deadline (0 disables)")
    p_srv.add_argument("--max-inflight", type=int, default=4096,
                       dest="max_inflight")
    p_srv.add_argument("--conns-per-shard", type=int, default=8,
                       dest="conns_per_shard",
                       help="client connections multiplexing the flows")
    p_srv.add_argument("--timeout", type=float, default=30.0,
                       help="per-request client timeout in seconds")
    p_srv.add_argument("--connect", default=None,
                       help="comma-separated host:port of an already-"
                            "running daemon (default: spawn one)")
    p_srv.add_argument("--small", action="store_true",
                       help="CI smoke subset: 4/16/64 flows, 0.6 s "
                            "levels")
    p_srv.add_argument("--out-dir", default=None,
                       help="write the artifact here instead of "
                            "benchmarks/results/")
    p_srv.set_defaults(func=_cmd_bench_serve)

    p_sock = bench_sub.add_parser(
        "socket",
        help="loopback-UDP datapath: wire rate, goodput under 5% loss, "
             "post-fault recovery (writes BENCH_socket.json)")
    p_sock.add_argument("--seed", type=int, default=1,
                        help="impairment-schedule seed")
    p_sock.add_argument("--small", action="store_true",
                        help="CI subset: 2 bandwidth levels, short runs")
    p_sock.add_argument("--smoke", action="store_true",
                        help="gating check only: byte-exact 5%%-loss "
                             "transfer + finite recovery; no artifact")
    p_sock.add_argument("--out-dir", default=None,
                        help="write the artifact here instead of "
                             "benchmarks/results/")
    p_sock.set_defaults(func=_cmd_bench_socket)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
