"""Streaming service metrics: latency histogram + text exposition.

The serving daemon is long-lived, so every metric here is O(1) in
memory no matter how many requests pass through: the latency histogram
is a fixed array of log-spaced buckets (the same bounded-accounting
discipline as :data:`repro.service.inference.RECENT_BATCHES`), and the
exposition format is the plain ``name value`` / ``name{quantile="p"}``
text that Prometheus-style scrapers and humans both read.
"""

from __future__ import annotations

import math

import numpy as np

from .inference import ServiceAccounting

#: Histogram range: 1 microsecond .. 100 seconds, log-spaced.
_LO_S = 1e-6
_HI_S = 100.0
#: Buckets per decade; 8 decades in range -> 160 finite buckets.
_PER_DECADE = 20


class LatencyHistogram:
    """Fixed-size log-bucketed latency histogram with quantile reads.

    ``record`` is O(1); ``quantile`` walks the (small, fixed) bucket
    array and interpolates linearly inside the winning bucket, which is
    accurate to a bucket width (~12 % with 20 buckets/decade) — plenty
    for p50/p99/p999 service-latency reporting, without retaining a
    sample list that grows with daemon lifetime.
    """

    def __init__(self) -> None:
        decades = math.log10(_HI_S / _LO_S)
        n = int(round(decades * _PER_DECADE))
        # Bucket i covers [edges[i], edges[i+1]); +2 for underflow and
        # overflow catch-alls at the ends.
        self._edges = _LO_S * np.power(10.0, np.arange(n + 1) / _PER_DECADE)
        self._counts = np.zeros(n + 2, dtype=np.int64)
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        """Fold one latency observation into the histogram."""
        seconds = float(seconds)
        if not math.isfinite(seconds) or seconds < 0.0:
            return
        index = int(np.searchsorted(self._edges, seconds, side="right"))
        self._counts[index] += 1
        self.count += 1
        self.sum_s += seconds
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The latency at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if seen + c >= target:
                frac = (target - seen) / c
                if i == 0:                       # underflow bucket
                    return float(min(self._edges[0], self.max_s))
                if i >= len(self._edges):        # overflow bucket
                    return self.max_s
                lo, hi = self._edges[i - 1], self._edges[i]
                # Interpolated position, clamped to the observed max so
                # a quantile never exceeds any recorded latency.
                return float(min(lo + frac * (hi - lo), self.max_s))
            seen += c
        return self.max_s

    def summary(self) -> dict[str, float]:
        """The percentile block every artifact and STATS reply carries."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
            "p999_s": self.quantile(0.999),
            "max_s": self.max_s,
        }


def render_metrics(accounting: ServiceAccounting,
                   latency: LatencyHistogram | None = None,
                   extra: dict[str, float] | None = None,
                   prefix: str = "repro_service") -> str:
    """Text exposition of the service counters and latency quantiles.

    One ``<prefix>_<name> <value>`` line per counter, plus
    ``<prefix>_latency_seconds{quantile="..."}`` lines when a histogram
    is supplied — the long-promised observability surface over
    :class:`~repro.service.inference.ServiceAccounting`.
    """
    lines = []
    counters = dict(accounting.counters())
    if extra:
        counters.update(extra)
    for name, value in counters.items():
        if isinstance(value, float):
            lines.append(f"{prefix}_{name} {value:.9g}")
        else:
            lines.append(f"{prefix}_{name} {value}")
    if latency is not None:
        s = latency.summary()
        for q, key in (("0.5", "p50_s"), ("0.99", "p99_s"),
                       ("0.999", "p999_s")):
            lines.append(f'{prefix}_latency_seconds{{quantile="{q}"}} '
                         f"{s[key]:.9g}")
        lines.append(f"{prefix}_latency_seconds_count {s['count']}")
        lines.append(f"{prefix}_latency_seconds_sum {latency.sum_s:.9g}")
        lines.append(f"{prefix}_latency_seconds_max {s['max_s']:.9g}")
    return "\n".join(lines) + "\n"
