"""Astraea inference service (§4) and the scalability study of §5.4.

The paper serves many concurrent senders from one shared inference service
that batches requests over a 5 ms window, versus Orca's architecture of
one inference-server instance per flow.  This module implements both
architectures over the NumPy actor and measures their CPU cost, which is
what Fig. 16 compares:

* :class:`BatchedInferenceService` — a single shared actor; requests that
  arrive within one batching window are served by one batched forward pass.
* :class:`PerFlowServers` — one actor instance per flow, one forward pass
  per request (the resource-inefficient baseline).

Both keep accounting (requests, batches, process-CPU-seconds) so the
benchmark can report overhead as a function of the number of flows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.policy import PolicyBundle
from ..core.state import LOCAL_FEATURES
from ..errors import DeadlineExceededError, InvalidStateError, ServiceError


def analytic_fallback_action(state: np.ndarray) -> float:
    """Conservative closed-form action from the newest feature frame.

    The degraded-mode path when the learned actor cannot (or must not)
    serve a request: non-finite state entries, or a request that aged
    past the service deadline.  It rebuilds the reference policy's raw
    signals from the normalised §3.3 features of the most recent history
    frame — the latency ratio (feature 2) plays rtt/rtt_min directly,
    the loss ratio (feature 5) approximates the loss rate, and the
    queued-packet estimate ``diff = cwnd * (1 - rtt_min/rtt)`` is
    reconstructed from the relative cwnd (feature 4) scaled by a nominal
    BDP of ten reference target-queue lengths.  Non-finite entries are
    zeroed first, so the result is always finite and in (-1, 1).
    """
    from ..core.reference import AstraeaReference

    frame = np.asarray(state, dtype=float).ravel()[-LOCAL_FEATURES:]
    frame = np.clip(np.nan_to_num(frame, nan=0.0, posinf=6.0, neginf=0.0),
                    0.0, 6.0)
    ref = AstraeaReference()
    rtt = max(float(frame[2]), 1.0)
    loss = float(frame[5])
    cwnd_pkts = float(frame[4]) * 10.0 * ref.target_pkts
    diff = cwnd_pkts * (1.0 - 1.0 / rtt)
    action = ref.policy_action(rtt_min=1.0, rtt=rtt, diff=diff,
                               loss_rate=loss)
    return float(np.clip(action, -0.999, 0.999))


def default_service_policy(scheme: str = "astraea") -> PolicyBundle:
    """The shipped bundle for ``scheme``, as a hard service dependency.

    Controllers can degrade to their analytic fallbacks, but an inference
    *service* exists to execute a trained actor — if the fallback chain
    resolves to nothing usable this raises
    :class:`~repro.errors.ServiceError` with the repair command instead
    of silently serving garbage.
    """
    from ..core.policy import load_default_policy

    bundle = load_default_policy(scheme)
    if bundle is None:
        raise ServiceError(
            f"no usable {scheme} policy bundle for the inference service; "
            f"run 'python -m repro models regenerate' to rebuild the "
            f"shipped artifacts")
    return bundle


#: Batch sizes retained for inspection (most recent first to fall out).
#: Aggregates (count/sum/max) are streaming and cover the full history;
#: only the materialised ``batch_sizes`` view is bounded — a long-lived
#: daemon must not grow a Python list forever (the ring-buffer idiom of
#: ``repro.netsim.stats``).
RECENT_BATCHES = 512


@dataclass
class ServiceAccounting:
    """Work and health counters of an inference backend.

    Batch-size accounting is streaming: ``batch_count`` / ``batch_sum``
    / ``batch_max`` cover every forward pass ever made, while the
    ``batch_sizes`` view materialises only the most recent
    :data:`RECENT_BATCHES` entries from a fixed-size ring buffer, so the
    accounting stays O(1) in memory over an unbounded daemon lifetime.
    """

    requests: int = 0
    forward_passes: int = 0
    cpu_time_s: float = 0.0
    #: Streaming batch-size aggregates over the full service lifetime.
    batch_count: int = 0
    batch_sum: int = 0
    batch_max: int = 0
    #: Requests refused outright with a typed error (malformed input).
    rejected: int = 0
    #: Requests answered by the analytic fallback instead of the actor.
    fallbacks: int = 0
    #: Requests that aged past the service deadline before being served.
    deadline_misses: int = 0
    #: Requests answered with the neutral action 0.0 because the actor
    #: emitted a non-finite value and no fallback was configured.
    neutral_answers: int = 0
    #: Health flag: True once any request was served degraded (fallback,
    #: neutral answer, or deadline miss).  Monitoring reads this; the
    #: service never clears it by itself.
    degraded: bool = False
    #: Fixed-capacity ring of recent batch sizes (see class docstring).
    _recent: np.ndarray = field(default_factory=lambda: np.zeros(
        RECENT_BATCHES, dtype=np.int64), repr=False, compare=False)

    @property
    def batch_sizes(self) -> list[int]:
        """The most recent (up to :data:`RECENT_BATCHES`) batch sizes,
        oldest first — a bounded view, not the full history."""
        n = min(self.batch_count, RECENT_BATCHES)
        if n == 0:
            return []
        cursor = self.batch_count % RECENT_BATCHES
        ring = np.concatenate([self._recent[cursor:], self._recent[:cursor]])
        return [int(v) for v in ring[-n:]]

    @property
    def mean_batch_size(self) -> float:
        """Mean batch size over the *full* history (streaming)."""
        if self.batch_count == 0:
            return 0.0
        return self.batch_sum / self.batch_count

    def record_batch(self, size: int) -> None:
        """Account one forward pass covering ``size`` requests."""
        self._recent[self.batch_count % RECENT_BATCHES] = size
        self.batch_count += 1
        self.batch_sum += int(size)
        self.batch_max = max(self.batch_max, int(size))

    def mark_degraded(self) -> None:
        self.degraded = True

    def counters(self) -> dict[str, float]:
        """The scalar counters as a plain dict (metrics export)."""
        return {
            "requests": self.requests,
            "forward_passes": self.forward_passes,
            "cpu_time_s": self.cpu_time_s,
            "batch_count": self.batch_count,
            "batch_sum": self.batch_sum,
            "batch_max": self.batch_max,
            "mean_batch_size": self.mean_batch_size,
            "rejected": self.rejected,
            "fallbacks": self.fallbacks,
            "deadline_misses": self.deadline_misses,
            "neutral_answers": self.neutral_answers,
            "degraded": int(self.degraded),
        }


class BatchedInferenceService:
    """Shared-actor service with a fixed batching window.

    ``submit`` enqueues a request stamped with its (simulated) arrival
    time; ``flush`` runs one batched forward per elapsed batching window
    and returns ``{request_id: action}``.  ``serve_trace`` drives a whole
    request timeline through the service, which is what the overhead
    benchmark uses.

    Hardening (the service is long-lived; one bad client must not take
    it down):

    * Submitted states are validated for shape and finiteness.  A wrong
      shape always raises :class:`~repro.errors.InvalidStateError`; a
      right-shaped state with NaN/inf entries raises too — unless a
      ``fallback`` is configured, in which case the request is answered
      by the analytic policy instead of the actor.
    * ``deadline_s`` bounds how long a request may sit in the queue
      (simulated arrival time vs. flush time).  Overdue requests go to
      the fallback when one is configured, else raise
      :class:`~repro.errors.DeadlineExceededError`.
    * A finite state can still overflow the actor into a non-finite
      action; such rows are answered by the fallback (or neutrally, with
      no fallback configured) instead of leaking NaN to the sender.
    * Every degraded answer sets ``accounting.degraded`` and bumps the
      ``fallbacks`` / ``deadline_misses`` counters.
    """

    def __init__(self, policy: PolicyBundle, batch_window_s: float = 0.005,
                 deadline_s: float | None = None,
                 fallback: str | Callable[[np.ndarray], float] | None = None):
        if batch_window_s <= 0:
            raise ServiceError("batch window must be positive")
        if deadline_s is not None and deadline_s <= 0:
            raise ServiceError("deadline must be positive")
        if fallback is None or callable(fallback):
            self._fallback = fallback
        elif fallback == "analytic":
            self._fallback = analytic_fallback_action
        else:
            raise ServiceError(
                f"unknown fallback {fallback!r}; use 'analytic', a "
                f"callable, or None")
        self.policy = policy
        self.batch_window_s = batch_window_s
        self.deadline_s = deadline_s
        self.accounting = ServiceAccounting()
        # (request_id, state, arrival_s, use_fallback)
        self._queue: list[tuple[int, np.ndarray, float | None, bool]] = []

    @classmethod
    def from_default(cls, scheme: str = "astraea",
                     batch_window_s: float = 0.005,
                     deadline_s: float | None = None,
                     fallback: str | Callable[[np.ndarray], float] | None
                     = None) -> "BatchedInferenceService":
        """A service over the shipped bundle (see
        :func:`default_service_policy`)."""
        return cls(default_service_policy(scheme),
                   batch_window_s=batch_window_s, deadline_s=deadline_s,
                   fallback=fallback)

    def submit(self, request_id: int, state: np.ndarray,
               arrival_s: float | None = None) -> None:
        """Enqueue one request; validates the state before it is accepted.

        ``arrival_s`` is the request's (simulated) arrival time; it only
        matters when the service has a ``deadline_s``.
        """
        state = np.asarray(state, dtype=float)
        if state.ndim != 1 or state.shape[0] != self.policy.actor.in_dim:
            self.accounting.rejected += 1
            raise InvalidStateError(
                f"state must be a vector of dim {self.policy.actor.in_dim}, "
                f"got shape {state.shape}")
        use_fallback = False
        if not np.isfinite(state).all():
            if self._fallback is None:
                self.accounting.rejected += 1
                raise InvalidStateError(
                    f"state for request {request_id} contains non-finite "
                    f"entries and the service has no fallback")
            use_fallback = True
        self._queue.append((request_id, state, arrival_s, use_fallback))
        self.accounting.requests += 1

    def _deadline_missed(self, arrival_s: float | None,
                         now_s: float | None) -> bool:
        return (self.deadline_s is not None and arrival_s is not None
                and now_s is not None
                and now_s - arrival_s > self.deadline_s)

    def flush(self, now_s: float | None = None) -> dict[int, float]:
        """Serve everything queued in the current window.

        One batched forward pass covers the healthy requests; requests
        flagged for fallback — non-finite state at submit, or older than
        ``deadline_s`` relative to ``now_s`` — are answered analytically.

        With no fallback configured an overdue request cannot be
        answered, but it must not take the rest of the window down with
        it: the remaining requests are served first, and only then does
        the flush raise :class:`~repro.errors.DeadlineExceededError`
        carrying the ``served`` answers and the ``missed`` request ids —
        no request ever silently vanishes.
        """
        if not self._queue:
            return {}
        queue, self._queue = self._queue, []
        out: dict[int, float] = {}
        healthy: list[tuple[int, np.ndarray]] = []
        unservable: list[tuple[int, float]] = []
        for rid, state, arrival_s, use_fallback in queue:
            missed = self._deadline_missed(arrival_s, now_s)
            if missed:
                self.accounting.deadline_misses += 1
                if self._fallback is None:
                    self.accounting.mark_degraded()
                    unservable.append((rid, now_s - arrival_s))
                    continue
            if use_fallback or missed:
                out[rid] = float(self._fallback(state))
                self.accounting.fallbacks += 1
                self.accounting.mark_degraded()
            else:
                healthy.append((rid, state))
        if healthy:
            states = np.vstack([s for _, s in healthy])
            t0 = time.process_time()
            # A finite but extreme state can still overflow the actor's
            # matmuls into inf/NaN, which np.clip would pass through —
            # so degrade those rows individually after the batched pass.
            with np.errstate(over="ignore", invalid="ignore"):
                actions = self.policy.actor.infer(states)[:, 0]
            self.accounting.cpu_time_s += time.process_time() - t0
            self.accounting.forward_passes += 1
            self.accounting.record_batch(len(healthy))
            for (rid, state), a in zip(healthy, actions):
                if not np.isfinite(a):
                    self.accounting.mark_degraded()
                    if self._fallback is not None:
                        self.accounting.fallbacks += 1
                        out[rid] = float(self._fallback(state))
                    else:
                        self.accounting.neutral_answers += 1
                        out[rid] = 0.0
                else:
                    out[rid] = float(np.clip(a, -0.999, 0.999))
        if unservable:
            ages = ", ".join(f"{rid} ({age:.4f}s)"
                             for rid, age in unservable)
            raise DeadlineExceededError(
                f"{len(unservable)} request(s) aged past the "
                f"{self.deadline_s}s deadline with no fallback "
                f"configured: {ages}; the other {len(out)} request(s) "
                f"of the window were served (see .served)",
                missed=[rid for rid, _ in unservable], served=out)
        return out

    def serve_trace(self, arrivals: list[tuple[float, int, np.ndarray]],
                    ) -> dict[int, list[float]]:
        """Serve a timeline of (arrival_time, flow_id, state) requests.

        Requests are grouped into consecutive batching windows by arrival
        time.  Returns per-flow action lists, in arrival order.
        """
        out: dict[int, list[float]] = {}
        if not arrivals:
            return out
        arrivals = sorted(arrivals, key=lambda r: r[0])
        window_end = arrivals[0][0] + self.batch_window_s
        for t, fid, state in arrivals:
            if t >= window_end:
                for rid, action in self.flush(now_s=window_end).items():
                    out.setdefault(rid, []).append(action)
                window_end = t + self.batch_window_s
            self.submit(fid, state, arrival_s=t)
        for rid, action in self.flush(now_s=window_end).items():
            out.setdefault(rid, []).append(action)
        return out


class PerFlowServers:
    """One actor instance per flow — the Orca-style baseline.

    Every flow owns a full copy of the network (the memory overhead the
    paper calls resource-inefficient) and every request costs one
    single-row forward pass.
    """

    def __init__(self, policy: PolicyBundle, n_flows: int):
        if n_flows <= 0:
            raise ServiceError("need at least one flow")
        self._actors = [policy.actor.clone() for _ in range(n_flows)]
        self.accounting = ServiceAccounting()

    @classmethod
    def from_default(cls, n_flows: int,
                     scheme: str = "astraea") -> "PerFlowServers":
        """Per-flow servers over the shipped bundle (see
        :func:`default_service_policy`)."""
        return cls(default_service_policy(scheme), n_flows)

    @property
    def n_flows(self) -> int:
        return len(self._actors)

    def serve(self, flow_id: int, state: np.ndarray) -> float:
        if not 0 <= flow_id < len(self._actors):
            raise ServiceError(f"unknown flow {flow_id}")
        state = np.asarray(state, dtype=float)
        if state.ndim != 1 or state.shape[0] != self._actors[flow_id].in_dim:
            self.accounting.rejected += 1
            raise InvalidStateError(
                f"state must be a vector of dim "
                f"{self._actors[flow_id].in_dim}, got shape {state.shape}")
        if not np.isfinite(state).all():
            self.accounting.rejected += 1
            raise InvalidStateError(
                f"state for flow {flow_id} contains non-finite entries")
        self.accounting.requests += 1
        t0 = time.process_time()
        with np.errstate(over="ignore", invalid="ignore"):
            action = self._actors[flow_id].infer(state)[0, 0]
        self.accounting.cpu_time_s += time.process_time() - t0
        self.accounting.forward_passes += 1
        self.accounting.record_batch(1)
        if not np.isfinite(action):
            # Actor overflowed on a finite but extreme state: answer
            # neutrally rather than emitting NaN to the sender — and
            # account for it, exactly as the batched backend does.
            self.accounting.mark_degraded()
            self.accounting.neutral_answers += 1
            return 0.0
        return float(np.clip(action, -0.999, 0.999))

    def serve_trace(self, arrivals: list[tuple[float, int, np.ndarray]],
                    ) -> dict[int, list[float]]:
        """Serve a timeline of requests, one forward pass each."""
        out: dict[int, list[float]] = {}
        for _, fid, state in sorted(arrivals, key=lambda r: r[0]):
            out.setdefault(fid, []).append(self.serve(fid, state))
        return out


def synthetic_request_trace(n_flows: int, duration_s: float,
                            mtp_s: float = 0.020, state_dim: int = 40,
                            seed: int = 0,
                            ) -> list[tuple[float, int, np.ndarray]]:
    """Per-flow MTP-cadenced inference requests with desynchronised phases."""
    if n_flows <= 0 or duration_s <= 0 or mtp_s <= 0:
        raise ServiceError("trace parameters must be positive")
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, mtp_s, size=n_flows)
    arrivals = []
    for fid in range(n_flows):
        t = phases[fid]
        while t < duration_s:
            arrivals.append((float(t), fid,
                             rng.normal(size=state_dim)))
            t += mtp_s
    return arrivals
