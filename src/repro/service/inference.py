"""Astraea inference service (§4) and the scalability study of §5.4.

The paper serves many concurrent senders from one shared inference service
that batches requests over a 5 ms window, versus Orca's architecture of
one inference-server instance per flow.  This module implements both
architectures over the NumPy actor and measures their CPU cost, which is
what Fig. 16 compares:

* :class:`BatchedInferenceService` — a single shared actor; requests that
  arrive within one batching window are served by one batched forward pass.
* :class:`PerFlowServers` — one actor instance per flow, one forward pass
  per request (the resource-inefficient baseline).

Both keep accounting (requests, batches, process-CPU-seconds) so the
benchmark can report overhead as a function of the number of flows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.policy import PolicyBundle
from ..errors import ServiceError


def default_service_policy(scheme: str = "astraea") -> PolicyBundle:
    """The shipped bundle for ``scheme``, as a hard service dependency.

    Controllers can degrade to their analytic fallbacks, but an inference
    *service* exists to execute a trained actor — if the fallback chain
    resolves to nothing usable this raises
    :class:`~repro.errors.ServiceError` with the repair command instead
    of silently serving garbage.
    """
    from ..core.policy import load_default_policy

    bundle = load_default_policy(scheme)
    if bundle is None:
        raise ServiceError(
            f"no usable {scheme} policy bundle for the inference service; "
            f"run 'python -m repro models regenerate' to rebuild the "
            f"shipped artifacts")
    return bundle


@dataclass
class ServiceAccounting:
    """Work counters of an inference backend."""

    requests: int = 0
    forward_passes: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    cpu_time_s: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0


class BatchedInferenceService:
    """Shared-actor service with a fixed batching window.

    ``submit`` enqueues a request stamped with its (simulated) arrival
    time; ``flush`` runs one batched forward per elapsed batching window
    and returns ``{request_id: action}``.  ``serve_trace`` drives a whole
    request timeline through the service, which is what the overhead
    benchmark uses.
    """

    def __init__(self, policy: PolicyBundle, batch_window_s: float = 0.005):
        if batch_window_s <= 0:
            raise ServiceError("batch window must be positive")
        self.policy = policy
        self.batch_window_s = batch_window_s
        self.accounting = ServiceAccounting()
        self._queue: list[tuple[int, np.ndarray]] = []

    @classmethod
    def from_default(cls, scheme: str = "astraea",
                     batch_window_s: float = 0.005,
                     ) -> "BatchedInferenceService":
        """A service over the shipped bundle (see
        :func:`default_service_policy`)."""
        return cls(default_service_policy(scheme),
                   batch_window_s=batch_window_s)

    def submit(self, request_id: int, state: np.ndarray) -> None:
        state = np.asarray(state, dtype=float)
        if state.ndim != 1 or state.shape[0] != self.policy.actor.in_dim:
            raise ServiceError(
                f"state must be a vector of dim {self.policy.actor.in_dim}")
        self._queue.append((request_id, state))
        self.accounting.requests += 1

    def flush(self) -> dict[int, float]:
        """Serve everything queued in the current window with one pass."""
        if not self._queue:
            return {}
        ids = [rid for rid, _ in self._queue]
        states = np.vstack([s for _, s in self._queue])
        self._queue.clear()
        t0 = time.process_time()
        actions = self.policy.actor.forward(states)[:, 0]
        self.accounting.cpu_time_s += time.process_time() - t0
        self.accounting.forward_passes += 1
        self.accounting.batch_sizes.append(len(ids))
        return {rid: float(np.clip(a, -0.999, 0.999))
                for rid, a in zip(ids, actions)}

    def serve_trace(self, arrivals: list[tuple[float, int, np.ndarray]],
                    ) -> dict[int, list[float]]:
        """Serve a timeline of (arrival_time, flow_id, state) requests.

        Requests are grouped into consecutive batching windows by arrival
        time.  Returns per-flow action lists, in arrival order.
        """
        out: dict[int, list[float]] = {}
        if not arrivals:
            return out
        arrivals = sorted(arrivals, key=lambda r: r[0])
        window_end = arrivals[0][0] + self.batch_window_s
        for t, fid, state in arrivals:
            if t >= window_end:
                for rid, action in self.flush().items():
                    out.setdefault(rid, []).append(action)
                window_end = t + self.batch_window_s
            self.submit(fid, state)
        for rid, action in self.flush().items():
            out.setdefault(rid, []).append(action)
        return out


class PerFlowServers:
    """One actor instance per flow — the Orca-style baseline.

    Every flow owns a full copy of the network (the memory overhead the
    paper calls resource-inefficient) and every request costs one
    single-row forward pass.
    """

    def __init__(self, policy: PolicyBundle, n_flows: int):
        if n_flows <= 0:
            raise ServiceError("need at least one flow")
        self._actors = [policy.actor.clone() for _ in range(n_flows)]
        self.accounting = ServiceAccounting()

    @classmethod
    def from_default(cls, n_flows: int,
                     scheme: str = "astraea") -> "PerFlowServers":
        """Per-flow servers over the shipped bundle (see
        :func:`default_service_policy`)."""
        return cls(default_service_policy(scheme), n_flows)

    @property
    def n_flows(self) -> int:
        return len(self._actors)

    def serve(self, flow_id: int, state: np.ndarray) -> float:
        if not 0 <= flow_id < len(self._actors):
            raise ServiceError(f"unknown flow {flow_id}")
        self.accounting.requests += 1
        t0 = time.process_time()
        action = self._actors[flow_id].forward(state[None, :])[0, 0]
        self.accounting.cpu_time_s += time.process_time() - t0
        self.accounting.forward_passes += 1
        self.accounting.batch_sizes.append(1)
        return float(np.clip(action, -0.999, 0.999))

    def serve_trace(self, arrivals: list[tuple[float, int, np.ndarray]],
                    ) -> dict[int, list[float]]:
        """Serve a timeline of requests, one forward pass each."""
        out: dict[int, list[float]] = {}
        for _, fid, state in sorted(arrivals, key=lambda r: r[0]):
            out.setdefault(fid, []).append(self.serve(fid, state))
        return out


def synthetic_request_trace(n_flows: int, duration_s: float,
                            mtp_s: float = 0.020, state_dim: int = 40,
                            seed: int = 0,
                            ) -> list[tuple[float, int, np.ndarray]]:
    """Per-flow MTP-cadenced inference requests with desynchronised phases."""
    if n_flows <= 0 or duration_s <= 0 or mtp_s <= 0:
        raise ServiceError("trace parameters must be positive")
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, mtp_s, size=n_flows)
    arrivals = []
    for fid in range(n_flows):
        t = phases[fid]
        while t < duration_s:
            arrivals.append((float(t), fid,
                             rng.normal(size=state_dim)))
            t += mtp_s
    return arrivals
