"""Asyncio serving daemon around :class:`BatchedInferenceService` (§5.4).

The paper's scalability argument (Fig. 16) is architectural: one shared
inference service batching requests over a ~5 ms window serves thousands
of flows per core, where Orca-style per-flow servers burn a process per
flow.  This module turns the hardened in-process
:class:`~repro.service.inference.BatchedInferenceService` into something
flows can actually connect to:

* **Wire protocol** — length-prefixed JSON over localhost TCP: a 4-byte
  big-endian length, then one UTF-8 JSON object.  Verbs: ``act`` (one
  inference request), ``stats`` (counters + latency quantiles + text
  metrics), ``ping``.  A malformed body is answered with a typed
  ``ProtocolError`` reject and the connection lives on (the length
  prefix keeps the stream in sync); an unparseable length prefix closes
  only that connection.  One bad client never takes the daemon down.
* **Batching** — every ``act`` request lands in the service queue
  stamped with its event-loop arrival time; a flush task serves the
  whole queue once per batching window with a single batched forward
  pass, resolving per-request futures.  Per-request deadlines ride the
  service's existing ``deadline_s`` path.
* **Admission control** — at most ``max_inflight`` requests may be
  queued or awaiting response; beyond that the daemon answers a typed
  ``AdmissionRejectedError`` immediately instead of building an
  unbounded backlog.
* **Graceful drain** — SIGTERM/SIGINT stop the listener, finish serving
  everything already queued, answer it, then exit 0.  No request that
  was accepted is ever dropped by shutdown.
* **Sharding + supervision** — ``serve_main(shards=N)`` fans out N
  daemon processes (spawn context, as in :mod:`repro.parallel`), one
  shard per port; clients route ``flow_id`` to a shard with
  :func:`shard_for_flow`, so one flow's requests always meet the same
  batching queue.  A :class:`ShardSupervisor` restarts any shard that
  dies with capped exponential backoff (``shard_restarts`` in the
  ``stats`` verb counts the respawns) instead of leaving a dead shard
  silently black-holing its flows.

:class:`ServiceClient` is the matching asyncio client: it multiplexes
many flows over a small connection pool per shard (request ids match
responses to callers), which is also how the load benchmark
(:mod:`repro.bench.serve`) drives the daemon.
"""

from __future__ import annotations

import asyncio
import json
import signal
import struct
import sys
import time
from typing import Callable

import numpy as np

from ..errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    InvalidStateError,
    ProtocolError,
    ServiceConnectError,
    ServiceError,
    ServiceTimeoutError,
)
from .inference import BatchedInferenceService
from .metrics import LatencyHistogram, render_metrics

#: Frames above this are a protocol violation (a state vector is ~1 kB).
MAX_FRAME_BYTES = 1 << 20
_HEADER = struct.Struct(">I")

DEFAULT_PORT = 8731

#: Error classes a daemon response may name; the client re-raises them.
_ERROR_TYPES: dict[str, type[ServiceError]] = {
    cls.__name__: cls
    for cls in (ServiceError, InvalidStateError, DeadlineExceededError,
                AdmissionRejectedError, ProtocolError)
}


def shard_for_flow(flow_id: int, n_shards: int) -> int:
    """Deterministic flow-to-shard routing (Knuth multiplicative hash).

    Stable across processes and Python hash randomisation, so every
    client maps a flow to the same shard — a flow's requests must all
    meet one batching queue for its deadline accounting to make sense.
    """
    if n_shards <= 0:
        raise ServiceError(f"need at least one shard, got {n_shards}")
    return (int(flow_id) * 2654435761) % (1 << 32) % n_shards


def encode_frame(obj: dict) -> bytes:
    """Serialise one protocol message: 4-byte length + JSON body."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_body(data: bytes) -> dict:
    """Parse a frame body; raises :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one raw frame body; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for an unusable length prefix — after
    that the stream cannot be re-synchronised and must be closed.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError:
        return None
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} outside (0, {MAX_FRAME_BYTES}]")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        return None


def _error_body(exc: BaseException, request_id=None) -> dict:
    name = type(exc).__name__
    if name not in _ERROR_TYPES:
        name = "ServiceError"
    return {"id": request_id, "ok": False, "error": name,
            "message": str(exc)}


class InferenceDaemon:
    """One shard: an asyncio TCP server multiplexing connections into
    the batching window of a :class:`BatchedInferenceService`."""

    def __init__(self, service: BatchedInferenceService, *,
                 max_inflight: int = 4096, shard_index: int = 0,
                 n_shards: int = 1, shard_restarts: int = 0):
        if max_inflight <= 0:
            raise ServiceError("max_inflight must be positive")
        self.service = service
        self.max_inflight = max_inflight
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.latency = LatencyHistogram()
        #: Daemon-level counters (the service keeps its own accounting).
        #: ``shard_restarts`` is how many times the supervisor respawned
        #: this shard before this incarnation — it survives the crash the
        #: rest of the counters do not.
        self.counters = {
            "connections": 0,
            "frames": 0,
            "protocol_errors": 0,
            "admission_rejected": 0,
            "drain_rejected": 0,
            "shard_restarts": shard_restarts,
        }
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # internal request id -> (future, enqueue time)
        self._pending: dict[int, tuple[asyncio.Future, float]] = {}
        self._next_rid = 0
        self._kick = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._shutdown = asyncio.Event()
        self._flush_task: asyncio.Task | None = None
        self._started_at = time.time()
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle ----------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind, start serving and flushing; returns the bound port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, host, port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._flush_task = asyncio.create_task(self._flush_loop())
        return self.port

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (SIGTERM/SIGINT handler)."""
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def drain(self) -> None:
        """Stop accepting, serve everything already queued, stop flushing.

        Idempotent; after it returns every accepted request has been
        answered and the daemon no longer listens.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None

    # -- batching -----------------------------------------------------

    async def _flush_loop(self) -> None:
        while True:
            await self._kick.wait()
            # Let one whole batching window of requests accumulate.
            await asyncio.sleep(self.service.batch_window_s)
            self._flush_once()
            if not self._pending:
                self._kick.clear()

    def _flush_once(self) -> None:
        if not self._pending:
            return
        now = self._loop.time()
        missed: list[int] = []
        try:
            results = self.service.flush(now_s=now)
        except DeadlineExceededError as exc:
            # The fixed flush semantics: healthy requests were served
            # and ride along on the exception; the overdue ones are
            # answered with the typed error instead of vanishing.
            results = exc.served
            missed = exc.missed
        for rid, action in results.items():
            entry = self._pending.pop(rid, None)
            if entry is None:
                continue
            future, t0 = entry
            self.latency.record(now - t0)
            if not future.done():
                future.set_result({"ok": True, "action": action})
        for rid in missed:
            entry = self._pending.pop(rid, None)
            if entry is None:
                continue
            future, t0 = entry
            self.latency.record(now - t0)
            if not future.done():
                future.set_result(_error_body(DeadlineExceededError(
                    f"request aged past the {self.service.deadline_s}s "
                    f"deadline")))
        if not self._pending:
            self._idle.set()

    # -- connection handling ------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        wlock = asyncio.Lock()
        answer_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    raw = await read_frame(reader)
                except ProtocolError as exc:
                    # Unusable length prefix: reject, then close — the
                    # stream cannot be re-synchronised.
                    self.counters["protocol_errors"] += 1
                    await self._send(writer, wlock, _error_body(exc))
                    break
                if raw is None:
                    break
                self.counters["frames"] += 1
                try:
                    body = decode_body(raw)
                except ProtocolError as exc:
                    # Bad JSON inside a well-framed message: typed
                    # reject, connection stays usable.
                    self.counters["protocol_errors"] += 1
                    await self._send(writer, wlock, _error_body(exc))
                    continue
                await self._dispatch(body, writer, wlock, answer_tasks)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for task in answer_tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, body: dict, writer: asyncio.StreamWriter,
                        wlock: asyncio.Lock,
                        answer_tasks: set[asyncio.Task]) -> None:
        op = body.get("op")
        request_id = body.get("id")
        if op == "act":
            response = self._submit(body)
            if isinstance(response, asyncio.Future):
                task = asyncio.create_task(
                    self._answer(response, writer, wlock, request_id))
                answer_tasks.add(task)
                task.add_done_callback(answer_tasks.discard)
            else:
                await self._send(writer, wlock, response)
        elif op == "stats":
            await self._send(writer, wlock,
                             {"id": request_id, "ok": True,
                              **self.stats()})
        elif op == "ping":
            await self._send(writer, wlock,
                             {"id": request_id, "ok": True, "op": "ping"})
        else:
            self.counters["protocol_errors"] += 1
            await self._send(writer, wlock, _error_body(
                ProtocolError(f"unknown op {op!r}"), request_id))

    def _submit(self, body: dict):
        """Admit one ``act`` request; a Future to await, or a reject."""
        request_id = body.get("id")
        state = body.get("state")
        if not isinstance(state, list):
            self.counters["protocol_errors"] += 1
            return _error_body(ProtocolError(
                "'act' needs a 'state' list"), request_id)
        if self._draining:
            self.counters["drain_rejected"] += 1
            return _error_body(AdmissionRejectedError(
                "daemon is draining"), request_id)
        if len(self._pending) >= self.max_inflight:
            self.counters["admission_rejected"] += 1
            return _error_body(AdmissionRejectedError(
                f"in-flight ceiling of {self.max_inflight} requests "
                f"reached"), request_id)
        rid = self._next_rid
        self._next_rid += 1
        try:
            self.service.submit(rid, np.asarray(state, dtype=float),
                                arrival_s=self._loop.time())
        except (ServiceError, ValueError, TypeError) as exc:
            return _error_body(exc, request_id)
        future: asyncio.Future = self._loop.create_future()
        self._pending[rid] = (future, self._loop.time())
        self._idle.clear()
        self._kick.set()
        return future

    async def _answer(self, future: asyncio.Future,
                      writer: asyncio.StreamWriter, wlock: asyncio.Lock,
                      request_id) -> None:
        body = dict(await future)
        body["id"] = request_id
        await self._send(writer, wlock, body)

    async def _send(self, writer: asyncio.StreamWriter,
                    wlock: asyncio.Lock, body: dict) -> None:
        try:
            async with wlock:
                writer.write(encode_frame(body))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; its request was still accounted

    # -- observability ------------------------------------------------

    def stats(self) -> dict:
        """The STATS verb payload: counters, quantiles, text metrics."""
        extra = {f"daemon_{k}": v for k, v in self.counters.items()}
        extra["daemon_inflight"] = len(self._pending)
        extra["daemon_uptime_s"] = time.time() - self._started_at
        return {
            "op": "stats",
            "in_dim": self.service.policy.actor.in_dim,
            "window_s": self.service.batch_window_s,
            "deadline_s": self.service.deadline_s,
            "shard": self.shard_index,
            "shards": self.n_shards,
            "counters": {**self.service.accounting.counters(), **extra},
            "latency": self.latency.summary(),
            "metrics": render_metrics(self.service.accounting,
                                      self.latency, extra=extra),
        }


class ServiceClient:
    """Asyncio client multiplexing many flows over pooled connections.

    ``addrs`` lists one ``(host, port)`` per shard; a flow's requests
    are routed with :func:`shard_for_flow` and spread round-robin over
    ``conns_per_shard`` connections, so thousands of simulated flows
    need only a handful of sockets (this is also what keeps the load
    generator under the file-descriptor ceiling).

    Resilience: connects retry with jittered exponential backoff (a
    daemon that is still binding — or a shard mid-restart — is retried
    ``connect_attempts`` times before :class:`ServiceConnectError`), and
    every request carries a timeout (``request_timeout_s`` unless the
    call passes its own) that raises :class:`ServiceTimeoutError`
    instead of hanging the caller on a stalled connection.  Pass
    ``request_timeout_s=None`` to wait indefinitely.
    """

    def __init__(self, addrs: list[tuple[str, int]],
                 conns_per_shard: int = 4, *,
                 request_timeout_s: float | None = 30.0,
                 connect_attempts: int = 5,
                 connect_backoff_s: float = 0.2,
                 connect_backoff_cap_s: float = 2.0):
        if not addrs:
            raise ServiceError("need at least one daemon address")
        if conns_per_shard <= 0:
            raise ServiceError("conns_per_shard must be positive")
        if connect_attempts <= 0:
            raise ServiceError("connect_attempts must be positive")
        self._addrs = list(addrs)
        self._conns_per_shard = conns_per_shard
        self._request_timeout_s = request_timeout_s
        self._connect_attempts = connect_attempts
        self._connect_backoff_s = connect_backoff_s
        self._connect_backoff_cap_s = connect_backoff_cap_s
        # shard -> list of connection records
        self._conns: dict[int, list[_Connection]] = {}
        self._rr: dict[int, int] = {}

    @property
    def n_shards(self) -> int:
        return len(self._addrs)

    async def _open(self, host: str, port: int) -> "_Connection":
        """Connect with jittered backoff; typed error on exhaustion."""
        import random

        last: Exception | None = None
        for attempt in range(self._connect_attempts):
            try:
                return await _Connection.open(host, port)
            except (ConnectionError, OSError) as exc:
                last = exc
                if attempt + 1 >= self._connect_attempts:
                    break
                delay = backoff_delay_s(attempt + 1,
                                        base_s=self._connect_backoff_s,
                                        cap_s=self._connect_backoff_cap_s)
                # Jitter desynchronises a fleet of clients hammering a
                # daemon that just came (back) up.
                await asyncio.sleep(delay * random.uniform(0.5, 1.5))
        raise ServiceConnectError(
            f"could not connect to daemon at {host}:{port} after "
            f"{self._connect_attempts} attempt(s): {last}",
            attempts=self._connect_attempts) from last

    async def _conn_for(self, shard: int) -> "_Connection":
        pool = self._conns.setdefault(shard, [])
        index = self._rr.get(shard, 0)
        self._rr[shard] = index + 1
        slot = index % self._conns_per_shard
        while len(pool) <= slot:
            host, port = self._addrs[shard]
            pool.append(await self._open(host, port))
        conn = pool[slot]
        if conn.closed:
            host, port = self._addrs[shard]
            conn = await self._open(host, port)
            pool[slot] = conn
        return conn

    def _timeout(self, timeout: float | None) -> float | None:
        return self._request_timeout_s if timeout is None else timeout

    async def act(self, flow_id: int, state, timeout: float | None = None,
                  ) -> float:
        """One inference round trip; raises the daemon's typed error."""
        shard = shard_for_flow(flow_id, self.n_shards)
        conn = await self._conn_for(shard)
        if not isinstance(state, list):
            # Arrays are serialised once here; the load generator passes
            # pre-built float lists to stay off this path per request.
            state = [float(v) for v in
                     np.asarray(state, dtype=float).ravel()]
        body = await conn.request({"op": "act", "flow": int(flow_id),
                                   "state": state},
                                  timeout=self._timeout(timeout))
        return float(body["action"])

    async def stats(self, shard: int = 0, timeout: float | None = None,
                    ) -> dict:
        conn = await self._conn_for(shard)
        return await conn.request({"op": "stats"},
                                  timeout=self._timeout(timeout))

    async def ping(self, shard: int = 0, timeout: float | None = None,
                   ) -> dict:
        conn = await self._conn_for(shard)
        return await conn.request({"op": "ping"},
                                  timeout=self._timeout(timeout))

    async def aclose(self) -> None:
        for pool in self._conns.values():
            for conn in pool:
                await conn.aclose()
        self._conns.clear()


class _Connection:
    """One socket: pipelined requests matched to responses by id."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._wlock = asyncio.Lock()
        self.closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def open(cls, host: str, port: int) -> "_Connection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        error: Exception = ServiceError("connection closed by daemon")
        try:
            while True:
                raw = await read_frame(self._reader)
                if raw is None:
                    break
                body = decode_body(raw)
                future = self._pending.pop(body.get("id"), None)
                if future is None or future.done():
                    continue
                if body.get("ok"):
                    future.set_result(body)
                else:
                    cls = _ERROR_TYPES.get(body.get("error", ""),
                                           ServiceError)
                    future.set_exception(cls(body.get("message", "")))
        except (ConnectionError, ProtocolError, asyncio.CancelledError) \
                as exc:
            if isinstance(exc, Exception):
                error = exc
        finally:
            self.closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, body: dict, timeout: float | None = None,
                      ) -> dict:
        if self.closed:
            raise ServiceError("connection is closed")
        rid = self._next_id
        self._next_id += 1
        body = dict(body, id=rid)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        async with self._wlock:
            self._writer.write(encode_frame(body))
            await self._writer.drain()
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            # Stop tracking the request: a late response must not land
            # in a future nobody awaits.
            self._pending.pop(rid, None)
            raise ServiceTimeoutError(
                f"request {rid} got no response within {timeout:.3g}s"
            ) from None

    async def aclose(self) -> None:
        self.closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- shard supervision ------------------------------------------------


def backoff_delay_s(restarts: int, *, base_s: float = 0.5,
                    cap_s: float = 30.0) -> float:
    """Delay before the ``restarts``-th consecutive restart attempt.

    Capped exponential: ``base * 2**(restarts-1)``, clamped to ``cap``
    (the exponent itself is bounded so huge counts cannot overflow).
    ``restarts <= 0`` means "never failed" and costs no delay.
    """
    if restarts <= 0:
        return 0.0
    exponent = min(restarts - 1, 16)
    return min(base_s * (2.0 ** exponent), cap_s)


class ShardSupervisor:
    """Parent-side babysitter for ``--shards N`` worker processes.

    ``spawn(index, restarts)`` must return a *started*
    :class:`multiprocessing.Process` for shard ``index``; ``restarts``
    is the shard's lifetime respawn count, which the daemon surfaces as
    the ``shard_restarts`` counter of its ``stats`` verb.

    Policy: a shard that exits while the supervisor is not shutting
    down is restarted after :func:`backoff_delay_s` of its *consecutive*
    failure streak; a shard that stayed up at least ``healthy_after_s``
    resets its streak (a crash loop backs off, a one-off crash does
    not penalise next week's).  After ``max_restarts`` consecutive
    failures the shard is abandoned with its last exit code — the
    supervisor keeps serving the surviving shards rather than tearing
    the fleet down.  :meth:`request_shutdown` (signal-handler safe)
    terminates every live child and stops all restarting.

    :meth:`run` blocks until every shard has terminally exited and
    returns one exit code per shard (``0`` for clean/SIGTERM exits).
    """

    #: Upper bound on one poll interval: keeps the loop responsive to
    #: ``request_shutdown`` even when nothing is due.
    _POLL_S = 0.5

    def __init__(self, n_shards: int, spawn, *, max_restarts: int = 5,
                 backoff_base_s: float = 0.5, backoff_cap_s: float = 30.0,
                 healthy_after_s: float = 30.0,
                 announce: Callable[[str], None] | None = None):
        if n_shards <= 0:
            raise ServiceError(f"need at least one shard, got {n_shards}")
        if max_restarts < 0:
            raise ServiceError("max_restarts must be >= 0")
        self._spawn = spawn
        self.n_shards = n_shards
        self.max_restarts = max_restarts
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._healthy_after_s = healthy_after_s
        self._announce = announce
        #: Lifetime respawns per shard (what ``stats`` reports).
        self.restarts = [0] * n_shards
        self._streak = [0] * n_shards
        self._children: list = [None] * n_shards
        self._started_at = [0.0] * n_shards
        self._last_code = [0] * n_shards
        self._final: list[int | None] = [None] * n_shards
        self._restart_due: dict[int, float] = {}
        self._shutdown = False

    def request_shutdown(self) -> None:
        """Stop restarting and SIGTERM every live child (signal-safe)."""
        self._shutdown = True
        for child in self._children:
            if child is not None and child.is_alive():
                child.terminate()  # SIGTERM -> graceful shard drain

    def _start(self, index: int) -> None:
        self._children[index] = self._spawn(index, self.restarts[index])
        self._started_at[index] = time.monotonic()

    def _say(self, line: str) -> None:
        if self._announce is not None:
            self._announce(line)

    def _on_exit(self, index: int, code: int) -> None:
        self._children[index] = None
        self._last_code[index] = code
        if self._shutdown:
            self._final[index] = code
            return
        uptime = time.monotonic() - self._started_at[index]
        if uptime >= self._healthy_after_s:
            self._streak[index] = 0
        if self._streak[index] >= self.max_restarts:
            self._final[index] = code if code != 0 else 1
            self._say(f"SHARD-ABANDONED shard={index} exitcode={code} "
                      f"restarts={self.restarts[index]}")
            return
        self._streak[index] += 1
        self.restarts[index] += 1
        delay = backoff_delay_s(self._streak[index],
                                base_s=self._backoff_base_s,
                                cap_s=self._backoff_cap_s)
        self._restart_due[index] = time.monotonic() + delay
        self._say(f"SHARD-RESTART shard={index} exitcode={code} "
                  f"restart={self.restarts[index]} delay={delay:.2f}s")

    def _reap(self) -> None:
        for index, child in enumerate(self._children):
            if child is not None and not child.is_alive():
                child.join()
                self._on_exit(index, child.exitcode or 0)

    def run(self) -> list[int]:
        from multiprocessing.connection import wait as mp_wait

        for index in range(self.n_shards):
            self._start(index)
        while True:
            self._reap()
            if self._shutdown:
                break
            now = time.monotonic()
            for index in [i for i, due in self._restart_due.items()
                          if due <= now]:
                del self._restart_due[index]
                self._start(index)
            if (all(c is None for c in self._children)
                    and not self._restart_due):
                break
            timeout = self._POLL_S
            if self._restart_due:
                timeout = min(timeout,
                              max(0.0, min(self._restart_due.values())
                                  - now))
            sentinels = [c.sentinel for c in self._children
                         if c is not None]
            if sentinels:
                mp_wait(sentinels, timeout=timeout)
            else:
                time.sleep(timeout)
        # Shutdown path: kill anything still up, settle every shard.
        self._restart_due.clear()
        for child in self._children:
            if child is not None and child.is_alive():
                child.terminate()
        for index, child in enumerate(self._children):
            if child is not None:
                child.join()
                self._on_exit(index, child.exitcode or 0)
        return [0 if code is None else code for code in self._final]


# -- process entry points ---------------------------------------------


def build_service(scheme: str = "astraea", batch_window_s: float = 0.005,
                  deadline_s: float | None = 0.050,
                  fallback: str | None = "analytic",
                  ) -> BatchedInferenceService:
    """The daemon's default backend: shipped bundle, analytic fallback."""
    return BatchedInferenceService.from_default(
        scheme, batch_window_s=batch_window_s, deadline_s=deadline_s,
        fallback=fallback)


async def _serve_async(daemon: InferenceDaemon, host: str, port: int,
                       announce: Callable[[str], None] | None = None,
                       ) -> int:
    loop = asyncio.get_running_loop()
    bound = await daemon.start(host, port)
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, daemon.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
    if announce is not None:
        announce(f"LISTENING {daemon.host} {bound} "
                 f"shard={daemon.shard_index}/{daemon.n_shards}")
    await daemon.wait_shutdown()
    if announce is not None:
        announce(f"DRAINING shard={daemon.shard_index} "
                 f"inflight={len(daemon._pending)}")
    await daemon.drain()
    if announce is not None:
        s = daemon.service.accounting
        announce(f"STOPPED shard={daemon.shard_index} "
                 f"requests={s.requests} forward_passes={s.forward_passes}")
    return 0


def _announce(line: str) -> None:
    # One write() per line: shard children share the parent's stdout
    # pipe, and print() emits the text and the newline as separate
    # writes under unbuffered stdio, which lets two shards interleave
    # mid-line and corrupt the LISTENING protocol a parser relies on.
    sys.stdout.write(line + "\n")
    sys.stdout.flush()


def _shard_main(cfg: dict) -> None:
    """Module-level child entry (spawn context needs it picklable)."""
    service = build_service(cfg["scheme"], cfg["batch_window_s"],
                            cfg["deadline_s"], cfg["fallback"])
    daemon = InferenceDaemon(service, max_inflight=cfg["max_inflight"],
                             shard_index=cfg["shard_index"],
                             n_shards=cfg["n_shards"],
                             shard_restarts=cfg.get("shard_restarts", 0))
    raise SystemExit(asyncio.run(
        _serve_async(daemon, cfg["host"], cfg["port"], _announce)))


def serve_main(*, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
               scheme: str = "astraea", batch_window_s: float = 0.005,
               deadline_s: float | None = 0.050,
               fallback: str | None = "analytic",
               max_inflight: int = 4096, shards: int = 1,
               max_restarts: int = 5) -> int:
    """Run the daemon (blocking), sharded when ``shards > 1``.

    Each shard is its own spawn-context process listening on
    ``port + shard_index`` (each picks an ephemeral port when ``port``
    is 0) and announcing ``LISTENING <host> <port> shard=i/n`` on
    stdout.  A shard that dies is respawned (same port) with capped
    exponential backoff, up to ``max_restarts`` consecutive failures.
    SIGTERM/SIGINT drain every shard gracefully.
    """
    if shards <= 0:
        raise ServiceError(f"need at least one shard, got {shards}")
    if shards == 1:
        service = build_service(scheme, batch_window_s, deadline_s,
                                fallback)
        daemon = InferenceDaemon(service, max_inflight=max_inflight)
        return asyncio.run(_serve_async(daemon, host, port, _announce))

    import multiprocessing

    context = multiprocessing.get_context("spawn")

    def spawn_shard(index: int, restarts: int):
        cfg = {"host": host, "port": port + index if port else 0,
               "scheme": scheme, "batch_window_s": batch_window_s,
               "deadline_s": deadline_s, "fallback": fallback,
               "max_inflight": max_inflight, "shard_index": index,
               "n_shards": shards, "shard_restarts": restarts}
        child = context.Process(target=_shard_main, args=(cfg,),
                                daemon=False)
        child.start()
        return child

    supervisor = ShardSupervisor(shards, spawn_shard,
                                 max_restarts=max_restarts,
                                 announce=_announce)

    def forward(signum, frame):
        supervisor.request_shutdown()

    previous = {sig: signal.signal(sig, forward)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    try:
        codes = supervisor.run()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        supervisor.request_shutdown()
    bad = [c for c in codes if c not in (0, -signal.SIGTERM)]
    if bad:
        print(f"shard exit codes: {codes}", file=sys.stderr)
    return max(bad, default=0)
