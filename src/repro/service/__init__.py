"""Inference serving: batched shared service vs per-flow servers (§5.4)."""

from .inference import (
    BatchedInferenceService,
    PerFlowServers,
    ServiceAccounting,
    synthetic_request_trace,
)

__all__ = [
    "BatchedInferenceService",
    "PerFlowServers",
    "ServiceAccounting",
    "synthetic_request_trace",
]
