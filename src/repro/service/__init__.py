"""Inference serving: batched shared service vs per-flow servers (§5.4),
plus the asyncio serving daemon, client, and metrics surface."""

from .daemon import (
    InferenceDaemon,
    ServiceClient,
    ShardSupervisor,
    backoff_delay_s,
    build_service,
    decode_body,
    encode_frame,
    read_frame,
    serve_main,
    shard_for_flow,
)
from .inference import (
    BatchedInferenceService,
    PerFlowServers,
    ServiceAccounting,
    analytic_fallback_action,
    default_service_policy,
    synthetic_request_trace,
)
from .metrics import LatencyHistogram, render_metrics

__all__ = [
    "BatchedInferenceService",
    "InferenceDaemon",
    "LatencyHistogram",
    "PerFlowServers",
    "ServiceAccounting",
    "ServiceClient",
    "ShardSupervisor",
    "analytic_fallback_action",
    "backoff_delay_s",
    "build_service",
    "decode_body",
    "default_service_policy",
    "encode_frame",
    "read_frame",
    "render_metrics",
    "serve_main",
    "shard_for_flow",
    "synthetic_request_trace",
]
