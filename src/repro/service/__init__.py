"""Inference serving: batched shared service vs per-flow servers (§5.4)."""

from .inference import (
    BatchedInferenceService,
    PerFlowServers,
    ServiceAccounting,
    analytic_fallback_action,
    default_service_policy,
    synthetic_request_trace,
)

__all__ = [
    "BatchedInferenceService",
    "PerFlowServers",
    "ServiceAccounting",
    "analytic_fallback_action",
    "default_service_policy",
    "synthetic_request_trace",
]
