"""Scenario registry: introspection, typed errors, and the builder
contract (determinism under a fixed seed, valid configs) as hypothesis
properties over every registered family."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ScenarioConfig
from repro.errors import ConfigError
from repro.scenarios import (
    available_families,
    build_scenario,
    describe_families,
    describe_family,
    get_family,
    register_family,
)
from repro.scenarios.registry import ScenarioFamily

#: Families whose default parameters every property below must hold for.
FAMILIES = available_families()

#: Schemes cheap to name in configs (builders never instantiate them).
SCHEMES = ("cubic", "bbr", "astraea", "vegas")

family_names = st.sampled_from(FAMILIES)
schemes = st.sampled_from(SCHEMES)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestIntrospection:
    def test_catalog_contains_all_expected_families(self):
        expected = {"fig6", "fig8", "fig9", "fig10", "fig13", "fig14",
                    "fig15", "fig19", "fig20", "fig22", "fig1a", "fig1b",
                    "robustness", "incast", "asymmetric-rtt",
                    "background-udp"}
        assert expected <= set(FAMILIES)

    def test_available_families_is_sorted(self):
        assert list(FAMILIES) == sorted(FAMILIES)

    def test_describe_family_renders_a_card(self):
        card = describe_family("incast")
        assert card.startswith("incast:")
        assert "n_senders" in card and "tags" in card and "engines" in card

    def test_describe_families_covers_every_name(self):
        text = describe_families()
        for name in FAMILIES:
            assert f"{name}:" in text

    def test_traced_families_are_marked_fluid_only(self):
        for name in ("fig13", "fig15"):
            family = get_family(name)
            assert not family.packet_ok
            assert "packet" not in family.describe().splitlines()[-1]
        assert get_family("incast").packet_ok


class TestTypedErrors:
    def test_unknown_family_raises_config_error_listing_known(self):
        with pytest.raises(ConfigError) as exc:
            build_scenario("no-such-family")
        message = str(exc.value)
        assert "no-such-family" in message
        for name in FAMILIES:
            assert name in message

    def test_get_family_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown scenario family"):
            get_family("incats")

    def test_unknown_parameter_raises_config_error_listing_known(self):
        with pytest.raises(ConfigError) as exc:
            build_scenario("incast", n_sneders=4)
        message = str(exc.value)
        assert "n_sneders" in message and "n_senders" in message

    def test_parameterless_family_rejects_any_parameter(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            build_scenario("fig6", n_flows=5)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_family(
                "incast", lambda cc, quick, seed: None)

    def test_seed_discipline_enforced_post_build(self):
        broken = ScenarioFamily(
            name="broken",
            builder=lambda cc, quick, seed: build_scenario(
                "fig6", cc=cc, quick=quick, seed=seed + 1))
        with pytest.raises(ConfigError, match="seed discipline"):
            broken.build(seed=3)

    def test_non_scenario_result_rejected(self):
        bad = ScenarioFamily(name="bad",
                             builder=lambda cc, quick, seed: {"not": "one"})
        with pytest.raises(ConfigError, match="not a ScenarioConfig"):
            bad.build()


class TestBuilderContract:
    @settings(max_examples=40, deadline=None)
    @given(name=family_names, cc=schemes, seed=seeds,
           quick=st.booleans())
    def test_deterministic_under_fixed_seed(self, name, cc, seed, quick):
        # ScenarioConfig and everything it nests are frozen dataclasses,
        # so equality is deep structural equality.
        a = build_scenario(name, cc=cc, quick=quick, seed=seed)
        b = build_scenario(name, cc=cc, quick=quick, seed=seed)
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(name=family_names, cc=schemes, seed=seeds,
           quick=st.booleans())
    def test_builds_valid_scenario(self, name, cc, seed, quick):
        config = build_scenario(name, cc=cc, quick=quick, seed=seed)
        assert isinstance(config, ScenarioConfig)
        assert config.seed == seed
        assert math.isfinite(config.duration_s) and config.duration_s > 0
        assert config.tick_s <= config.mtp_s
        assert len(config.flows) >= 1
        for flow in config.flows:
            assert 0.0 <= flow.start_s < config.duration_s
            assert flow.end_s() > flow.start_s

    @settings(max_examples=20, deadline=None)
    @given(name=family_names, seed=seeds)
    def test_quick_shrinks_time_axis_only(self, name, seed):
        quick = build_scenario(name, quick=True, seed=seed)
        full = build_scenario(name, quick=False, seed=seed)
        assert quick.duration_s <= full.duration_s
        assert quick.link == full.link

    def test_cc_reaches_the_flows(self):
        for name in ("incast", "asymmetric-rtt", "background-udp",
                     "fig6", "robustness"):
            config = build_scenario(name, cc="vegas", quick=True)
            assert any(f.cc == "vegas" for f in config.flows), name

    def test_param_overrides_reach_the_builder(self):
        base = build_scenario("incast", quick=True)
        more = build_scenario("incast", quick=True, n_senders=12)
        assert len(more.flows) > len(base.flows)
        spread = build_scenario("asymmetric-rtt", quick=True, spread=8.0)
        assert max(f.extra_rtt_ms for f in spread.flows) == \
            pytest.approx(20.0 * 7.0)
        udp = build_scenario("background-udp", quick=True, udp_fraction=0.5)
        assert udp.flows[-1].cc_kwargs["rate_mbps"] == pytest.approx(50.0)

    def test_invalid_family_params_raise_config_error(self):
        with pytest.raises(ConfigError):
            build_scenario("incast", n_senders=1)
        with pytest.raises(ConfigError):
            build_scenario("incast", period_s=2.0, burst_s=3.0)
        with pytest.raises(ConfigError):
            build_scenario("asymmetric-rtt", spread=99.0)
        with pytest.raises(ConfigError):
            build_scenario("background-udp", udp_fraction=1.5)
        with pytest.raises(ConfigError):
            build_scenario("robustness", kind="earthquake")
