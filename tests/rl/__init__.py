"""Test package."""
