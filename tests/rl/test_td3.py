"""TD3 learner: learning behaviour and the TD3-specific mechanisms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, replace
from repro.errors import ModelError
from repro.rl import ReplayBuffer, TD3Learner

SMALL = replace(TrainingConfig(), hidden_layers=(32, 32), batch_size=64)


def bandit_buffer(optimum: float, n: int = 2000, seed: int = 0):
    """State-independent bandit: r = -(a - optimum)^2."""
    rng = np.random.default_rng(seed)
    buf = ReplayBuffer(n, 3, 2, 1, seed=seed)
    for _ in range(n):
        s, g = rng.normal(size=3), rng.normal(size=2)
        a = rng.uniform(-1, 1, size=1)
        buf.add(s, g, a, -(a[0] - optimum) ** 2, s, g, True)
    return buf


class TestLearning:
    def test_learns_bandit_optimum(self):
        learner = TD3Learner(3, 2, cfg=SMALL, seed=0)
        buf = bandit_buffer(0.5)
        for _ in range(1500):
            learner.update(buf.sample(64))
        actions = learner.act(np.random.default_rng(3).normal(size=(20, 3)))
        assert np.mean(actions) == pytest.approx(0.5, abs=0.25)

    def test_critic_loss_decreases(self):
        learner = TD3Learner(3, 2, cfg=SMALL, seed=0)
        buf = bandit_buffer(0.0)
        first = learner.update(buf.sample(64))["critic_loss"]
        for _ in range(300):
            last = learner.update(buf.sample(64))["critic_loss"]
        assert last < first

    def test_local_only_critic_ablation(self):
        learner = TD3Learner(3, 2, cfg=SMALL, use_global=False, seed=0)
        buf = bandit_buffer(-0.3)
        for _ in range(600):
            learner.update(buf.sample(64))
        actions = learner.act(np.random.default_rng(3).normal(size=(20, 3)))
        assert np.mean(actions) == pytest.approx(-0.3, abs=0.2)


class TestMechanisms:
    def test_actions_clipped(self):
        learner = TD3Learner(3, 2, cfg=SMALL, seed=0)
        acts = learner.act(np.random.default_rng(0).normal(size=(50, 3)),
                           noise_std=5.0)
        assert np.all(np.abs(acts) <= 0.999)

    def test_policy_delay(self):
        cfg = replace(SMALL, policy_delay=2)
        learner = TD3Learner(3, 2, cfg=cfg, seed=0)
        buf = bandit_buffer(0.0, n=200)
        l1 = learner.update(buf.sample(32))
        l2 = learner.update(buf.sample(32))
        assert np.isnan(l1["actor_loss"])       # delayed
        assert not np.isnan(l2["actor_loss"])   # fires every 2nd step

    def test_targets_move_slowly(self):
        learner = TD3Learner(3, 2, cfg=SMALL, seed=0)
        buf = bandit_buffer(0.9, n=500)
        before = learner.actor_target.get_state()
        for _ in range(10):
            learner.update(buf.sample(64))
        after = learner.actor_target.get_state()
        online = learner.actor.get_state()
        drift_target = sum(np.abs(a - b).sum() for a, b in zip(after, before))
        drift_online = sum(np.abs(a - b).sum()
                           for a, b in zip(online, before))
        assert drift_target < drift_online

    def test_q_values_shape(self):
        learner = TD3Learner(3, 2, cfg=SMALL, seed=0)
        q = learner.q_values(np.zeros((4, 2)), np.zeros((4, 3)),
                             np.zeros((4, 1)))
        assert q.shape == (4, 1)

    def test_rejects_bad_dims(self):
        with pytest.raises(ModelError):
            TD3Learner(0, 2)


class TestActorWarmup:
    def test_actor_frozen_during_warmup(self):
        cfg = replace(SMALL, actor_warmup_updates=10, policy_delay=1)
        learner = TD3Learner(3, 2, cfg=cfg, seed=0)
        buf = bandit_buffer(0.5, n=300)
        before = learner.actor.get_state()
        for _ in range(10):
            out = learner.update(buf.sample(32))
            assert np.isnan(out["actor_loss"])
        after = learner.actor.get_state()
        assert all(np.allclose(a, b) for a, b in zip(before, after))
        # Past the warmup the actor starts moving.
        out = learner.update(buf.sample(32))
        assert not np.isnan(out["actor_loss"])
