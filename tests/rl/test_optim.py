"""Optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rl.optim import SGD, Adam


class TestAdam:
    def test_minimises_quadratic(self):
        x = np.array([5.0, -3.0])
        g = np.zeros(2)
        opt = Adam([x], [g], lr=0.1)
        for _ in range(500):
            g[:] = 2 * x  # d/dx of x^2
            opt.step()
        assert np.allclose(x, 0.0, atol=1e-2)

    def test_clip_norm_bounds_step(self):
        x = np.array([0.0])
        g = np.array([1e9])
        opt = Adam([x], [g], lr=0.1, clip_norm=1.0)
        opt.step()
        # First Adam step magnitude is bounded near lr regardless of clip,
        # but the internal moments must not explode.
        assert np.isfinite(x).all()
        assert abs(x[0]) <= 0.2

    def test_rejects_bad_lr(self):
        with pytest.raises(ModelError):
            Adam([np.zeros(1)], [np.zeros(1)], lr=0.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ModelError):
            Adam([np.zeros(2)], [np.zeros(3)])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ModelError):
            Adam([np.zeros(2)], [])


class TestSGD:
    def test_minimises_quadratic(self):
        x = np.array([5.0])
        g = np.zeros(1)
        opt = SGD([x], [g], lr=0.1)
        for _ in range(200):
            g[:] = 2 * x
            opt.step()
        assert abs(x[0]) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            x = np.array([5.0])
            g = np.zeros(1)
            opt = SGD([x], [g], lr=0.01, momentum=momentum)
            for _ in range(50):
                g[:] = 2 * x
                opt.step()
            return abs(x[0])

        assert run(0.9) < run(0.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ModelError):
            SGD([np.zeros(1)], [np.zeros(1)], lr=-1.0)
