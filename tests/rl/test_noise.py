"""Exploration noise processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeck


class TestGaussian:
    def test_scale_matches_std(self):
        noise = GaussianNoise(std=0.5, seed=0)
        samples = np.array([noise.sample()[0] for _ in range(5000)])
        assert np.std(samples) == pytest.approx(0.5, rel=0.1)

    def test_decay_floors_at_min(self):
        noise = GaussianNoise(std=0.5, decay=0.1, min_std=0.05)
        for _ in range(10):
            noise.step()
        assert noise.std == pytest.approx(0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            GaussianNoise(std=-1.0)
        with pytest.raises(ModelError):
            GaussianNoise(std=0.1, decay=0.0)


class TestOU:
    def test_temporal_correlation(self):
        ou = OrnsteinUhlenbeck(dim=1, theta=0.1, sigma=0.2, seed=0)
        xs = np.array([ou.sample()[0] for _ in range(2000)])
        lag1 = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert lag1 > 0.5  # strongly autocorrelated, unlike white noise

    def test_reset_zeroes_state(self):
        ou = OrnsteinUhlenbeck(dim=3, seed=0)
        ou.sample()
        ou.reset()
        assert np.all(ou._state == 0.0)

    def test_rejects_bad_dim(self):
        with pytest.raises(ModelError):
            OrnsteinUhlenbeck(dim=0)
