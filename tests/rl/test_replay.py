"""Replay buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rl.replay import ReplayBuffer


def make(capacity=10, local=3, glob=2):
    return ReplayBuffer(capacity, local, glob, action_dim=1, seed=0)


def add_n(buf, n, value=0.0):
    for i in range(n):
        buf.add(np.full(3, i + value), np.full(2, i), np.array([0.5]),
                float(i), np.zeros(3), np.zeros(2), False)


class TestReplayBuffer:
    def test_len_grows_then_saturates(self):
        buf = make(capacity=5)
        add_n(buf, 3)
        assert len(buf) == 3
        add_n(buf, 10)
        assert len(buf) == 5

    def test_circular_overwrite(self):
        buf = make(capacity=3)
        add_n(buf, 5)   # rewards 0..4; slots hold 3, 4, 2
        batch = buf.sample(100)
        assert set(np.unique(batch["reward"])) <= {2.0, 3.0, 4.0}

    def test_sample_shapes(self):
        buf = make()
        add_n(buf, 6)
        batch = buf.sample(4)
        assert batch["local"].shape == (4, 3)
        assert batch["global"].shape == (4, 2)
        assert batch["action"].shape == (4, 1)
        assert batch["reward"].shape == (4,)
        assert batch["done"].shape == (4,)

    def test_sample_empty_raises(self):
        with pytest.raises(ModelError):
            make().sample(1)

    def test_done_flag_stored(self):
        buf = make()
        buf.add(np.zeros(3), np.zeros(2), np.array([0.0]), 1.0,
                np.zeros(3), np.zeros(2), True)
        assert buf.sample(1)["done"][0] == 1.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ModelError):
            ReplayBuffer(0, 3, 2)

    def test_rejects_bad_dims(self):
        with pytest.raises(ModelError):
            ReplayBuffer(5, 0, 2)

    def test_sampling_deterministic_per_seed(self):
        a, b = make(), make()
        add_n(a, 8)
        add_n(b, 8)
        sa, sb = a.sample(4), b.sample(4)
        assert np.allclose(sa["reward"], sb["reward"])

    def test_sample_rejects_nonpositive_batch(self):
        buf = make()
        add_n(buf, 4)
        with pytest.raises(ModelError, match="batch size"):
            buf.sample(0)
        with pytest.raises(ModelError, match="batch size"):
            buf.sample(-3)

    def test_add_rejects_wrong_width_naming_field(self):
        buf = make()
        with pytest.raises(ModelError, match="'local'"):
            buf.add(np.zeros(4), np.zeros(2), np.array([0.0]), 0.0,
                    np.zeros(3), np.zeros(2), False)
        with pytest.raises(ModelError, match="'next_global'"):
            buf.add(np.zeros(3), np.zeros(2), np.array([0.0]), 0.0,
                    np.zeros(3), np.zeros(5), False)
        assert len(buf) == 0  # rejected rows never land


ARRAYS = ("_local", "_global", "_action", "_reward",
          "_next_local", "_next_global", "_done")


def batch_of(n, rng):
    return (rng.normal(size=(n, 3)), rng.normal(size=(n, 2)),
            rng.normal(size=(n, 1)), rng.normal(size=n),
            rng.normal(size=(n, 3)), rng.normal(size=(n, 2)),
            (rng.random(n) < 0.2).astype(float))


class TestAddBatch:
    """add_batch == N sequential adds, through every wraparound regime."""

    # capacity 7, cursor offset 4: n spans no-wrap (1, 3), exact fit,
    # wraparound (5, 7) and the n >= capacity overwrite path (9, 20).
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 9, 20])
    def test_matches_sequential_adds(self, n):
        rng = np.random.default_rng(n)
        rows = batch_of(n, rng)
        serial, batched = make(capacity=7), make(capacity=7)
        add_n(serial, 4, value=100.0)   # offset the cursor first
        add_n(batched, 4, value=100.0)
        for i in range(n):
            serial.add(rows[0][i], rows[1][i], rows[2][i], rows[3][i],
                       rows[4][i], rows[5][i], bool(rows[6][i]))
        batched.add_batch(*rows)
        assert len(serial) == len(batched)
        assert serial._cursor == batched._cursor
        for name in ARRAYS:
            np.testing.assert_array_equal(getattr(serial, name),
                                          getattr(batched, name))

    def test_empty_batch_is_noop(self):
        buf = make()
        add_n(buf, 2)
        cursor = buf._cursor
        buf.add_batch(np.zeros((0, 3)), np.zeros((0, 2)), np.zeros((0, 1)),
                      np.zeros(0), np.zeros((0, 3)), np.zeros((0, 2)),
                      np.zeros(0))
        assert len(buf) == 2 and buf._cursor == cursor

    def test_rejects_wrong_width_naming_field(self):
        buf = make()
        with pytest.raises(ModelError, match="'global'"):
            buf.add_batch(np.zeros((4, 3)), np.zeros((4, 5)),
                          np.zeros((4, 1)), np.zeros(4), np.zeros((4, 3)),
                          np.zeros((4, 2)), np.zeros(4))

    def test_rejects_done_length_mismatch(self):
        buf = make()
        with pytest.raises(ModelError, match="'done'"):
            buf.add_batch(np.zeros((4, 3)), np.zeros((4, 2)),
                          np.zeros((4, 1)), np.zeros(4), np.zeros((4, 3)),
                          np.zeros((4, 2)), np.zeros(3))
