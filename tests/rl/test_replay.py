"""Replay buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rl.replay import ReplayBuffer


def make(capacity=10, local=3, glob=2):
    return ReplayBuffer(capacity, local, glob, action_dim=1, seed=0)


def add_n(buf, n, value=0.0):
    for i in range(n):
        buf.add(np.full(3, i + value), np.full(2, i), np.array([0.5]),
                float(i), np.zeros(3), np.zeros(2), False)


class TestReplayBuffer:
    def test_len_grows_then_saturates(self):
        buf = make(capacity=5)
        add_n(buf, 3)
        assert len(buf) == 3
        add_n(buf, 10)
        assert len(buf) == 5

    def test_circular_overwrite(self):
        buf = make(capacity=3)
        add_n(buf, 5)   # rewards 0..4; slots hold 3, 4, 2
        batch = buf.sample(100)
        assert set(np.unique(batch["reward"])) <= {2.0, 3.0, 4.0}

    def test_sample_shapes(self):
        buf = make()
        add_n(buf, 6)
        batch = buf.sample(4)
        assert batch["local"].shape == (4, 3)
        assert batch["global"].shape == (4, 2)
        assert batch["action"].shape == (4, 1)
        assert batch["reward"].shape == (4,)
        assert batch["done"].shape == (4,)

    def test_sample_empty_raises(self):
        with pytest.raises(ModelError):
            make().sample(1)

    def test_done_flag_stored(self):
        buf = make()
        buf.add(np.zeros(3), np.zeros(2), np.array([0.0]), 1.0,
                np.zeros(3), np.zeros(2), True)
        assert buf.sample(1)["done"][0] == 1.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ModelError):
            ReplayBuffer(0, 3, 2)

    def test_rejects_bad_dims(self):
        with pytest.raises(ModelError):
            ReplayBuffer(5, 0, 2)

    def test_sampling_deterministic_per_seed(self):
        a, b = make(), make()
        add_n(a, 8)
        add_n(b, 8)
        sa, sb = a.sample(4), b.sample(4)
        assert np.allclose(sa["reward"], sb["reward"])
