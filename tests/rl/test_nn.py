"""NumPy network library: gradient correctness and state management."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.rl.nn import MLP, Linear


def numeric_grad(f, param, eps=1e-6):
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = param[idx]
        param[idx] = orig + eps
        up = f()
        param[idx] = orig - eps
        down = f()
        param[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
    return grad


class TestGradients:
    @pytest.mark.parametrize("output", ["linear", "tanh"])
    def test_full_gradient_check(self, output):
        rng = np.random.default_rng(0)
        net = MLP(4, (8, 6), 2, output=output, seed=1)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(3, 2))   # fixed loss weights

        def loss():
            return float(np.sum(w * net.forward(x)))

        net.zero_grad()
        net.forward(x)
        grad_in = net.backward(w)
        for layer in net.layers:
            assert np.allclose(layer.dW, numeric_grad(loss, layer.W),
                               atol=1e-5)
            assert np.allclose(layer.db, numeric_grad(loss, layer.b),
                               atol=1e-5)
        # Input gradient too.
        num_in = numeric_grad(loss, x)
        assert np.allclose(grad_in, num_in, atol=1e-5)

    def test_gradients_accumulate(self):
        net = MLP(3, (4,), 1, seed=0)
        x = np.ones((2, 3))
        net.forward(x)
        net.backward(np.ones((2, 1)))
        once = net.layers[0].dW.copy()
        net.forward(x)
        net.backward(np.ones((2, 1)))
        assert np.allclose(net.layers[0].dW, 2 * once)
        net.zero_grad()
        assert np.all(net.layers[0].dW == 0)


class TestShapesAndErrors:
    def test_forward_shape(self):
        net = MLP(5, (7,), 3, seed=0)
        assert net.forward(np.zeros((4, 5))).shape == (4, 3)
        assert net.forward(np.zeros(5)).shape == (1, 3)

    def test_rejects_wrong_input_dim(self):
        net = MLP(5, (7,), 3, seed=0)
        with pytest.raises(ModelError):
            net.forward(np.zeros((1, 4)))

    def test_backward_before_forward(self):
        net = MLP(2, (3,), 1, seed=0)
        with pytest.raises(ModelError):
            net.backward(np.zeros((1, 1)))

    def test_rejects_unknown_output(self):
        with pytest.raises(ModelError):
            MLP(2, (3,), 1, output="sigmoid")

    def test_rejects_bad_dims(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            Linear(0, 3, rng)

    def test_tanh_output_bounded(self):
        net = MLP(3, (8,), 1, output="tanh", seed=0)
        out = net.forward(np.random.default_rng(0).normal(size=(50, 3)) * 100)
        assert np.all(np.abs(out) <= 1.0)


class TestState:
    def test_roundtrip(self):
        a = MLP(3, (5,), 2, seed=0)
        b = MLP(3, (5,), 2, seed=99)
        b.set_state(a.get_state())
        x = np.random.default_rng(1).normal(size=(4, 3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_clone_is_independent(self):
        a = MLP(3, (5,), 2, output="tanh", seed=0)
        b = a.clone()
        x = np.random.default_rng(1).normal(size=(2, 3))
        assert np.allclose(a.forward(x), b.forward(x))
        a.layers[0].W += 1.0
        assert not np.allclose(a.forward(x), b.forward(x))

    def test_set_state_shape_mismatch(self):
        a = MLP(3, (5,), 2, seed=0)
        b = MLP(3, (6,), 2, seed=0)
        with pytest.raises(ModelError):
            a.set_state(b.get_state())

    def test_set_state_length_mismatch(self):
        a = MLP(3, (5,), 2, seed=0)
        with pytest.raises(ModelError):
            a.set_state(a.get_state()[:-1])

    def test_polyak_update(self):
        a = MLP(3, (5,), 2, seed=0)
        b = MLP(3, (5,), 2, seed=7)
        before = b.layers[0].W.copy()
        b.polyak_update_from(a, tau=0.5)
        expected = 0.5 * a.layers[0].W + 0.5 * before
        assert np.allclose(b.layers[0].W, expected)

    @settings(max_examples=10, deadline=None)
    @given(tau=st.floats(min_value=0.0, max_value=1.0))
    def test_property_polyak_convex(self, tau):
        a = MLP(2, (3,), 1, seed=0)
        b = MLP(2, (3,), 1, seed=7)
        lo = np.minimum(a.layers[0].W, b.layers[0].W)
        hi = np.maximum(a.layers[0].W, b.layers[0].W)
        b.polyak_update_from(a, tau=tau)
        assert np.all(b.layers[0].W >= lo - 1e-12)
        assert np.all(b.layers[0].W <= hi + 1e-12)


class TestInfer:
    """The no-grad fast forward used on serving and action-selection paths."""

    @pytest.mark.parametrize("output", ["linear", "tanh"])
    def test_matches_forward_bitwise(self, output):
        rng = np.random.default_rng(3)
        net = MLP(in_dim=5, hidden=(16, 8), out_dim=2, output=output, seed=3)
        x = rng.normal(size=(7, 5))
        assert np.array_equal(net.infer(x), net.forward(x))

    def test_single_vector_promoted_to_batch(self):
        net = MLP(in_dim=4, hidden=(8,), out_dim=1, seed=0)
        out = net.infer(np.zeros(4))
        assert out.shape == (1, 1)

    def test_rejects_wrong_input_dim(self):
        net = MLP(in_dim=4, hidden=(8,), out_dim=1, seed=0)
        with pytest.raises(ModelError):
            net.infer(np.zeros(3))

    def test_does_not_disturb_backprop_caches(self):
        # A training step may interleave with inference (e.g. serving a
        # policy mid-update); infer must leave forward's caches intact so
        # the subsequent backward is unchanged.
        rng = np.random.default_rng(7)
        x = rng.normal(size=(6, 5))
        grad_out = rng.normal(size=(6, 2))

        ref = MLP(in_dim=5, hidden=(16,), out_dim=2, seed=5)
        ref.forward(x)
        ref.backward(grad_out)
        want = [(l.dW.copy(), l.db.copy()) for l in ref.layers]

        net = MLP(in_dim=5, hidden=(16,), out_dim=2, seed=5)
        net.forward(x)
        net.infer(rng.normal(size=(3, 5)))  # interleaved inference
        net.backward(grad_out)
        for layer, (dW, db) in zip(net.layers, want):
            assert np.array_equal(layer.dW, dW)
            assert np.array_equal(layer.db, db)

    def test_backward_before_forward_still_rejected_after_infer(self):
        net = MLP(in_dim=4, hidden=(8,), out_dim=1, seed=0)
        net.infer(np.zeros(4))
        with pytest.raises(ModelError):
            net.backward(np.zeros((1, 1)))
