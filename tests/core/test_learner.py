"""Learner: cadence, warmup gating, snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, replace
from repro.core.learner import Learner
from repro.errors import (
    ModelError,
    TrainingDivergedError,
    TrainingInstabilityWarning,
)

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=20, update_steps=3,
                update_interval_s=5.0)


def fill(learner, n):
    rng = np.random.default_rng(0)
    for _ in range(n):
        learner.add_transition(rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim),
                               0.1, 0.05,
                               rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim))


class TestLearner:
    def test_dims_follow_config(self):
        learner = Learner(SMALL)
        assert learner.local_dim == 8 * SMALL.history_length
        assert learner.global_dim == 12

    def test_warmup_gates_updates(self):
        learner = Learner(SMALL)
        fill(learner, 5)
        assert not learner.warm
        losses = learner.update_burst()
        assert np.isnan(losses["critic_loss"])
        assert learner.total_updates == 0
        fill(learner, 30)
        assert learner.warm
        learner.update_burst()
        assert learner.total_updates == SMALL.update_steps

    def test_maybe_update_cadence(self):
        learner = Learner(SMALL)
        fill(learner, 40)
        assert learner.maybe_update(1.0) is None       # interval not reached
        assert learner.maybe_update(5.1) is not None   # fires
        assert learner.maybe_update(6.0) is None       # resets
        assert learner.maybe_update(10.2) is not None

    def test_reset_update_clock(self):
        learner = Learner(SMALL)
        fill(learner, 40)
        learner.maybe_update(5.1)
        learner.reset_update_clock()
        assert learner.maybe_update(5.1) is not None

    def test_act_in_range(self):
        learner = Learner(SMALL)
        a = learner.act(np.zeros(learner.local_dim), noise_std=1.0)
        assert -1.0 < a < 1.0

    def test_snapshot_and_load(self):
        learner = Learner(SMALL)
        bundle = learner.snapshot_policy()
        other = Learner(replace(SMALL, seed=123))
        other.load_policy(bundle)
        x = np.random.default_rng(0).normal(size=learner.local_dim)
        assert learner.act(x) == pytest.approx(other.act(x))

    def test_load_rejects_mismatched_bundle(self):
        learner = Learner(SMALL)
        small_cfg = replace(SMALL, history_length=2)
        other = Learner(small_cfg)
        with pytest.raises(ModelError):
            learner.load_policy(other.snapshot_policy())

    def test_snapshot_is_immutable_copy(self):
        learner = Learner(SMALL)
        bundle = learner.snapshot_policy()
        before = bundle.actor.get_state()[0].copy()
        fill(learner, 40)
        learner.update_burst()
        assert np.allclose(bundle.actor.get_state()[0], before)


REPLAY_ARRAYS = ("_local", "_global", "_action", "_reward",
                 "_next_local", "_next_global", "_done")


class TestBatchedAct:
    def test_act_batch_matches_sequential_act_bitwise(self):
        batched, serial = Learner(SMALL), Learner(SMALL)
        states = np.random.default_rng(1).normal(
            size=(5, batched.local_dim))
        stack = batched.act_batch(states)
        rows = np.array([serial.act(s) for s in states])
        np.testing.assert_array_equal(stack, rows)

    def test_act_batch_noise_stream_is_batch_shape_invariant(self):
        # One (k, 1) draw must consume the noise stream exactly as k
        # sequential (1, 1) draws — the batched rollout contract.
        batched, serial = Learner(SMALL), Learner(SMALL)
        states = np.random.default_rng(2).normal(
            size=(6, batched.local_dim))
        stack = batched.act_batch(states, noise_std=0.3)
        rows = np.array([serial.act(s, noise_std=0.3) for s in states])
        np.testing.assert_array_equal(stack, rows)

    def test_act_batch_raises_after_exhausting_rollback_budget(self):
        learner = Learner(SMALL)
        for p in learner.td3.actor.parameters():
            p[:] = np.nan
        # Snapshot the poisoned state too, so every rollback restores a
        # still-broken actor and the bounded retry must give up.
        learner.guard._snapshot = learner.td3.state_dict()
        with pytest.warns(TrainingInstabilityWarning), \
                pytest.raises(TrainingDivergedError):
            learner.act_batch(np.zeros((3, learner.local_dim)))
        assert learner.guard.rollbacks == SMALL.rollback_budget


class TestDeferredTransitions:
    def test_deferred_flush_matches_direct_adds_bitwise(self):
        direct, deferred = Learner(SMALL), Learner(SMALL)
        fill(direct, 30)
        deferred.set_deferred(True)
        fill(deferred, 30)
        assert len(deferred.replay) == 0          # buffered, not written
        assert deferred.warm == direct.warm       # pending rows count
        assert deferred.total_transitions == direct.total_transitions
        deferred.set_deferred(False)              # flushes
        assert len(deferred.replay) == len(direct.replay)
        assert deferred.replay._cursor == direct.replay._cursor
        for name in REPLAY_ARRAYS:
            np.testing.assert_array_equal(getattr(deferred.replay, name),
                                          getattr(direct.replay, name))

    def test_update_burst_flushes_pending_first(self):
        learner = Learner(SMALL)
        learner.set_deferred(True)
        fill(learner, 30)
        assert learner.warm and len(learner.replay) == 0
        learner.update_burst()
        assert len(learner.replay) == 30
        assert learner.total_updates == SMALL.update_steps
