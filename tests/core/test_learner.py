"""Learner: cadence, warmup gating, snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, replace
from repro.core.learner import Learner
from repro.errors import ModelError

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=20, update_steps=3,
                update_interval_s=5.0)


def fill(learner, n):
    rng = np.random.default_rng(0)
    for _ in range(n):
        learner.add_transition(rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim),
                               0.1, 0.05,
                               rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim))


class TestLearner:
    def test_dims_follow_config(self):
        learner = Learner(SMALL)
        assert learner.local_dim == 8 * SMALL.history_length
        assert learner.global_dim == 12

    def test_warmup_gates_updates(self):
        learner = Learner(SMALL)
        fill(learner, 5)
        assert not learner.warm
        losses = learner.update_burst()
        assert np.isnan(losses["critic_loss"])
        assert learner.total_updates == 0
        fill(learner, 30)
        assert learner.warm
        learner.update_burst()
        assert learner.total_updates == SMALL.update_steps

    def test_maybe_update_cadence(self):
        learner = Learner(SMALL)
        fill(learner, 40)
        assert learner.maybe_update(1.0) is None       # interval not reached
        assert learner.maybe_update(5.1) is not None   # fires
        assert learner.maybe_update(6.0) is None       # resets
        assert learner.maybe_update(10.2) is not None

    def test_reset_update_clock(self):
        learner = Learner(SMALL)
        fill(learner, 40)
        learner.maybe_update(5.1)
        learner.reset_update_clock()
        assert learner.maybe_update(5.1) is not None

    def test_act_in_range(self):
        learner = Learner(SMALL)
        a = learner.act(np.zeros(learner.local_dim), noise_std=1.0)
        assert -1.0 < a < 1.0

    def test_snapshot_and_load(self):
        learner = Learner(SMALL)
        bundle = learner.snapshot_policy()
        other = Learner(replace(SMALL, seed=123))
        other.load_policy(bundle)
        x = np.random.default_rng(0).normal(size=learner.local_dim)
        assert learner.act(x) == pytest.approx(other.act(x))

    def test_load_rejects_mismatched_bundle(self):
        learner = Learner(SMALL)
        small_cfg = replace(SMALL, history_length=2)
        other = Learner(small_cfg)
        with pytest.raises(ModelError):
            learner.load_policy(other.snapshot_policy())

    def test_snapshot_is_immutable_copy(self):
        learner = Learner(SMALL)
        bundle = learner.snapshot_policy()
        before = bundle.actor.get_state()[0].copy()
        fill(learner, 40)
        learner.update_burst()
        assert np.allclose(bundle.actor.get_state()[0], before)
