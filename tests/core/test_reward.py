"""Reward block: Eqs. 4-8 and the Fig. 4 sensitivity argument."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LinkConfig, RewardConfig
from repro.core.reward import (
    FlowSnapshot,
    RewardBlock,
    fairness_term,
    stability_term,
)
from repro.errors import ModelError
from repro.metrics.fairness import jain_index
from repro.units import mbps_to_pps

LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)


def snap(thr_mbps=50.0, avg_mbps=None, std=0.0, rtt=0.030, loss_pps=0.0,
         pacing_mbps=None):
    thr = mbps_to_pps(thr_mbps)
    return FlowSnapshot(
        throughput_pps=thr,
        avg_thr_pps=mbps_to_pps(avg_mbps) if avg_mbps is not None else thr,
        thr_std_pps=std,
        avg_rtt_s=rtt,
        loss_pps=loss_pps,
        pacing_pps=mbps_to_pps(pacing_mbps) if pacing_mbps is not None
        else thr,
    )


class TestFairnessTerm:
    def test_zero_at_equality(self):
        assert fairness_term([100.0, 100.0, 100.0]) == 0.0

    def test_positive_when_unequal(self):
        assert fairness_term([150.0, 50.0]) > 0.0

    def test_zero_total_is_zero(self):
        assert fairness_term([0.0, 0.0]) == 0.0

    def test_more_sensitive_than_jain_near_equality(self):
        """Fig. 4: a 20 Mbps gap on 100 Mbps moves R_fair (0.1) much more
        than it moves the Jain index (0.038)."""
        equal = np.array([50.0, 50.0])
        gapped = np.array([60.0, 40.0])
        jain_drop = jain_index(equal) - jain_index(gapped)
        fair_rise = fairness_term(gapped) - fairness_term(equal)
        assert fair_rise == pytest.approx(0.1)
        assert jain_drop == pytest.approx(0.038, abs=0.002)
        assert fair_rise > 2.0 * jain_drop

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            fairness_term([])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e4),
                    min_size=1, max_size=8))
    def test_property_bounded_by_half(self, thr):
        # sqrt((1-1/n)/n) <= 0.5 for all n >= 1.
        assert 0.0 <= fairness_term(thr) <= 0.5 + 1e-9


class TestStabilityTerm:
    def test_zero_for_steady_flows(self):
        assert stability_term([100.0, 100.0], [0.0, 0.0]) == 0.0

    def test_scales_with_cv(self):
        low = stability_term([100.0], [5.0])
        high = stability_term([100.0], [30.0])
        assert high > low > 0.0

    def test_mismatched_shapes(self):
        with pytest.raises(ModelError):
            stability_term([1.0, 2.0], [0.0])


class TestRewardBlock:
    def test_full_fair_utilisation_is_max_reward(self):
        block = RewardBlock(LINK)
        terms = block.compute([snap(50.0), snap(50.0)])
        assert terms.throughput == pytest.approx(1.0)
        assert terms.fairness == 0.0
        assert terms.latency == 0.0
        assert terms.loss == 0.0
        assert terms.total == pytest.approx(0.1 * 1.0)

    def test_latency_tolerance_band(self):
        block = RewardBlock(LINK)
        # 20% inflation: inside the (1+beta) tolerance -> no penalty.
        terms = block.compute([snap(rtt=0.030 * 1.19)])
        assert terms.latency == 0.0
        terms = block.compute([snap(rtt=0.030 * 2.0)])
        assert terms.latency > 0.0

    def test_latency_penalty_scales_with_pacing(self):
        block = RewardBlock(LINK)
        slow = block.compute([snap(rtt=0.09, pacing_mbps=10.0)])
        fast = block.compute([snap(rtt=0.09, pacing_mbps=100.0)])
        assert fast.latency > slow.latency

    def test_loss_term(self):
        block = RewardBlock(LINK)
        terms = block.compute([snap(thr_mbps=50.0,
                                    loss_pps=mbps_to_pps(5.0))])
        assert terms.loss == pytest.approx(0.1)

    def test_unfairness_reduces_total(self):
        block = RewardBlock(LINK)
        fair = block.compute([snap(50.0), snap(50.0)])
        unfair = block.compute([snap(90.0, avg_mbps=90.0),
                                snap(10.0, avg_mbps=10.0)])
        assert unfair.total < fair.total

    def test_instability_reduces_total(self):
        block = RewardBlock(LINK)
        steady = block.compute([snap(50.0), snap(50.0)])
        shaky = block.compute([snap(50.0, std=mbps_to_pps(25.0)),
                               snap(50.0, std=mbps_to_pps(25.0))])
        assert shaky.total < steady.total

    def test_capacity_override(self):
        block = RewardBlock(LINK)
        terms = block.compute([snap(25.0)],
                              capacity_pps=mbps_to_pps(50.0))
        assert terms.throughput == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            RewardBlock(LINK).compute([])

    @settings(max_examples=50, deadline=None)
    @given(thr=st.lists(st.floats(min_value=0.0, max_value=300.0),
                        min_size=1, max_size=6),
           rtt=st.floats(min_value=0.005, max_value=1.0),
           loss=st.floats(min_value=0.0, max_value=100.0))
    def test_property_reward_bounded(self, thr, rtt, loss):
        """Eq. 8: the total reward always lies in [-0.1, 0.1]."""
        block = RewardBlock(LINK, RewardConfig())
        snaps = [snap(t, rtt=rtt, loss_pps=loss) for t in thr]
        terms = block.compute(snaps)
        assert -0.1 <= terms.total <= 0.1
