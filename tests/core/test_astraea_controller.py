"""The deployable Astraea controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.astraea import AstraeaController
from repro.core.policy import PolicyBundle, new_actor
from tests.cc.test_base import make_stats


def make_controller(**kwargs):
    """Controller with a freshly initialised (untrained) bundle."""
    bundle = PolicyBundle(actor=new_actor(seed=5))
    return AstraeaController(policy=bundle, **kwargs)


class TestController:
    def test_backend_reports_model(self):
        assert make_controller().backend == "model"

    def test_window_changes_bounded_by_alpha(self):
        ctl = make_controller(slow_start=False)
        prev = ctl.cwnd
        for i in range(20):
            d = ctl.on_interval(make_stats(time_s=(i + 1) * 0.03))
            assert d.cwnd_pkts <= prev * (1 + ctl.alpha) + 1e-9
            assert d.cwnd_pkts >= prev / (1 + ctl.alpha) - 1e-9
            prev = d.cwnd_pkts

    def test_pacing_follows_cwnd_over_srtt(self):
        ctl = make_controller(slow_start=False)
        d = ctl.on_interval(make_stats(srtt_s=0.05))
        assert d.pacing_pps == pytest.approx(d.cwnd_pkts / 0.05)

    def test_pacing_disabled(self):
        ctl = make_controller(slow_start=False, use_pacing=False)
        d = ctl.on_interval(make_stats())
        assert d.pacing_pps is None

    def test_slow_start_ramps_then_hands_over(self):
        ctl = make_controller(slow_start=True)
        # Empty queue: slow start grows multiplicatively.
        d1 = ctl.on_interval(make_stats(time_s=0.03, delivered_pkts=30.0))
        assert d1.cwnd_pkts == pytest.approx(15.0)
        # Deep queue: handover, window pulled back.
        d2 = ctl.on_interval(make_stats(time_s=0.06, avg_rtt_s=0.09,
                                        min_rtt_s=0.03,
                                        cwnd_pkts=d1.cwnd_pkts))
        assert not ctl._in_slow_start
        assert d2.cwnd_pkts < d1.cwnd_pkts * 1.5

    def test_reset_restores_slow_start(self):
        ctl = make_controller(slow_start=True)
        ctl.on_interval(make_stats(avg_rtt_s=0.2, min_rtt_s=0.03))
        ctl.reset()
        assert ctl._in_slow_start
        assert ctl.cwnd == pytest.approx(10.0)

    def test_policy_path_loading(self, tmp_path):
        bundle = PolicyBundle(actor=new_actor(seed=6))
        path = bundle.save(tmp_path / "p.npz")
        ctl = AstraeaController(policy=str(path))
        assert ctl.backend == "model"

    def test_deployment_uses_only_local_state(self):
        """No global information at inference time (§3.1): identical local
        observations yield identical decisions regardless of anything else."""
        a = make_controller(slow_start=False)
        b = make_controller(slow_start=False)
        for i in range(10):
            stats = make_stats(time_s=(i + 1) * 0.03)
            da = a.on_interval(stats)
            db = b.on_interval(stats)
            assert da.cwnd_pkts == pytest.approx(db.cwnd_pkts)


class TestShippedBundle:
    def test_default_policy_drives_fairly(self):
        """The shipped pretrained bundle must beat the unfair baselines on
        the quick three-flow scenario (sanity gate on the artefact)."""
        from repro.config import LinkConfig, ScenarioConfig
        from repro.core.policy import load_default_policy
        from repro.env import run_scenario
        from repro.netsim import staggered_flows

        if load_default_policy("astraea") is None:
            pytest.skip("no shipped bundle in this checkout")
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=staggered_flows(3, cc="astraea", interval_s=10.0,
                                  duration_s=30.0),
            duration_s=50.0,
        )
        result = run_scenario(scenario)
        assert result.mean_jain() > 0.85
        assert result.utilization() > 0.8


class TestDeploymentGuards:
    def test_idle_guard_forces_growth(self):
        """A zero-congestion-signal path never sees a decrease."""
        ctl = make_controller(slow_start=False)
        # Make the raw policy output strongly negative by saturating the
        # actor's input with a huge latency history first.
        actions = []
        for i in range(30):
            d = ctl.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                           avg_rtt_s=0.03, min_rtt_s=0.03,
                                           lost_pkts=0.0))
            actions.append(d.cwnd_pkts)
        # Guard active: cwnd grows monotonically outside drain periods.
        grew = sum(b > a for a, b in zip(actions, actions[1:]))
        assert grew > len(actions) * 0.6

    def test_bloat_guard_forces_backoff(self):
        ctl = make_controller(slow_start=False, probe_rtt=False)
        ctl._windowed_rtt_min(0.0, 0.03)
        before = ctl.cwnd
        d = ctl.on_interval(make_stats(time_s=1.0, avg_rtt_s=0.15,
                                       min_rtt_s=0.15))
        assert d.cwnd_pkts < before

    def test_guards_inactive_in_normal_band(self):
        """Between idle and bloat the policy's action passes through."""
        guarded = make_controller(slow_start=False, probe_rtt=False)
        raw = make_controller(slow_start=False, probe_rtt=False,
                              guards=False)
        for i in range(10):
            stats = make_stats(time_s=(i + 1) * 0.03, avg_rtt_s=0.045,
                               min_rtt_s=0.03)
            dg = guarded.on_interval(stats)
            dr = raw.on_interval(stats)
            assert dg.cwnd_pkts == pytest.approx(dr.cwnd_pkts)

    def test_guards_disabled(self):
        ctl = make_controller(slow_start=False, guards=False,
                              probe_rtt=False)
        assert not ctl.guards_enabled

    def test_probe_rtt_drains_periodically(self):
        ctl = make_controller(slow_start=False, guards=False)
        cwnds = []
        for i in range(400):
            d = ctl.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                           avg_rtt_s=0.045, min_rtt_s=0.03))
            cwnds.append(d.cwnd_pkts)
        drops = sum(b < a for a, b in zip(cwnds, cwnds[1:]))
        # At least PROBE_INTERVALS drains per probe interval happened.
        assert drops >= 2 * AstraeaController.PROBE_INTERVALS
