"""Full learner checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, replace
from repro.core.learner import Learner
from repro.errors import ModelError

SMALL = replace(TrainingConfig(), hidden_layers=(8, 8), batch_size=8,
                warmup_transitions=10, update_steps=2)


def trained_learner(seed=0):
    learner = Learner(SMALL, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(40):
        learner.add_transition(rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim),
                               0.2, 0.01,
                               rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim))
    learner.update_burst()
    return learner


class TestCheckpoint:
    def test_roundtrip_restores_all_networks(self, tmp_path):
        a = trained_learner(seed=1)
        path = a.save_checkpoint(tmp_path / "ck.npz")
        b = Learner(SMALL, seed=99)
        b.load_checkpoint(path)
        x = np.random.default_rng(0).normal(size=(3, a.local_dim))
        g = np.random.default_rng(1).normal(size=(3, a.global_dim))
        act = np.zeros((3, 1))
        assert np.allclose(a.td3.actor.forward(x), b.td3.actor.forward(x))
        assert np.allclose(a.q_values(g, x, act), b.q_values(g, x, act)) \
            if hasattr(a, "q_values") else True
        assert np.allclose(a.td3.q_values(g, x, act),
                           b.td3.q_values(g, x, act))
        assert np.allclose(a.td3.critic2.forward(
            np.concatenate([g, x, act], axis=1)),
            b.td3.critic2.forward(np.concatenate([g, x, act], axis=1)))
        assert b.total_updates == a.total_updates

    def test_targets_restored_independently(self, tmp_path):
        a = trained_learner(seed=2)
        path = a.save_checkpoint(tmp_path / "ck.npz")
        b = Learner(SMALL, seed=3)
        b.load_checkpoint(path)
        x = np.random.default_rng(0).normal(size=(2, a.local_dim))
        assert np.allclose(a.td3.actor_target.forward(x),
                           b.td3.actor_target.forward(x))

    def test_dimension_mismatch_rejected(self, tmp_path):
        a = trained_learner()
        path = a.save_checkpoint(tmp_path / "ck.npz")
        other = Learner(replace(SMALL, history_length=2))
        with pytest.raises(ModelError):
            other.load_checkpoint(path)

    def test_topology_mismatch_rejected(self, tmp_path):
        a = trained_learner()
        path = a.save_checkpoint(tmp_path / "ck.npz")
        other = Learner(SMALL, use_global=False)
        with pytest.raises(ModelError):
            other.load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            Learner(SMALL).load_checkpoint(tmp_path / "nope.npz")
