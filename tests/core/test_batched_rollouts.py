"""End-to-end equivalence of the batched training fast path.

The batched rollout (stacked act, shared-reward pass cache, deferred
replay flushes) and the worker pool must be *bitwise* transparent: the
same episode run serially, batched, or across pool workers leaves the
learner in the identical state.  These tests pin that contract at the
episode and the train-loop level; the unit-level pieces live in
tests/rl/test_replay.py and tests/core/test_learner.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    FlowConfig,
    LinkConfig,
    ScenarioConfig,
    TrainingConfig,
    replace,
)
from repro.core.learner import Learner
from repro.core.train import train_astraea
from repro.env.episode import run_training_episode

REPLAY_ARRAYS = ("_local", "_global", "_action", "_reward",
                 "_next_local", "_next_global", "_done")

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=40, update_steps=2,
                update_interval_s=2.0, seed=3)


def warm_learner():
    """A learner past warmup, so the episode runs policy actions and
    real update bursts from the start."""
    learner = Learner(SMALL)
    rng = np.random.default_rng(11)
    n = 48
    learner.replay.add_batch(
        rng.normal(size=(n, learner.local_dim)),
        rng.normal(size=(n, learner.global_dim)),
        rng.normal(size=(n, 1)),
        rng.normal(size=n),
        rng.normal(size=(n, learner.local_dim)),
        rng.normal(size=(n, learner.global_dim)),
        np.zeros(n))
    return learner


def scenario():
    # Two agents plus CUBIC cross traffic: exercises the shared-reward
    # cache, the mixed begin/finish pass and the cross-traffic slots.
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=96.0, rtt_ms=30.0, buffer_bdp=1.5),
        flows=(FlowConfig(cc="astraea", start_s=0.0, duration_s=5.0),
               FlowConfig(cc="astraea", start_s=0.5, duration_s=4.5),
               FlowConfig(cc="cubic", start_s=1.0, duration_s=4.0)),
        duration_s=5.0,
        seed=2,
    )


class TestEpisodeEquivalence:
    def test_batched_matches_serial_bitwise(self):
        def leg(batched):
            learner = warm_learner()
            stats = run_training_episode(
                learner, scenario(), noise_std=0.15,
                initial_cwnds=[16.0, 20.0, 24.0], episode=3,
                batched=batched)
            return learner, stats

        serial_learner, serial_stats = leg(False)
        fast_learner, fast_stats = leg(True)
        assert serial_stats.transitions == fast_stats.transitions
        assert serial_stats.update_bursts == fast_stats.update_bursts
        assert serial_stats.update_bursts >= 1   # bursts actually fired
        assert serial_stats.reward_sum == fast_stats.reward_sum
        assert len(serial_learner.replay) == len(fast_learner.replay)
        assert serial_learner.replay._cursor == fast_learner.replay._cursor
        for name in REPLAY_ARRAYS:
            np.testing.assert_array_equal(
                getattr(serial_learner.replay, name),
                getattr(fast_learner.replay, name))
        for p_s, p_b in zip(serial_learner.td3.actor.get_state(),
                            fast_learner.td3.actor.get_state()):
            np.testing.assert_array_equal(p_s, p_b)


# Tiny but real train loop: 2 strides of 2 parallel envs.  Warmup is
# parked high so the periodic held-out evaluation (minutes of sim time)
# never triggers; the rollout, pool-merge and reward paths all run.
TRAIN = replace(TrainingConfig(), episodes=4, parallel_envs=2,
                episode_duration_s=3.0, flow_count=(2, 2),
                hidden_layers=(8, 8), warmup_transitions=10 ** 6, seed=5)


class TestTrainWorkerEquivalence:
    def test_episode_rewards_match_serial(self):
        _, serial = train_astraea(TRAIN, workers=1)
        _, pooled = train_astraea(TRAIN, workers=2)
        assert len(serial.episode_rewards) == len(pooled.episode_rewards)
        assert serial.episode_rewards == pytest.approx(
            pooled.episode_rewards, abs=1e-12)
        assert not serial.failed_episodes and not pooled.failed_episodes
