"""Policy distillation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distill import (
    collect_states,
    distill_policy,
    evaluate_distillation,
    parameter_count,
)
from repro.core.policy import PolicyBundle, new_actor
from repro.errors import ModelError


@pytest.fixture(scope="module")
def teacher():
    return PolicyBundle(actor=new_actor(seed=4))


@pytest.fixture(scope="module")
def states(teacher):
    rng = np.random.default_rng(0)
    # Synthetic state cloud spanning the clipped feature range.
    return rng.uniform(0.0, 3.0, size=(2000, teacher.actor.in_dim))


class TestDistill:
    def test_student_matches_teacher_on_training_states(self, teacher,
                                                        states):
        student = distill_policy(teacher, states, epochs=400)
        report = evaluate_distillation(teacher, student, states)
        assert report["mean_abs_error"] < 0.15
        assert report["sign_agreement"] > 0.8

    def test_student_is_much_smaller(self, teacher, states):
        student = distill_policy(teacher, states, epochs=10)
        assert parameter_count(student) < parameter_count(teacher) / 20
        assert evaluate_distillation(teacher, student,
                                     states)["compression"] > 20

    def test_student_keeps_execution_metadata(self, teacher, states):
        student = distill_policy(teacher, states, epochs=10)
        assert student.history == teacher.history
        assert student.alpha == teacher.alpha
        assert student.metadata["hidden"] == [16, 16]

    def test_rejects_bad_state_shape(self, teacher):
        with pytest.raises(ModelError):
            distill_policy(teacher, np.zeros((10, 3)))

    def test_collect_states_on_policy(self, teacher):
        from repro.config import LinkConfig, ScenarioConfig
        from repro.netsim import staggered_flows

        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=staggered_flows(2, cc="astraea", interval_s=1.0,
                                  duration_s=5.0),
            duration_s=6.0,
        )
        collected = collect_states(teacher, [scenario])
        assert collected.shape[1] == teacher.actor.in_dim
        assert collected.shape[0] > 100

    def test_student_drives_the_emulator(self, teacher, states):
        """End-to-end: the distilled bundle works as a controller."""
        from repro.config import LinkConfig, ScenarioConfig
        from repro.core.astraea import AstraeaController
        from repro.env import run_scenario
        from repro.netsim import staggered_flows

        student = distill_policy(teacher, states, epochs=100)
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=staggered_flows(2, cc="astraea", interval_s=1.0,
                                  duration_s=6.0),
            duration_s=8.0,
        )
        controllers = [AstraeaController(policy=student)
                       for _ in scenario.flows]
        result = run_scenario(scenario, controllers=controllers)
        assert result.utilization() > 0.0  # ran to completion


class TestDefaultScenarios:
    def test_default_collection_scenarios_are_diverse(self):
        from repro.core.distill import default_collection_scenarios

        scenarios = default_collection_scenarios()
        assert len(scenarios) >= 3
        bandwidths = {s.link.bandwidth_mbps for s in scenarios}
        assert len(bandwidths) >= 3
