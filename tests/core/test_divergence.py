"""Divergence guard: rollback, LR decay, budget exhaustion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, replace
from repro.core.learner import DivergenceGuard, Learner
from repro.errors import (
    ModelError,
    TrainingDivergedError,
    TrainingInstabilityWarning,
)

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=20, update_steps=3,
                rollback_budget=3, rollback_lr_decay=0.5)


def fill(learner, n, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        learner.add_transition(rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim),
                               0.1, 0.05,
                               rng.normal(size=learner.global_dim),
                               rng.normal(size=learner.local_dim))


def poison_critic(learner):
    learner.td3.critic1.parameters()[0][0, 0] = np.nan


class TestGuardUnit:
    def test_validation(self):
        learner = Learner(SMALL)
        with pytest.raises(ModelError):
            DivergenceGuard(learner.td3, budget=0)
        with pytest.raises(ModelError):
            DivergenceGuard(learner.td3, lr_decay=1.5)

    def test_healthy_ignores_nan_actor_loss_sentinel(self):
        learner = Learner(SMALL)
        guard = learner.guard
        # TD3 reports actor_loss=nan on non-actor-update steps; that is a
        # sentinel, not divergence.
        assert guard.healthy({"critic_loss": 0.5,
                              "actor_loss": float("nan")})
        assert not guard.healthy({"critic_loss": float("nan")})

    def test_rollback_restores_params_and_decays_lr(self):
        learner = Learner(SMALL)
        guard = learner.guard
        lr0_actor = learner.td3.actor_opt.lr
        lr0_critic = learner.td3.critic_opt.lr
        clean = learner.td3.critic1.parameters()[0].copy()
        poison_critic(learner)
        assert not guard.healthy()
        with pytest.warns(TrainingInstabilityWarning):
            guard.rollback("test poison")
        np.testing.assert_array_equal(learner.td3.critic1.parameters()[0],
                                      clean)
        assert learner.td3.actor_opt.lr == pytest.approx(0.5 * lr0_actor)
        assert learner.td3.critic_opt.lr == pytest.approx(0.5 * lr0_critic)
        assert guard.rollbacks == 1 and guard.consecutive == 1

    def test_lr_decay_compounds_across_consecutive_rollbacks(self):
        learner = Learner(SMALL)
        guard = learner.guard
        lr0 = learner.td3.actor_opt.lr
        with pytest.warns(TrainingInstabilityWarning):
            guard.rollback("one")
            guard.rollback("two")
        assert learner.td3.actor_opt.lr == pytest.approx(0.25 * lr0)

    def test_budget_exhaustion_raises_typed_error(self):
        learner = Learner(SMALL)
        guard = learner.guard
        with pytest.warns(TrainingInstabilityWarning):
            for _ in range(SMALL.rollback_budget):
                guard.rollback("persistent")
        with pytest.raises(TrainingDivergedError):
            guard.rollback("persistent")

    def test_healthy_burst_resets_consecutive_count(self):
        learner = Learner(SMALL)
        guard = learner.guard
        with pytest.warns(TrainingInstabilityWarning):
            guard.rollback("blip")
        assert guard.consecutive == 1
        assert not guard.after_burst({"critic_loss": 0.1})
        assert guard.consecutive == 0


class TestLearnerIntegration:
    def test_update_burst_recovers_from_poisoned_critic(self):
        learner = Learner(SMALL)
        fill(learner, 40)
        learner.update_burst()  # healthy burst refreshes the snapshot
        lr0 = learner.td3.critic_opt.lr
        poison_critic(learner)
        with pytest.warns(TrainingInstabilityWarning):
            learner.update_burst()  # NaN spreads; guard must roll back
        assert learner.td3.params_finite()
        assert learner.td3.critic_opt.lr == pytest.approx(0.5 * lr0)
        assert np.isfinite(learner.act(np.zeros(learner.local_dim)))
        # Subsequent healthy bursts run normally and reset the counter.
        losses = learner.update_burst()
        assert np.isfinite(losses["critic_loss"])
        assert learner.guard.consecutive == 0

    def test_repeated_divergence_exhausts_budget(self, monkeypatch):
        learner = Learner(SMALL)
        fill(learner, 40)
        learner.update_burst()
        monkeypatch.setattr(learner.td3, "params_finite", lambda: False)
        with pytest.warns(TrainingInstabilityWarning), \
                pytest.raises(TrainingDivergedError):
            for _ in range(SMALL.rollback_budget + 1):
                learner.update_burst()

    def test_act_rolls_back_on_non_finite_action(self):
        learner = Learner(SMALL)
        fill(learner, 40)
        learner.update_burst()  # snapshot a healthy state
        for p in learner.td3.actor.parameters():
            p[:] = np.nan
        with pytest.warns(TrainingInstabilityWarning):
            a = learner.act(np.zeros(learner.local_dim))
        assert np.isfinite(a) and -1.0 < a < 1.0

    def test_checkpoint_load_refreshes_guard_snapshot(self, tmp_path):
        learner = Learner(SMALL)
        fill(learner, 40)
        learner.update_burst()
        path = learner.save_checkpoint(tmp_path / "ck.npz")
        other = Learner(replace(SMALL, seed=99))
        other.load_checkpoint(path)
        # The guard snapshot must reflect the loaded weights, not the
        # random initialisation: a rollback right after loading restores
        # the checkpointed actor.
        before = other.td3.actor.parameters()[0].copy()
        with pytest.warns(TrainingInstabilityWarning):
            other.guard.rollback("post-load blip")
        np.testing.assert_array_equal(other.td3.actor.parameters()[0],
                                      before)
