"""Action block (Eq. 3) properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.action import (
    apply_action,
    invert_action,
    max_growth_per_second,
    pacing_from_cwnd,
)
from repro.errors import ModelError


class TestApplyAction:
    def test_positive_action_multiplies(self):
        assert apply_action(100.0, 1.0, alpha=0.025) == pytest.approx(102.5)

    def test_negative_action_divides(self):
        assert apply_action(102.5, -1.0, alpha=0.025) == pytest.approx(100.0)

    def test_zero_action_is_identity(self):
        assert apply_action(123.0, 0.0) == 123.0

    def test_symmetry_in_log_space(self):
        """+a then -a returns exactly to the start (Eq. 3's design)."""
        up = apply_action(100.0, 0.7)
        back = apply_action(up, -0.7)
        assert back == pytest.approx(100.0)

    def test_floor_at_min_cwnd(self):
        assert apply_action(2.0, -1.0) >= 2.0

    def test_rejects_out_of_range_action(self):
        with pytest.raises(ModelError):
            apply_action(10.0, 1.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ModelError):
            apply_action(10.0, 0.5, alpha=0.0)
        with pytest.raises(ModelError):
            apply_action(10.0, 0.5, alpha=1.0)

    @settings(max_examples=100, deadline=None)
    @given(cwnd=st.floats(min_value=4.0, max_value=1e6),
           action=st.floats(min_value=-1.0, max_value=1.0))
    def test_property_bounded_change(self, cwnd, action):
        """One step never changes the window by more than factor 1+alpha."""
        new = apply_action(cwnd, action, alpha=0.025)
        assert new <= cwnd * 1.025 + 1e-9
        assert new >= cwnd / 1.025 - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(cwnd=st.floats(min_value=4.0, max_value=1e6),
           a1=st.floats(min_value=-1.0, max_value=1.0),
           a2=st.floats(min_value=-1.0, max_value=1.0))
    def test_property_monotone_in_action(self, cwnd, a1, a2):
        if a1 <= a2:
            assert apply_action(cwnd, a1) <= apply_action(cwnd, a2) + 1e-9


class TestInvertAction:
    @settings(max_examples=100, deadline=None)
    @given(cwnd=st.floats(min_value=10.0, max_value=1e5),
           action=st.floats(min_value=-1.0, max_value=1.0))
    def test_property_roundtrip(self, cwnd, action):
        new = apply_action(cwnd, action, alpha=0.025)
        if new > 2.0 + 1e-9:  # not clipped by the floor
            recovered = invert_action(cwnd, new, alpha=0.025)
            assert recovered == pytest.approx(action, abs=1e-6)

    def test_clipped_to_range(self):
        assert invert_action(10.0, 1000.0) == 1.0
        assert invert_action(1000.0, 10.0) == -1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            invert_action(0.0, 10.0)


class TestHelpers:
    def test_pacing(self):
        assert pacing_from_cwnd(100.0, 0.05) == pytest.approx(2000.0)
        with pytest.raises(ModelError):
            pacing_from_cwnd(10.0, 0.0)

    def test_max_growth_documentation_value(self):
        # alpha=0.025 at 30 ms MTP: (1.025)^(1/0.03) per second ~ 2.28x.
        assert max_growth_per_second(0.025, 0.030) == pytest.approx(2.28,
                                                                    rel=0.01)
        with pytest.raises(ModelError):
            max_growth_per_second(0.025, 0.0)
