"""Policy bundles: serialisation, default loading, caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import (
    PolicyBundle,
    clear_policy_cache,
    default_policy_path,
    load_default_policy,
    new_actor,
)
from repro.errors import ModelError


class TestBundleRoundtrip:
    def test_save_load(self, tmp_path):
        actor = new_actor(seed=3)
        bundle = PolicyBundle(actor=actor, metadata={"note": "test"})
        path = bundle.save(tmp_path / "b.npz")
        loaded = PolicyBundle.load(path)
        x = np.random.default_rng(0).normal(size=(4, actor.in_dim))
        assert np.allclose(actor.forward(x), loaded.actor.forward(x))
        assert loaded.history == bundle.history
        assert loaded.alpha == bundle.alpha
        assert loaded.metadata == {"note": "test"}

    def test_act_returns_clipped_scalar(self, tmp_path):
        bundle = PolicyBundle(actor=new_actor(seed=0))
        a = bundle.act(np.zeros(bundle.actor.in_dim))
        assert -1.0 < a < 1.0

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ModelError):
            PolicyBundle.load(tmp_path / "nope.npz")


class TestDefaults:
    def test_default_paths(self):
        assert default_policy_path("astraea").name == \
            "astraea_pretrained.npz"
        with pytest.raises(ModelError):
            default_policy_path("carrier-pigeon")

    def test_loader_caches(self):
        clear_policy_cache()
        first = load_default_policy("astraea")
        second = load_default_policy("astraea")
        assert first is second
        clear_policy_cache()

    def test_orca_default_may_be_absent(self):
        clear_policy_cache()
        bundle = load_default_policy("orca")
        assert bundle is None or bundle.scheme == "orca"
        clear_policy_cache()


class TestNewActor:
    def test_shape_matches_paper(self):
        actor = new_actor()
        assert actor.in_dim == 40      # 8 features x w=5
        assert actor.out_dim == 1
        hidden = tuple(l.W.shape[1] for l in actor.layers[:-1])
        assert hidden == (256, 128, 64)
        assert actor.output == "tanh"
