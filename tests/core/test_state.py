"""State block: local features, history stacking, global state (Table 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LinkConfig
from repro.core.state import (
    GLOBAL_FEATURES,
    LOCAL_FEATURES,
    LocalStateBlock,
    global_state_vector,
    local_feature_vector,
)
from repro.errors import ModelError
from repro.netsim.stats import MtpStats
from tests.cc.test_base import make_stats


class TestLocalFeatures:
    def test_dimension(self):
        vec = local_feature_vector(make_stats(), thr_max_pps=1000.0,
                                   lat_min_s=0.03)
        assert vec.shape == (LOCAL_FEATURES,)

    def test_throughput_ratio_first(self):
        vec = local_feature_vector(make_stats(throughput_pps=500.0),
                                   thr_max_pps=1000.0, lat_min_s=0.03)
        assert vec[0] == pytest.approx(0.5)

    def test_latency_ratio(self):
        vec = local_feature_vector(make_stats(avg_rtt_s=0.06),
                                   thr_max_pps=1000.0, lat_min_s=0.03)
        assert vec[2] == pytest.approx(2.0)

    def test_relative_cwnd_is_bdp_normalised(self):
        # cwnd 30 with BDP estimate 1000 * 0.03 = 30 -> feature 1.0.
        vec = local_feature_vector(make_stats(cwnd_pkts=30.0),
                                   thr_max_pps=1000.0, lat_min_s=0.03)
        assert vec[4] == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(thr=st.floats(min_value=0.0, max_value=1e6),
           rtt=st.floats(min_value=1e-3, max_value=2.0),
           cwnd=st.floats(min_value=1.0, max_value=1e6))
    def test_property_features_clipped(self, thr, rtt, cwnd):
        stats = make_stats(throughput_pps=thr, avg_rtt_s=rtt, cwnd_pkts=cwnd)
        vec = local_feature_vector(stats, thr_max_pps=max(thr, 1.0),
                                   lat_min_s=0.01)
        assert np.all(vec >= 0.0)
        assert np.all(vec <= 6.0)
        assert np.all(np.isfinite(vec))


class TestLocalStateBlock:
    def test_input_dim(self):
        block = LocalStateBlock(history=5)
        assert block.input_dim == 5 * LOCAL_FEATURES

    def test_zero_padding_when_young(self):
        block = LocalStateBlock(history=3)
        block.update(make_stats())
        vec = block.input_vector()
        assert np.all(vec[:2 * LOCAL_FEATURES] == 0.0)
        assert np.any(vec[2 * LOCAL_FEATURES:] != 0.0)

    def test_history_rolls(self):
        block = LocalStateBlock(history=2)
        block.update(make_stats(throughput_pps=100.0))
        block.update(make_stats(throughput_pps=200.0))
        block.update(make_stats(throughput_pps=200.0))
        vec = block.input_vector()
        # Oldest frame (thr 100, ratio 0.5) evicted: first slot ratio is 1.0.
        assert vec[0] == pytest.approx(1.0)

    def test_tracks_thr_max_and_lat_min(self):
        block = LocalStateBlock()
        block.update(make_stats(throughput_pps=100.0, min_rtt_s=0.05))
        block.update(make_stats(throughput_pps=300.0, min_rtt_s=0.03))
        block.update(make_stats(throughput_pps=200.0, min_rtt_s=0.08))
        assert block.thr_max_pps == 300.0
        assert block.lat_min_s == 0.03

    def test_avg_and_std_over_window(self):
        block = LocalStateBlock(history=3)
        for thr in (100.0, 200.0, 300.0):
            block.update(make_stats(throughput_pps=thr))
        assert block.avg_throughput_pps() == pytest.approx(200.0)
        assert block.throughput_std_pps() == pytest.approx(
            np.std([100.0, 200.0, 300.0]))

    def test_rejects_bad_history(self):
        with pytest.raises(ModelError):
            LocalStateBlock(history=0)

    def test_reset(self):
        block = LocalStateBlock()
        block.update(make_stats())
        block.reset()
        assert block.avg_throughput_pps() == 0.0
        assert np.all(block.input_vector() == 0.0)


class TestGlobalState:
    LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)

    def test_dimension(self):
        vec = global_state_vector([make_stats()], self.LINK)
        assert vec.shape == (GLOBAL_FEATURES,)

    def test_aggregates(self):
        stats = [make_stats(throughput_pps=2000.0, cwnd_pkts=100.0),
                 make_stats(throughput_pps=6000.0, cwnd_pkts=200.0)]
        vec = global_state_vector(stats, self.LINK)
        c_pps = 100e6 / 12000
        assert vec[0] == pytest.approx(8000.0 / c_pps)      # ovr_thr
        assert vec[1] == pytest.approx(2000.0 / c_pps)      # min_thr
        assert vec[2] == pytest.approx(6000.0 / c_pps)      # max_thr
        assert vec[8] == pytest.approx(0.2)                 # 2 flows / 10

    def test_link_descriptors_present(self):
        vec = global_state_vector([make_stats()], self.LINK)
        assert vec[9] == pytest.approx(0.015 / 0.1)         # d0
        assert vec[11] == pytest.approx(0.5)                # c = 100/200

    def test_empty_flow_list(self):
        vec = global_state_vector([], self.LINK)
        assert vec.shape == (GLOBAL_FEATURES,)
        assert vec[8] == 0.0

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=8),
           scale=st.floats(min_value=1.0, max_value=1e5))
    def test_property_bounded(self, n, scale):
        stats = [make_stats(throughput_pps=scale * (i + 1),
                            cwnd_pkts=scale) for i in range(n)]
        vec = global_state_vector(stats, self.LINK)
        assert np.all(vec >= 0.0)
        assert np.all(vec <= 6.0)
