"""Astraea on the packet-level engine.

The policy is trained on the fluid substrate; these tests drive the same
controller through the discrete-event packet simulator's per-MTP callback
to confirm the learned behaviour carries over to real FIFO queueing —
the fidelity claim of DESIGN.md §2 exercised end-to-end.
"""

from __future__ import annotations

import pytest

from repro.config import LinkConfig
from repro.netsim import PacketNetwork
from repro.netsim.stats import MtpStats


def packet_adapter(controller):
    """Bridge the packet engine's stats dict to the controller interface."""

    def on_mtp(raw: dict) -> float:
        delivered = raw["throughput_pps"] * raw["duration_s"]
        stats = MtpStats(
            time_s=raw["time_s"],
            duration_s=raw["duration_s"],
            throughput_pps=raw["throughput_pps"],
            avg_rtt_s=raw["avg_rtt_s"],
            min_rtt_s=raw["avg_rtt_s"],
            sent_pkts=raw["sent_pkts"],
            delivered_pkts=delivered,
            lost_pkts=raw["lost_pkts"],
            pkts_in_flight=raw["pkts_in_flight"],
            cwnd_pkts=raw["cwnd_pkts"],
            pacing_pps=raw["cwnd_pkts"] / max(raw["avg_rtt_s"], 1e-6),
            srtt_s=raw["avg_rtt_s"],
        )
        return controller.on_interval(stats).cwnd_pkts

    return on_mtp


LINK = LinkConfig(bandwidth_mbps=12.0, rtt_ms=30.0, buffer_bdp=2.0)


class TestAstraeaOnPackets:
    @pytest.mark.parametrize("cc_name", ["astraea", "astraea-ref"])
    def test_single_flow_fills_link_without_bloat(self, cc_name):
        from repro.cc import create

        controller = create(cc_name)
        controller.reset()
        net = PacketNetwork(LINK, seed=0)
        fid = net.add_flow(base_rtt_s=0.030, cwnd=10.0,
                           on_mtp=packet_adapter(controller))
        net.run(20.0)
        stats = net.stats(fid)
        rate = stats.delivered / 20.0
        assert rate > 0.8 * 1000.0          # 12 Mbps = 1000 pkt/s
        assert stats.avg_rtt_s < 0.060      # bounded queueing
        loss_rate = stats.lost / max(stats.lost + stats.delivered, 1)
        assert loss_rate < 0.02

    def test_two_flows_share_fairly(self):
        from repro.cc import create

        net = PacketNetwork(LINK, seed=0)
        fids = []
        for _ in range(2):
            controller = create("astraea-ref")
            controller.reset()
            fids.append(net.add_flow(base_rtt_s=0.030, cwnd=10.0,
                                     on_mtp=packet_adapter(controller)))
        net.run(30.0)
        rates = [net.stats(f).delivered / 30.0 for f in fids]
        ratio = max(rates) / max(min(rates), 1e-9)
        assert ratio < 1.6
        assert sum(rates) > 0.8 * 1000.0
