"""Training checkpoints: crash-kill-resume bit-compatibility and integrity."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.env.episode as episode_mod
from repro.config import TrainingConfig, replace
from repro.core.checkpoint import (
    MANIFEST_NAME,
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.core.learner import Learner
from repro.core.train import TrainingHistory, train_astraea
from repro.errors import CheckpointError

# Small but real: episodes get warm, so updates, evals and best-policy
# tracking all happen on both sides of the comparison.
FAST = replace(TrainingConfig(), episodes=4, episode_duration_s=4.0,
               hidden_layers=(8, 8), batch_size=16, warmup_transitions=60,
               update_steps=1, checkpoint_every=2, seed=7)


def run_full(tmp_path=None):
    return train_astraea(FAST, eval_every=100,
                         checkpoint_dir=tmp_path)


class TestKillResume:
    def test_kill_after_checkpoint_then_resume_is_bit_identical(
            self, tmp_path, monkeypatch):
        bundle_full, history_full = train_astraea(FAST, eval_every=100)

        # Interrupted run: die mid-episode-3 (after the episode-2
        # checkpoint has landed on disk).
        ckpt = tmp_path / "ckpt"
        real = episode_mod.run_training_episode
        calls = {"n": 0}

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt("simulated kill -9")
            return real(*args, **kwargs)

        monkeypatch.setattr(episode_mod, "run_training_episode", dying)
        with pytest.raises(KeyboardInterrupt):
            train_astraea(FAST, eval_every=100, checkpoint_dir=ckpt)
        monkeypatch.setattr(episode_mod, "run_training_episode", real)
        assert (ckpt / MANIFEST_NAME).exists()

        bundle_res, history_res = train_astraea(FAST, eval_every=100,
                                                resume_from=ckpt)
        # The resumed history continues exactly from the checkpointed
        # episode: identical rewards, evals and best-policy selection.
        np.testing.assert_array_equal(history_res.episode_rewards,
                                      history_full.episode_rewards)
        assert history_res.eval_episodes == history_full.eval_episodes
        assert history_res.eval_score == history_full.eval_score
        assert history_res.best_episode == history_full.best_episode
        for a, b in zip(bundle_res.actor.get_state(),
                        bundle_full.actor.get_state()):
            np.testing.assert_array_equal(a, b)

    def test_resume_prefix_matches_checkpointed_history(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        train_astraea(replace(FAST, episodes=2), eval_every=100,
                      checkpoint_dir=ckpt)
        manifest = json.loads((ckpt / MANIFEST_NAME).read_text())
        assert manifest["episode"] == 2
        entry = manifest["checkpoints"][0]
        assert len(entry["history"]["episode_rewards"]) == 2

        # Resuming under a *larger* episode budget must keep the prefix.
        with pytest.raises(CheckpointError):
            # ... but only under the identical config.
            train_astraea(replace(FAST, episodes=6), eval_every=100,
                          resume_from=ckpt)

    def test_only_latest_payload_retained(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        train_astraea(FAST, eval_every=100, checkpoint_dir=ckpt)
        payloads = list(ckpt.glob("state-ep*.npz"))
        assert len(payloads) == 1
        assert payloads[0].name == "state-ep000004.npz"


class TestRotation:
    def _save(self, directory, learner, episode, keep_last):
        save_training_checkpoint(
            directory, learner=learner, rng=np.random.default_rng(episode),
            episode=episode, noise=0.1 / episode,
            history_dict=TrainingHistory(
                episode_rewards=[0.0] * episode).__dict__.copy(),
            best_state=learner.td3.actor.get_state(), keep_last=keep_last)

    def test_keep_last_retains_n_and_prunes_older(self, tmp_path):
        learner = Learner(FAST)
        for episode in (2, 4, 6):
            self._save(tmp_path, learner, episode, keep_last=2)
        payloads = sorted(p.name for p in tmp_path.glob("state-ep*.npz"))
        assert payloads == ["state-ep000004.npz", "state-ep000006.npz"]
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert [e["payload"] for e in manifest["checkpoints"]] == \
            ["state-ep000006.npz", "state-ep000004.npz"]
        assert manifest["payload"] == "state-ep000006.npz"

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep_last"):
            self._save(tmp_path, Learner(FAST), 2, keep_last=0)

    def test_resume_falls_back_when_newest_payload_damaged(self, tmp_path):
        learner = Learner(FAST)
        self._save(tmp_path, learner, 2, keep_last=2)
        self._save(tmp_path, learner, 4, keep_last=2)
        newest = tmp_path / "state-ep000004.npz"
        newest.write_bytes(newest.read_bytes()[:64])

        resume = load_training_checkpoint(tmp_path, Learner(FAST),
                                          np.random.default_rng(0))
        assert resume.episode == 2
        assert len(resume.history_dict["episode_rewards"]) == 2

    def test_resume_falls_back_when_newest_payload_missing(self, tmp_path):
        # A kill between the payload prune and a later write can leave the
        # newest payload gone; the next-newest entry must still load.
        learner = Learner(FAST)
        self._save(tmp_path, learner, 2, keep_last=2)
        self._save(tmp_path, learner, 4, keep_last=2)
        (tmp_path / "state-ep000004.npz").unlink()

        resume = load_training_checkpoint(tmp_path, Learner(FAST),
                                          np.random.default_rng(0))
        assert resume.episode == 2

    def test_all_payloads_gone_reports_every_failure(self, tmp_path):
        learner = Learner(FAST)
        self._save(tmp_path, learner, 2, keep_last=2)
        self._save(tmp_path, learner, 4, keep_last=2)
        (tmp_path / "state-ep000004.npz").unlink()
        broken = tmp_path / "state-ep000002.npz"
        broken.write_bytes(broken.read_bytes()[:64])
        with pytest.raises(CheckpointError) as info:
            load_training_checkpoint(tmp_path, Learner(FAST),
                                     np.random.default_rng(0))
        assert "missing" in str(info.value)
        assert "SHA-256" in str(info.value)

    def test_format1_manifest_still_resumes(self, tmp_path):
        learner = Learner(FAST)
        self._save(tmp_path, learner, 2, keep_last=1)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        entry = manifest["checkpoints"][0]
        legacy = {k: v for k, v in manifest.items() if k != "checkpoints"}
        legacy.update(entry)
        legacy["format"] = 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(legacy))

        resume = load_training_checkpoint(tmp_path, Learner(FAST),
                                          np.random.default_rng(0))
        assert resume.episode == 2

    def test_train_checkpoint_keep_rotates(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        train_astraea(FAST, eval_every=100, checkpoint_dir=ckpt,
                      checkpoint_keep=2)
        payloads = sorted(p.name for p in ckpt.glob("state-ep*.npz"))
        # checkpoint_every=2 over 4 episodes -> ep2 and ep4 both retained.
        assert payloads == ["state-ep000002.npz", "state-ep000004.npz"]


class TestIntegrity:
    def _saved(self, tmp_path):
        learner = Learner(FAST)
        rng = np.random.default_rng(FAST.seed)
        save_training_checkpoint(
            tmp_path, learner=learner, rng=rng, episode=2, noise=0.1,
            history_dict=TrainingHistory().__dict__.copy(),
            best_state=learner.td3.actor.get_state())
        return learner, rng

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            load_training_checkpoint(tmp_path, Learner(FAST),
                                     np.random.default_rng(0))

    def test_corrupt_manifest(self, tmp_path):
        self._saved(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_training_checkpoint(tmp_path, Learner(FAST),
                                     np.random.default_rng(0))

    def test_damaged_payload_fails_sha_check(self, tmp_path):
        self._saved(tmp_path)
        payload = next(tmp_path.glob("state-ep*.npz"))
        payload.write_bytes(payload.read_bytes()[:100])
        with pytest.raises(CheckpointError, match="SHA-256"):
            load_training_checkpoint(tmp_path, Learner(FAST),
                                     np.random.default_rng(0))

    def test_missing_payload(self, tmp_path):
        self._saved(tmp_path)
        next(tmp_path.glob("state-ep*.npz")).unlink()
        with pytest.raises(CheckpointError, match="missing"):
            load_training_checkpoint(tmp_path, Learner(FAST),
                                     np.random.default_rng(0))

    def test_config_mismatch_names_fields(self, tmp_path):
        self._saved(tmp_path)
        other = Learner(replace(FAST, batch_size=32))
        with pytest.raises(CheckpointError, match="batch_size"):
            load_training_checkpoint(tmp_path, other,
                                     np.random.default_rng(0))

    def test_round_trip_restores_everything(self, tmp_path):
        learner = Learner(FAST)
        rng = np.random.default_rng(FAST.seed)
        # Distinctive state: some transitions, one update burst, RNG draws.
        g = np.random.default_rng(1)
        for _ in range(70):
            learner.add_transition(g.normal(size=learner.global_dim),
                                   g.normal(size=learner.local_dim),
                                   0.1, 0.05,
                                   g.normal(size=learner.global_dim),
                                   g.normal(size=learner.local_dim))
        learner.update_burst()
        rng.random(5)
        save_training_checkpoint(
            tmp_path, learner=learner, rng=rng, episode=3, noise=0.07,
            history_dict=TrainingHistory(episode_rewards=[0.1, 0.2]
                                         ).__dict__.copy(),
            best_state=learner.td3.actor.get_state(),
            loop_state={"consecutive_failures": 1})

        learner2 = Learner(FAST)
        rng2 = np.random.default_rng(0)
        resume = load_training_checkpoint(tmp_path, learner2, rng2)
        assert resume.episode == 3
        assert resume.noise == pytest.approx(0.07)
        assert resume.history_dict["episode_rewards"] == [0.1, 0.2]
        assert resume.loop_state == {"consecutive_failures": 1}
        # Networks, replay and every RNG stream continue identically.
        for name in learner.td3.NETS:
            for a, b in zip(getattr(learner.td3, name).parameters(),
                            getattr(learner2.td3, name).parameters()):
                np.testing.assert_array_equal(a, b)
        assert len(learner2.replay) == len(learner.replay)
        a = learner.replay.sample(8)
        b = learner2.replay.sample(8)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
        assert rng.random() == rng2.random()
        assert learner.td3._rng.random() == learner2.td3._rng.random()
        assert learner.td3.actor_opt.lr == learner2.td3.actor_opt.lr
        assert learner.td3.actor_opt._t == learner2.td3.actor_opt._t
