"""Training drivers: scenario sampling, evaluation, short end-to-end runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, replace
from repro.core.policy import PolicyBundle, new_actor
from repro.errors import SimulationError
from repro.core.train import (
    CROSS_TRAFFIC_PROB,
    EVAL_SCENARIOS,
    _random_initial_cwnds,
    evaluate_friendliness,
    evaluate_policy,
    sample_training_scenario,
    train_astraea,
)

FAST = replace(TrainingConfig(), episodes=2, episode_duration_s=6.0,
               hidden_layers=(16, 16), batch_size=32,
               warmup_transitions=100, update_steps=2)


class TestScenarioSampling:
    def test_respects_table3_ranges(self):
        cfg = TrainingConfig()
        rng = np.random.default_rng(0)
        for _ in range(50):
            sc = sample_training_scenario(cfg, rng, cross_traffic=False)
            assert 40.0 <= sc.link.bandwidth_mbps <= 160.0
            assert 10.0 <= sc.link.rtt_ms <= 140.0
            assert 0.1 <= sc.link.buffer_bdp <= 16.0
            assert 2 <= len(sc.flows) <= 5

    def test_cross_traffic_sometimes_added(self):
        cfg = TrainingConfig()
        rng = np.random.default_rng(1)
        kinds = set()
        extra = 0
        for _ in range(200):
            sc = sample_training_scenario(cfg, rng, cross_traffic=True)
            competitors = [f for f in sc.flows if f.cc != "astraea"]
            extra += len(competitors)
            kinds |= {f.cc for f in competitors}
        # Roughly CROSS_TRAFFIC_PROB of episodes carry one competitor.
        assert 0.5 * CROSS_TRAFFIC_PROB < extra / 200 < 2 * CROSS_TRAFFIC_PROB
        assert "cubic" in kinds and "constant-rate" in kinds

    def test_deterministic_per_rng_state(self):
        cfg = TrainingConfig()
        a = sample_training_scenario(cfg, np.random.default_rng(5))
        b = sample_training_scenario(cfg, np.random.default_rng(5))
        assert a.link == b.link
        assert a.flows == b.flows

    def test_initial_cwnds_bounded(self):
        from repro.config import LinkConfig

        link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
        rng = np.random.default_rng(0)
        cwnds = _random_initial_cwnds(link, 50, rng)
        assert all(4.0 <= c <= 2.0 * 250.0 for c in cwnds)


class TestEvaluation:
    @pytest.fixture(scope="class")
    def bundle(self):
        return PolicyBundle(actor=new_actor(seed=2))

    def test_evaluate_policy_fields(self, bundle):
        metrics = evaluate_policy(bundle, duration_s=8.0, interval_s=2.0)
        assert set(metrics) == {"jain", "utilization", "rtt_ratio", "loss",
                                "score"}
        assert np.isfinite(metrics["score"])

    def test_evaluate_rtt_heterogeneous_path(self, bundle):
        metrics = evaluate_policy(bundle, duration_s=8.0,
                                  rtt_range_ms=(30.0, 120.0), n_flows=3)
        assert np.isfinite(metrics["utilization"])

    def test_eval_scenarios_include_heterogeneous(self):
        assert any("rtt_range_ms" in spec for spec in EVAL_SCENARIOS)

    def test_friendliness_ratio_positive(self, bundle):
        ratio = evaluate_friendliness(bundle, duration_s=8.0)
        assert ratio >= 0.0


class TestEndToEnd:
    def test_two_episode_training_produces_bundle(self):
        bundle, history = train_astraea(FAST, eval_every=1)
        assert bundle.actor.in_dim == 8 * FAST.history_length
        assert len(history.episode_rewards) == FAST.episodes
        assert history.wall_time_s > 0

    def test_local_critic_ablation_runs(self):
        bundle, _ = train_astraea(FAST, use_global=False, eval_every=10)
        assert bundle.metadata["use_global"] is False


class TestQuarantine:
    def test_failed_episode_is_quarantined_and_training_continues(
            self, monkeypatch):
        import repro.env.episode as episode_mod
        from repro.errors import TrainingInstabilityWarning

        cfg = replace(FAST, episodes=3)
        real = episode_mod.run_training_episode

        def flaky(*args, **kwargs):
            if kwargs.get("episode") == 1:
                raise SimulationError("injected mid-episode blow-up")
            return real(*args, **kwargs)

        monkeypatch.setattr(episode_mod, "run_training_episode", flaky)
        with pytest.warns(TrainingInstabilityWarning, match="seeds"):
            _, history = train_astraea(cfg, eval_every=100)
        assert history.failed_episodes == [1]
        assert len(history.episode_rewards) == 3
        assert np.isnan(history.episode_rewards[1])
        assert np.isfinite(history.episode_rewards[0])
        assert np.isfinite(history.episode_rewards[2])

    def test_consecutive_failure_budget_raises(self, monkeypatch):
        import repro.env.episode as episode_mod
        from repro.errors import (
            TrainingDivergedError,
            TrainingInstabilityWarning,
        )

        cfg = replace(FAST, episodes=10, max_consecutive_failures=2)

        def always_dies(*args, **kwargs):
            raise SimulationError("permanently broken environment")

        monkeypatch.setattr(episode_mod, "run_training_episode", always_dies)
        with pytest.warns(TrainingInstabilityWarning), \
                pytest.raises(TrainingDivergedError):
            train_astraea(cfg, eval_every=100)

    def test_fault_prob_zero_keeps_legacy_stream(self):
        cfg = replace(FAST, fault_prob=0.0)
        a = sample_training_scenario(cfg, np.random.default_rng(3))
        b = sample_training_scenario(FAST, np.random.default_rng(3))
        assert a.link == b.link and a.flows == b.flows
        assert a.faults is None

    def test_fault_prob_one_attaches_schedule(self):
        cfg = replace(FAST, fault_prob=1.0)
        sc = sample_training_scenario(cfg, np.random.default_rng(3))
        assert sc.faults is not None and sc.faults
        assert sc.faults.end_s <= cfg.episode_duration_s
