"""Test package."""
