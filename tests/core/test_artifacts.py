"""Model-artifact integrity and graceful degradation.

Regression suite for the corrupt-bundle incident: truncated/empty/
garbage/schema-invalid ``.npz`` files must raise *typed* errors at the
loader, degrade (with one warning) at the default-policy resolver, leave
every controller constructible, and be caught by ``repro models verify``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.policy as policy_mod
from repro.core.artifacts import (
    load_manifest,
    manifest_entry,
    update_manifest,
    validate_bundle_file,
    verify_models,
)
from repro.core.policy import (
    PolicyBundle,
    clear_policy_cache,
    load_default_policy,
    new_actor,
    resolve_policy,
)
from repro.errors import (
    CorruptModelError,
    ModelError,
    ModelFallbackWarning,
    ModelValidationError,
)
from repro.rl.nn import MLP


@pytest.fixture
def models_dir(tmp_path, monkeypatch):
    """A scratch models directory the loader and verifier resolve to."""
    directory = tmp_path / "models"
    directory.mkdir()
    monkeypatch.setattr(policy_mod, "MODELS_DIR", directory)
    clear_policy_cache()
    yield directory
    clear_policy_cache()


def make_bundle(seed: int = 0) -> PolicyBundle:
    return PolicyBundle(actor=new_actor(seed=seed))


def write_valid(path, seed: int = 0) -> PolicyBundle:
    bundle = make_bundle(seed)
    bundle.save(path)
    return bundle


def truncate(path, keep_fraction: float = 0.4) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])


class TestTypedLoaderErrors:
    """Satellite 1: stdlib exceptions never leak from PolicyBundle.load."""

    def test_truncated_zip_raises_corrupt(self, tmp_path):
        path = tmp_path / "b.npz"
        write_valid(path)
        truncate(path)
        with pytest.raises(CorruptModelError):
            PolicyBundle.load(path)

    def test_empty_file_raises_corrupt(self, tmp_path):
        path = tmp_path / "b.npz"
        path.write_bytes(b"")
        with pytest.raises(CorruptModelError):
            PolicyBundle.load(path)

    def test_non_zip_garbage_raises_corrupt(self, tmp_path):
        path = tmp_path / "b.npz"
        path.write_bytes(b"definitely not a zip archive" * 64)
        with pytest.raises(CorruptModelError):
            PolicyBundle.load(path)

    def test_corrupt_is_a_model_error(self, tmp_path):
        path = tmp_path / "b.npz"
        path.write_bytes(b"")
        with pytest.raises(ModelError):
            PolicyBundle.load(path)

    def test_missing_meta_raises_validation(self, tmp_path):
        path = tmp_path / "b.npz"
        np.savez(path, param_0=np.zeros((3, 3)))
        with pytest.raises(ModelValidationError):
            PolicyBundle.load(path)

    def test_unparsable_meta_raises_validation(self, tmp_path):
        path = tmp_path / "b.npz"
        np.savez(path, meta="{not json", param_0=np.zeros(3))
        with pytest.raises(ModelValidationError):
            PolicyBundle.load(path)

    @pytest.mark.parametrize("patch", [
        {"history": 0},                       # out-of-contract value
        {"output": "sigmoid"},                # unknown activation
        {"hidden": []},                       # empty architecture
        {"hidden": [256, -1]},                # negative width
        {"alpha": "fast"},                    # wrong type
        {"in_dim": 39},                       # != features x history
    ])
    def test_bad_meta_field_raises_validation(self, tmp_path, patch):
        path = tmp_path / "b.npz"
        write_valid(path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        meta.update(patch)
        np.savez(path, meta=json.dumps(meta), **arrays)
        with pytest.raises(ModelValidationError):
            PolicyBundle.load(path)

    def test_missing_meta_key_raises_validation(self, tmp_path):
        path = tmp_path / "b.npz"
        write_valid(path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        del meta["hidden"]
        np.savez(path, meta=json.dumps(meta), **arrays)
        with pytest.raises(ModelValidationError):
            PolicyBundle.load(path)

    def test_parameter_shape_mismatch_raises_validation(self, tmp_path):
        path = tmp_path / "b.npz"
        write_valid(path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        arrays["param_0"] = np.zeros((7, 7))   # wrong shape for layer 0
        np.savez(path, meta=json.dumps(meta), **arrays)
        with pytest.raises(ModelValidationError):
            PolicyBundle.load(path)

    def test_missing_parameter_array_raises_validation(self, tmp_path):
        path = tmp_path / "b.npz"
        write_valid(path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {k: data[k] for k in data.files if k != "meta"}
        del arrays["param_0"]                  # non-contiguous param_i
        np.savez(path, meta=json.dumps(meta), **arrays)
        with pytest.raises(ModelValidationError):
            PolicyBundle.load(path)


class TestFallbackChain:
    """Satellite 2: present-but-corrupt default bundles degrade, not crash."""

    def test_corrupt_default_falls_back_to_alternate(self, models_dir):
        default = models_dir / "astraea_pretrained.npz"
        write_valid(default)
        truncate(default)
        write_valid(models_dir / "astraea_alt_homogeneous.npz", seed=7)
        with pytest.warns(ModelFallbackWarning, match="astraea_pretrained"):
            bundle = load_default_policy("astraea")
        assert bundle is not None

    def test_whole_chain_corrupt_yields_none(self, models_dir):
        for name in ("astraea_pretrained.npz", "astraea_alt_homogeneous.npz"):
            write_valid(models_dir / name)
            truncate(models_dir / name)
        with pytest.warns(ModelFallbackWarning, match="reference"):
            assert load_default_policy("astraea") is None

    def test_absent_bundles_resolve_silently(self, models_dir):
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert load_default_policy("astraea") is None

    def test_warning_emitted_once_then_cached(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        truncate(path)
        import warnings as warnings_mod

        with pytest.warns(ModelFallbackWarning):
            load_default_policy("astraea")
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")    # cache hit: no re-warning
            assert load_default_policy("astraea") is None

    def test_repair_then_clear_cache_retries(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        truncate(path)
        with pytest.warns(ModelFallbackWarning):
            assert load_default_policy("astraea") is None
        write_valid(path)                          # repair the file
        assert load_default_policy("astraea") is None   # still cached
        clear_policy_cache()
        assert load_default_policy("astraea") is not None

    def test_explicit_path_still_raises(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        truncate(path)
        with pytest.raises(CorruptModelError):
            resolve_policy(str(path), "astraea")


class TestControllerDegradation:
    """Acceptance: controllers construct and drive over corrupt artifacts."""

    @pytest.fixture
    def corrupt_default(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        truncate(path)
        return models_dir

    def test_astraea_constructs_and_drives(self, corrupt_default):
        from repro.config import LinkConfig, ScenarioConfig
        from repro.core.astraea import AstraeaController
        from repro.env import run_scenario
        from repro.netsim import staggered_flows

        with pytest.warns(ModelFallbackWarning):
            controller = AstraeaController()
        assert controller.backend == "reference"
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=staggered_flows(2, cc="astraea", interval_s=1.0,
                                  duration_s=5.0),
            duration_s=6.0,
        )
        controllers = [controller, AstraeaController()]
        result = run_scenario(scenario, controllers=controllers)
        assert result.utilization() > 0.0

    def test_aurora_pretrained_degrades_to_behavioural(self, models_dir):
        from repro.cc.aurora import Aurora

        path = models_dir / "aurora_pretrained.npz"
        write_valid(path)
        truncate(path)
        with pytest.warns(ModelFallbackWarning):
            aurora = Aurora(policy="pretrained")
        assert aurora.backend == "behavioural"

    def test_orca_pretrained_degrades_to_behavioural(self, models_dir):
        from repro.cc.orca import Orca

        orca = Orca(policy="pretrained")      # no orca bundle shipped
        assert orca.backend == "behavioural"

    def test_service_refuses_to_run_without_actor(self, corrupt_default):
        from repro.errors import ServiceError
        from repro.service import default_service_policy

        with pytest.warns(ModelFallbackWarning):
            with pytest.raises(ServiceError, match="regenerate"):
                default_service_policy("astraea")


class TestManifestVerify:
    """The checksummed manifest and the `repro models verify` gate."""

    def stamp(self, models_dir, *names):
        update_manifest(
            {n: manifest_entry(models_dir / n) for n in names}, models_dir)

    def test_manifest_roundtrip(self, models_dir):
        write_valid(models_dir / "astraea_pretrained.npz")
        self.stamp(models_dir, "astraea_pretrained.npz")
        doc = load_manifest(models_dir)
        entry = doc["artifacts"]["astraea_pretrained.npz"]
        assert len(entry["sha256"]) == 64
        assert entry["size_bytes"] > 0

    def test_clean_state_verifies_ok(self, models_dir):
        write_valid(models_dir / "astraea_pretrained.npz")
        self.stamp(models_dir, "astraea_pretrained.npz")
        report = verify_models(models_dir)
        assert report.ok
        assert [c.status for c in report.checks] == ["ok"]

    def test_post_stamp_modification_is_checksum_mismatch(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        self.stamp(models_dir, "astraea_pretrained.npz")
        truncate(path)
        report = verify_models(models_dir)
        assert not report.ok
        assert report.failures[0].status == "checksum-mismatch"
        assert report.failures[0].name == "astraea_pretrained.npz"

    def test_corrupt_at_stamp_time_is_detected_structurally(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        truncate(path)
        self.stamp(models_dir, "astraea_pretrained.npz")  # digest matches...
        report = verify_models(models_dir)
        assert not report.ok                              # ...bytes don't load
        assert report.failures[0].status == "corrupt"

    def test_schema_invalid_bundle_reported_invalid(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        np.savez(path, meta=json.dumps({"bogus": True}), param_0=np.zeros(3))
        self.stamp(models_dir, "astraea_pretrained.npz")
        report = verify_models(models_dir)
        assert report.failures[0].status == "invalid"

    def test_missing_listed_file(self, models_dir):
        path = models_dir / "astraea_pretrained.npz"
        write_valid(path)
        self.stamp(models_dir, "astraea_pretrained.npz")
        path.unlink()
        report = verify_models(models_dir)
        assert report.failures[0].status == "missing"

    def test_unlisted_npz_is_flagged(self, models_dir):
        write_valid(models_dir / "astraea_pretrained.npz")
        self.stamp(models_dir, "astraea_pretrained.npz")
        write_valid(models_dir / "stray.npz")
        report = verify_models(models_dir)
        statuses = {c.name: c.status for c in report.checks}
        assert statuses["stray.npz"] == "unlisted"
        assert not report.ok

    def test_missing_manifest_fails_verification(self, models_dir):
        write_valid(models_dir / "astraea_pretrained.npz")
        report = verify_models(models_dir)
        assert not report.ok
        assert report.checks[0].name == "MANIFEST.json"

    def test_validate_bundle_file_on_non_zip(self, models_dir):
        path = models_dir / "x.npz"
        path.write_bytes(b"junk")
        with pytest.raises(CorruptModelError):
            validate_bundle_file(path)


class TestShippedManifest:
    """The real shipped artifacts must verify clean in every checkout."""

    def test_shipped_models_verify_ok(self):
        report = verify_models()
        assert report.ok, [f"{c.name}: {c.status} {c.detail}"
                           for c in report.failures]

    def test_every_default_bundle_is_listed(self):
        from repro.core.policy import FALLBACK_POLICY_NAMES

        listed = set(load_manifest()["artifacts"])
        for names in FALLBACK_POLICY_NAMES.values():
            for name in names:
                if (policy_mod.MODELS_DIR / name).exists():
                    assert name in listed


class TestRegeneration:
    """`repro models regenerate` restores a manifest-clean state."""

    def test_regenerated_bundle_roundtrips(self, models_dir):
        from repro.core.distill import regenerate_default_bundle

        path = models_dir / "astraea_alt_homogeneous.npz"
        bundle, report = regenerate_default_bundle(
            "astraea_alt_homogeneous.npz", path, epochs=5)
        loaded = PolicyBundle.load(path)
        x = np.random.default_rng(0).normal(size=(5, loaded.actor.in_dim))
        assert np.array_equal(bundle.actor.forward(x),
                              loaded.actor.forward(x))
        assert report["samples"] > 100
        assert loaded.scheme == "astraea"

    def test_unknown_recipe_raises(self):
        from repro.core.distill import regenerate_default_bundle

        with pytest.raises(ModelError):
            regenerate_default_bundle("carrier_pigeon.npz")

    def test_regeneration_is_deterministic(self, models_dir):
        from repro.core.distill import regenerate_default_bundle

        a = models_dir / "a.npz"
        b = models_dir / "b.npz"
        regenerate_default_bundle("astraea_alt_homogeneous.npz", a, epochs=3)
        regenerate_default_bundle("astraea_alt_homogeneous.npz", b, epochs=3)
        from repro.persist import sha256_file

        assert sha256_file(a) == sha256_file(b)


class TestRoundtripProperty:
    """Property: save -> load reproduces actor outputs bit-exactly."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_save_load_bit_exact(self, seed, tmp_path_factory):
        actor = MLP(8, (6, 4), 1, output="tanh", seed=seed)
        bundle = PolicyBundle(actor=actor, history=1, scheme="astraea")
        directory = tmp_path_factory.mktemp("roundtrip")
        path = bundle.save(directory / f"b{seed}.npz")
        loaded = PolicyBundle.load(path)
        x = np.random.default_rng(seed).normal(size=(16, 8))
        assert np.array_equal(actor.forward(x), loaded.actor.forward(x))
        assert loaded.history == bundle.history
        assert loaded.alpha == bundle.alpha
        assert loaded.scheme == bundle.scheme
