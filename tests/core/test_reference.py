"""The analytic reference policy: structure and end-to-end behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LinkConfig, ScenarioConfig
from repro.core.reference import AstraeaReference
from repro.env import run_scenario
from repro.netsim import staggered_flows
from tests.cc.test_base import make_stats


class TestPolicyStructure:
    """The Fig. 17 properties: monotone in delay, throughput-dependent
    zero crossing."""

    def make(self, cwnd=200.0):
        ref = AstraeaReference(slow_start=False)
        ref.cwnd = cwnd
        return ref

    def action_at(self, ref, rtt, cwnd=200.0, thr=5000.0, loss=0.0):
        return ref.action_for(make_stats(
            avg_rtt_s=rtt, min_rtt_s=0.030, cwnd_pkts=cwnd,
            throughput_pps=thr, lost_pkts=loss * 30.0, sent_pkts=30.0))

    def test_action_decreases_with_delay(self):
        ref = self.make(cwnd=60.0)
        ref._rtt_samples = [(0.0, 0.030)]
        actions = [self.action_at(ref, rtt, cwnd=60.0)
                   for rtt in (0.030, 0.0315, 0.033, 0.040, 0.080)]
        assert all(a >= b for a, b in zip(actions, actions[1:]))
        assert actions[0] > 0.0 > actions[-1]

    def test_zero_crossing_lower_for_larger_windows(self):
        """Higher-throughput flows reach equilibrium at lower delay — the
        mechanism that transfers bandwidth from fast to slow flows."""

        def equilibrium_delay(cwnd):
            ref = self.make(cwnd)
            ref._rtt_samples = [(0.0, 0.030)]
            for rtt in np.linspace(0.030, 0.120, 200):
                if self.action_at(ref, rtt, cwnd=cwnd) <= 0.0:
                    return rtt
            return np.inf

        assert equilibrium_delay(400.0) < equilibrium_delay(100.0)

    def test_heavy_loss_forces_backoff(self):
        ref = self.make()
        assert self.action_at(ref, 0.030, loss=0.10) < 0.0

    def test_stochastic_loss_tolerated(self):
        """Sub-1% loss (satellite, App. B.2) does not cause backoff."""
        ref = self.make(cwnd=10.0)
        assert self.action_at(ref, 0.030, cwnd=10.0, loss=0.005) > 0.0

    def test_bufferbloat_guard(self):
        ref = self.make()
        ref._rtt_samples = [(0.0, 0.030)]
        assert self.action_at(ref, 0.30) <= -0.5

    def test_periodic_drain(self):
        ref = self.make()
        actions = []
        for i in range(400):
            actions.append(ref.action_for(make_stats(
                time_s=(i + 1) * 0.03, avg_rtt_s=0.0312, min_rtt_s=0.030,
                cwnd_pkts=200.0)))
        # Every PROBE_INTERVAL_S a drain of PROBE_INTERVALS full-backoff
        # actions appears.
        assert actions.count(-1.0) >= 2 * AstraeaReference.PROBE_INTERVALS


class TestEndToEnd:
    def test_three_flows_converge_to_fairness(self):
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=staggered_flows(3, cc="astraea-ref", interval_s=10.0,
                                  duration_s=30.0),
            duration_s=50.0,
        )
        result = run_scenario(scenario)
        assert result.mean_jain() > 0.95
        assert result.utilization() > 0.9
        assert result.mean_loss_rate() < 0.001

    def test_single_flow_fills_link_with_low_delay(self, single_cubic_result,
                                                   short_link):
        from repro.config import FlowConfig

        scenario = ScenarioConfig(
            link=short_link,
            flows=(FlowConfig(cc="astraea-ref", start_s=0.0),),
            duration_s=15.0,
        )
        result = run_scenario(scenario)
        assert result.utilization() > 0.9
        # Queue target of ~5 pkts on 8333 pps: well under 1.2x base RTT.
        assert result.mean_rtt_s() < 0.030 * 1.3
