"""Topology helpers and max-min ideal shares (Fig. 11 analysis)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.netsim.topology import (
    TopologyConfig,
    parking_lot,
    parking_lot_ideal_shares,
)


class TestIdealShares:
    def test_link2_bottlenecked_regime(self):
        # 2 FS-1 flows: FS-2 stuck at link2 (10 each), FS-1 shares 80.
        fs1, fs2 = parking_lot_ideal_shares(2)
        assert fs2 == pytest.approx(10.0)
        assert fs1 == pytest.approx(40.0)

    def test_common_bottleneck_regime(self):
        # Many FS-1 flows: link1 is the common bottleneck.
        fs1, fs2 = parking_lot_ideal_shares(18)
        assert fs1 == pytest.approx(100.0 / 20.0)
        assert fs2 == pytest.approx(100.0 / 20.0)

    def test_crossover_point(self):
        # Crossover where 100/(k+2) == 10 -> k == 8.
        fs1, fs2 = parking_lot_ideal_shares(8)
        assert fs1 == pytest.approx(fs2)
        assert fs1 == pytest.approx(10.0)

    def test_monotone_in_fs1_count(self):
        prev = float("inf")
        for k in range(1, 20):
            fs1, _ = parking_lot_ideal_shares(k)
            assert fs1 <= prev + 1e-9
            prev = fs1

    def test_rejects_empty_sets(self):
        with pytest.raises(ConfigError):
            parking_lot_ideal_shares(0)


class TestParkingLot:
    def test_structure(self):
        topo = parking_lot(n_fs1=3, n_fs2=2, cc="cubic")
        assert len(topo.flows) == 5
        assert topo.paths[:3] == (("link1",),) * 3
        assert topo.paths[3:] == (("link1", "link2"),) * 2
        assert topo.links[0].bandwidth_mbps == 100.0
        assert topo.links[1].bandwidth_mbps == 20.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            parking_lot(0)

    def test_config_validation(self):
        from repro.config import FlowConfig, LinkConfig

        with pytest.raises(ConfigError):
            TopologyConfig(links=(LinkConfig(name="a"),),
                           flows=(FlowConfig(),),
                           paths=(("missing",),))
        with pytest.raises(ConfigError):
            TopologyConfig(links=(LinkConfig(name="a"),),
                           flows=(FlowConfig(), FlowConfig()),
                           paths=(("a",),))
