"""Fluid-vs-packet fidelity: the substitution argument of DESIGN.md §2.

The fluid model must reproduce packet-level FIFO behaviour on the
statistics the controllers actually consume: per-flow throughput shares,
RTT inflation under standing queues, and full-capacity delivery under
overload.
"""

from __future__ import annotations

import pytest

from repro.config import LinkConfig
from repro.netsim import FluidNetwork, PacketNetwork


LINK = LinkConfig(bandwidth_mbps=12.0, rtt_ms=30.0, buffer_bdp=4.0)


def run_fluid(cwnds, seconds=6.0):
    net = FluidNetwork(LINK)
    fids = [net.add_flow(base_rtt_s=0.030, cwnd_pkts=c) for c in cwnds]
    for _ in range(int(seconds / 0.002)):
        net.advance(0.002)
    return net, fids


def run_packet(cwnds, seconds=6.0):
    net = PacketNetwork(LINK, seed=0)
    fids = [net.add_flow(base_rtt_s=0.030, cwnd=c) for c in cwnds]
    net.run(seconds)
    return net, fids


class TestFidelity:
    def test_single_flow_underload_rates_match(self):
        fluid, [ff] = run_fluid([10.0])
        packet, [pf] = run_packet([10.0])
        fluid_rate = fluid.flow_goodput_pps(ff)
        packet_rate = packet.stats(pf).delivered / 6.0
        assert fluid_rate == pytest.approx(packet_rate, rel=0.07)

    def test_overload_shares_match(self):
        cwnds = [60.0, 20.0]
        fluid, ffids = run_fluid(cwnds)
        packet, pfids = run_packet(cwnds)
        fluid_shares = [fluid.flow_goodput_pps(f) for f in ffids]
        packet_shares = [packet.stats(f).delivered / 6.0 for f in pfids]
        fluid_ratio = fluid_shares[0] / fluid_shares[1]
        packet_ratio = packet_shares[0] / packet_shares[1]
        assert fluid_ratio == pytest.approx(packet_ratio, rel=0.15)

    def test_rtt_inflation_matches(self):
        fluid, [ff] = run_fluid([60.0])
        packet, [pf] = run_packet([60.0])
        assert fluid.flow_rtt_s(ff) == pytest.approx(
            packet.stats(pf).avg_rtt_s, rel=0.12)

    def test_aggregate_at_capacity_matches(self):
        fluid, ffids = run_fluid([80.0, 80.0])
        packet, pfids = run_packet([80.0, 80.0])
        fluid_total = sum(fluid.flow_goodput_pps(f) for f in ffids)
        packet_total = sum(packet.stats(f).delivered for f in pfids) / 6.0
        assert fluid_total == pytest.approx(packet_total, rel=0.07)
