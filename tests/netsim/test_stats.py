"""Per-flow monitors: observation delay, sRTT smoothing, MTP aggregation."""

from __future__ import annotations

import pytest

from repro.netsim.stats import FlowMonitor, MtpStats, TickSample


def sample(time, avail_at, rtt=0.03, sent=10.0, delivered=9.0, lost=1.0,
           dt=0.002):
    return TickSample(time=time, avail_at=avail_at, dt=dt, rtt_s=rtt,
                      sent_pkts=sent, delivered_pkts=delivered,
                      lost_pkts=lost)


class TestFlowMonitor:
    def test_delayed_samples_invisible(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        mon.push(sample(time=0.0, avail_at=1.0))
        stats = mon.collect(0.5, cwnd_pkts=10, pacing_pps=0,
                            pkts_in_flight=5)
        assert stats.sent_pkts == 0.0
        assert stats.throughput_pps == 0.0
        # Once time passes availability, the sample is aggregated.
        stats = mon.collect(1.5, cwnd_pkts=10, pacing_pps=0,
                            pkts_in_flight=5)
        assert stats.sent_pkts == 10.0
        assert stats.delivered_pkts == 9.0

    def test_throughput_is_rate_over_observed_window(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        for i in range(10):
            mon.push(sample(time=i * 0.002, avail_at=0.0, delivered=2.0,
                            lost=0.0))
        stats = mon.collect(0.03, cwnd_pkts=10, pacing_pps=0,
                            pkts_in_flight=5)
        # 20 packets over 10 ticks of 2 ms = 1000 pkt/s.
        assert stats.throughput_pps == pytest.approx(1000.0)

    def test_srtt_converges_to_observed(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        for _ in range(200):
            mon.observe_rtt(0.06)
        assert mon.srtt_s == pytest.approx(0.06, rel=0.01)

    def test_empty_collection_reuses_srtt(self):
        mon = FlowMonitor(base_rtt_s=0.05)
        stats = mon.collect(1.0, cwnd_pkts=10, pacing_pps=100,
                            pkts_in_flight=3)
        assert stats.avg_rtt_s == pytest.approx(0.05)
        assert stats.min_rtt_s == pytest.approx(0.05)


class TestMtpStats:
    def make(self, **kwargs):
        defaults = dict(time_s=1.0, duration_s=0.03, throughput_pps=1000.0,
                        avg_rtt_s=0.04, min_rtt_s=0.03, sent_pkts=40.0,
                        delivered_pkts=30.0, lost_pkts=10.0,
                        pkts_in_flight=20.0, cwnd_pkts=25.0,
                        pacing_pps=1200.0, srtt_s=0.04)
        defaults.update(kwargs)
        return MtpStats(**defaults)

    def test_loss_rate(self):
        assert self.make().loss_rate == pytest.approx(0.25)
        assert self.make(sent_pkts=0.0).loss_rate == 0.0

    def test_loss_rate_capped_at_one(self):
        assert self.make(lost_pkts=100.0, sent_pkts=40.0).loss_rate == 1.0

    def test_throughput_mbps(self):
        # 1000 pkt/s * 12000 bits = 12 Mbps.
        assert self.make().throughput_mbps == pytest.approx(12.0)

    def test_loss_pps(self):
        assert self.make().loss_pps == pytest.approx(10.0 / 0.03)
        assert self.make(duration_s=0.0).loss_pps == 0.0
