"""Per-flow monitors: observation delay, sRTT smoothing, MTP aggregation."""

from __future__ import annotations

import pytest

from repro.netsim.stats import FlowMonitor, MtpStats, TickSample


def sample(time, avail_at, rtt=0.03, sent=10.0, delivered=9.0, lost=1.0,
           dt=0.002):
    return TickSample(time=time, avail_at=avail_at, dt=dt, rtt_s=rtt,
                      sent_pkts=sent, delivered_pkts=delivered,
                      lost_pkts=lost)


class TestFlowMonitor:
    def test_delayed_samples_invisible(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        mon.push(sample(time=0.0, avail_at=1.0))
        stats = mon.collect(0.5, cwnd_pkts=10, pacing_pps=0,
                            pkts_in_flight=5)
        assert stats.sent_pkts == 0.0
        assert stats.throughput_pps == 0.0
        # Once time passes availability, the sample is aggregated.
        stats = mon.collect(1.5, cwnd_pkts=10, pacing_pps=0,
                            pkts_in_flight=5)
        assert stats.sent_pkts == 10.0
        assert stats.delivered_pkts == 9.0

    def test_throughput_is_rate_over_observed_window(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        for i in range(10):
            mon.push(sample(time=i * 0.002, avail_at=0.0, delivered=2.0,
                            lost=0.0))
        stats = mon.collect(0.03, cwnd_pkts=10, pacing_pps=0,
                            pkts_in_flight=5)
        # 20 packets over 10 ticks of 2 ms = 1000 pkt/s.
        assert stats.throughput_pps == pytest.approx(1000.0)

    def test_srtt_converges_to_observed(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        for _ in range(200):
            mon.observe_rtt(0.06)
        assert mon.srtt_s == pytest.approx(0.06, rel=0.01)

    def test_empty_collection_reuses_srtt(self):
        mon = FlowMonitor(base_rtt_s=0.05)
        stats = mon.collect(1.0, cwnd_pkts=10, pacing_pps=100,
                            pkts_in_flight=3)
        assert stats.avg_rtt_s == pytest.approx(0.05)
        assert stats.min_rtt_s == pytest.approx(0.05)


class TestMtpStats:
    def make(self, **kwargs):
        defaults = dict(time_s=1.0, duration_s=0.03, throughput_pps=1000.0,
                        avg_rtt_s=0.04, min_rtt_s=0.03, sent_pkts=40.0,
                        delivered_pkts=30.0, lost_pkts=10.0,
                        pkts_in_flight=20.0, cwnd_pkts=25.0,
                        pacing_pps=1200.0, srtt_s=0.04)
        defaults.update(kwargs)
        return MtpStats(**defaults)

    def test_loss_rate(self):
        assert self.make().loss_rate == pytest.approx(0.25)
        assert self.make(sent_pkts=0.0).loss_rate == 0.0

    def test_loss_rate_capped_at_one(self):
        assert self.make(lost_pkts=100.0, sent_pkts=40.0).loss_rate == 1.0

    def test_throughput_mbps(self):
        # 1000 pkt/s * 12000 bits = 12 Mbps.
        assert self.make().throughput_mbps == pytest.approx(12.0)

    def test_loss_pps(self):
        assert self.make().loss_pps == pytest.approx(10.0 / 0.03)
        assert self.make(duration_s=0.0).loss_pps == 0.0


class TestRingBuffer:
    """Growable-ring internals: growth, compaction, partial drains, and
    equivalence of the three push entry points."""

    def collect(self, mon, now):
        return mon.collect(now, cwnd_pkts=10, pacing_pps=0, pkts_in_flight=0)

    def test_growth_past_initial_capacity(self):
        from repro.netsim.stats import _INITIAL_CAPACITY

        mon = FlowMonitor(base_rtt_s=0.03)
        n = _INITIAL_CAPACITY * 3 + 7
        for i in range(n):
            mon.push(sample(time=i * 0.002, avail_at=i * 0.002))
        assert len(mon) == n
        stats = self.collect(mon, now=n * 0.002)
        assert stats.sent_pkts == pytest.approx(10.0 * n)
        assert len(mon) == 0

    def test_partial_drain_then_refill_compacts(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        # Fill, drain half, then push enough that the live region must be
        # shifted to the front rather than the buffer regrown.
        for i in range(60):
            mon.push(sample(time=i * 1.0, avail_at=i * 1.0))
        stats = self.collect(mon, now=29.5)
        assert stats.sent_pkts == pytest.approx(300.0)
        assert len(mon) == 30
        for i in range(60, 90):
            mon.push(sample(time=i * 1.0, avail_at=i * 1.0))
        assert len(mon) == 60
        stats = self.collect(mon, now=1000.0)
        assert stats.sent_pkts == pytest.approx(600.0)

    def test_partial_drain_stops_at_first_unobservable(self):
        # Availability is NOT monotone here: a later sample becomes
        # observable before an earlier one.  The drain must stop at the
        # first unobservable sample (prefix semantics), leaving the
        # already-observable later one queued.
        mon = FlowMonitor(base_rtt_s=0.03)
        mon.push(sample(time=0.0, avail_at=1.0, sent=1.0))
        mon.push(sample(time=0.1, avail_at=5.0, sent=2.0))
        mon.push(sample(time=0.2, avail_at=2.0, sent=4.0))
        stats = self.collect(mon, now=2.5)
        assert stats.sent_pkts == 1.0  # only the prefix
        assert len(mon) == 2
        stats = self.collect(mon, now=5.0)
        assert stats.sent_pkts == 6.0
        assert len(mon) == 0

    def test_push_entry_points_equivalent(self):
        import numpy as np

        samples = [sample(time=i * 0.002, avail_at=i * 0.002 + 0.03,
                          rtt=0.03 + 0.001 * i, sent=float(i),
                          delivered=float(i) * 0.9, lost=float(i) * 0.1)
                   for i in range(20)]
        a = FlowMonitor(base_rtt_s=0.03)
        for s in samples:
            a.push(s)
        b = FlowMonitor(base_rtt_s=0.03)
        b.push_block(
            times=np.array([s.time for s in samples]),
            avail_at=np.array([s.avail_at for s in samples]),
            dt=0.002,
            rtt_s=np.array([s.rtt_s for s in samples]),
            sent_pkts=np.array([s.sent_pkts for s in samples]),
            delivered_pkts=np.array([s.delivered_pkts for s in samples]),
            lost_pkts=np.array([s.lost_pkts for s in samples]),
            marked_pkts=np.array([s.marked_pkts for s in samples]),
        )
        c = FlowMonitor(base_rtt_s=0.03)
        rows = np.array([[s.time, s.avail_at, s.dt, s.rtt_s, s.sent_pkts,
                          s.delivered_pkts, s.lost_pkts, s.marked_pkts]
                         for s in samples])
        c.push_rows(rows)
        assert a.pending_samples() == b.pending_samples()
        assert a.pending_samples() == c.pending_samples()
        sa = self.collect(a, now=1.0)
        sb = self.collect(b, now=1.0)
        sc = self.collect(c, now=1.0)
        assert sa == sb == sc

    def test_pending_property_compat(self):
        # Diagnostics peek at ``_pending``; it must mirror the ring.
        mon = FlowMonitor(base_rtt_s=0.03)
        mon.push(sample(time=0.5, avail_at=0.6))
        view = list(mon._pending)
        assert len(view) == 1
        assert view[0].time == 0.5
        assert view[0].avail_at == 0.6

    def test_srtt_fold_is_sequential(self):
        # The EWMA is order-dependent: folding samples one at a time must
        # give the same srtt as a blockwise collect.
        rtts = [0.03, 0.08, 0.02, 0.05, 0.04]
        a = FlowMonitor(base_rtt_s=0.03)
        for i, r in enumerate(rtts):
            a.push(sample(time=i * 0.002, avail_at=0.0, rtt=r))
            self.collect(a, now=0.1 + i)  # drain one sample at a time
        b = FlowMonitor(base_rtt_s=0.03)
        for i, r in enumerate(rtts):
            b.push(sample(time=i * 0.002, avail_at=0.0, rtt=r))
        self.collect(b, now=10.0)
        assert a.srtt_s == b.srtt_s

    def test_full_drain_resets_to_sorted(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        mon.push(sample(time=0.0, avail_at=2.0))
        mon.push(sample(time=0.1, avail_at=1.0))  # breaks monotonicity
        assert not mon._avail_sorted
        self.collect(mon, now=5.0)
        assert len(mon) == 0
        assert mon._avail_sorted
        mon.push(sample(time=0.2, avail_at=3.0))
        assert mon._avail_sorted

    def test_capacity_bounded_under_repeated_collect_cycles(self):
        from repro.netsim.stats import _INITIAL_CAPACITY

        mon = FlowMonitor(base_rtt_s=0.03)
        # A long run: many push-then-collect cycles of a steady 16
        # samples per MTP.  Peak capacity must stay proportional to the
        # per-cycle live size, never to the total sample history.
        peak = 0
        for cycle in range(200):
            base = cycle * 16
            for i in range(16):
                t = (base + i) * 0.002
                mon.push(sample(time=t, avail_at=t))
            peak = max(peak, mon.capacity)
            self.collect(mon, now=(base + 16) * 0.002)
            peak = max(peak, mon.capacity)
        assert peak <= _INITIAL_CAPACITY

    def test_capacity_shrinks_after_burst(self):
        from repro.netsim.stats import _INITIAL_CAPACITY

        mon = FlowMonitor(base_rtt_s=0.03)
        # A delay spike piles up far more undrained samples than steady
        # state ever holds...
        n = _INITIAL_CAPACITY * 16
        for i in range(n):
            mon.push(sample(time=i * 0.002, avail_at=i * 0.002))
        assert mon.capacity >= n
        stats = self.collect(mon, now=n * 0.002)
        assert stats.sent_pkts == pytest.approx(10.0 * n)
        # ...and once the burst drains, the buffer is released instead of
        # holding the high-water mark for the rest of the run.
        assert mon.capacity == _INITIAL_CAPACITY

    def test_partial_drain_compacts_consumed_prefix(self):
        mon = FlowMonitor(base_rtt_s=0.03)
        for i in range(40):
            mon.push(sample(time=i * 1.0, avail_at=i * 1.0))
        self.collect(mon, now=29.5)
        assert len(mon) == 10
        # The consumed prefix was compacted away immediately: the live
        # region sits at the front of the buffer.
        assert mon._start == 0
        assert mon._end == 10

    def test_compaction_preserves_stats(self):
        a = FlowMonitor(base_rtt_s=0.03)
        b = FlowMonitor(base_rtt_s=0.03)
        rtts = [0.03, 0.05, 0.02, 0.08, 0.04, 0.06]
        for i, r in enumerate(rtts):
            a.push(sample(time=i * 1.0, avail_at=i * 1.0, rtt=r))
            b.push(sample(time=i * 1.0, avail_at=i * 1.0, rtt=r))
        # a: two partial drains (compaction in between); b: one full one.
        s1 = self.collect(a, now=2.5)
        s2 = self.collect(a, now=100.0)
        sb = self.collect(b, now=100.0)
        assert a.srtt_s == b.srtt_s
        assert s1.sent_pkts + s2.sent_pkts == sb.sent_pkts
        assert s1.delivered_pkts + s2.delivered_pkts == sb.delivered_pkts
