"""Fluid engine invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LinkConfig
from repro.errors import SimulationError
from repro.netsim import FluidNetwork
from repro.netsim.traces import StepTrace
from repro.units import mbps_to_pps, pps_to_mbps


def make_net(bw=100.0, rtt=30.0, buffer_bdp=1.0, loss=0.0, **kwargs):
    link = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=buffer_bdp,
                      random_loss=loss)
    return FluidNetwork(link, **kwargs), link


def run(net, seconds, dt=0.002):
    for _ in range(int(seconds / dt)):
        net.advance(dt)


class TestSingleFlow:
    def test_underload_passes_through(self):
        net, link = make_net()
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=100.0)  # < BDP of 250
        run(net, 2.0)
        assert net.queue_pkts() == pytest.approx(0.0, abs=1e-6)
        assert net.flow_rtt_s(f) == pytest.approx(0.030)
        assert pps_to_mbps(net.flow_goodput_pps(f)) == pytest.approx(40.0,
                                                                     rel=0.01)

    def test_overload_builds_queue_and_inflates_rtt(self):
        net, link = make_net()
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=400.0)  # 1.6x BDP
        run(net, 3.0)
        # Equilibrium: inflight = cwnd => queue = cwnd - BDP = 150 pkts.
        assert net.queue_pkts() == pytest.approx(150.0, rel=0.02)
        assert net.flow_rtt_s(f) == pytest.approx(400.0 / mbps_to_pps(100.0),
                                                  rel=0.02)
        assert pps_to_mbps(net.flow_goodput_pps(f)) == pytest.approx(100.0,
                                                                     rel=0.01)

    def test_buffer_overflow_drops(self):
        net, link = make_net(buffer_bdp=0.5)  # 125 packets
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=10_000.0)
        run(net, 2.0)
        assert net.queue_pkts() <= link.buffer_size_packets + 1e-6
        assert net.link_drops_pkts() > 0
        # Delivered rate still equals capacity.
        assert pps_to_mbps(net.flow_goodput_pps(f)) == pytest.approx(100.0,
                                                                     rel=0.02)

    def test_random_loss_reduces_goodput(self):
        net, _ = make_net(loss=0.05)
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=100.0)
        run(net, 2.0)
        # 40 Mbps offered, 5% dropped on the wire.
        assert pps_to_mbps(net.flow_goodput_pps(f)) == pytest.approx(38.0,
                                                                     rel=0.02)

    def test_pacing_caps_rate(self):
        net, _ = make_net()
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=1000.0,
                         pacing_pps=mbps_to_pps(30.0))
        run(net, 2.0)
        assert pps_to_mbps(net.flow_rate_pps(f)) == pytest.approx(30.0,
                                                                  rel=0.01)


class TestMultiFlow:
    def test_proportional_sharing(self):
        net, _ = make_net()
        f1 = net.add_flow(base_rtt_s=0.030, cwnd_pkts=300.0)
        f2 = net.add_flow(base_rtt_s=0.030, cwnd_pkts=100.0)
        run(net, 5.0)
        g1 = net.flow_goodput_pps(f1)
        g2 = net.flow_goodput_pps(f2)
        assert g1 / g2 == pytest.approx(3.0, rel=0.02)
        assert pps_to_mbps(g1 + g2) == pytest.approx(100.0, rel=0.01)

    def test_conservation_of_packets(self):
        net, _ = make_net(buffer_bdp=0.5)
        fids = [net.add_flow(base_rtt_s=0.030, cwnd_pkts=c)
                for c in (200.0, 300.0)]
        run(net, 4.0)
        total_sent = sum(net._flows[f].total_sent_pkts for f in fids)
        total_delivered = sum(net._flows[f].total_delivered_pkts
                              for f in fids)
        total_lost = sum(net._flows[f].total_lost_pkts for f in fids)
        queued = net.queue_pkts()
        assert total_sent == pytest.approx(
            total_delivered + total_lost + queued, rel=1e-6)

    def test_flow_removal_frees_capacity(self):
        net, _ = make_net()
        f1 = net.add_flow(base_rtt_s=0.030, cwnd_pkts=260.0)
        f2 = net.add_flow(base_rtt_s=0.030, cwnd_pkts=260.0)
        run(net, 3.0)
        before = net.flow_goodput_pps(f1)
        net.remove_flow(f2)
        run(net, 3.0)
        after = net.flow_goodput_pps(f1)
        assert after > before * 1.5

    def test_idle_queue_drains(self):
        net, _ = make_net()
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=400.0)
        run(net, 2.0)
        net.remove_flow(f)
        run(net, 1.0)
        assert net.queue_pkts() == pytest.approx(0.0, abs=1e-9)


class TestMultiLink:
    def test_second_bottleneck_caps_flow(self):
        links = [LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=4.0, name="l1"),
                 LinkConfig(bandwidth_mbps=20.0, rtt_ms=30.0,
                            buffer_bdp=20.0, name="l2")]
        net = FluidNetwork(links)
        short = net.add_flow(base_rtt_s=0.030, cwnd_pkts=2000.0, path=["l1"])
        long = net.add_flow(base_rtt_s=0.030, cwnd_pkts=2000.0,
                            path=["l1", "l2"])
        run(net, 6.0)
        g_long = pps_to_mbps(net.flow_goodput_pps(long))
        g_short = pps_to_mbps(net.flow_goodput_pps(short))
        assert g_long <= 20.0 * 1.05
        assert g_short + g_long == pytest.approx(100.0, rel=0.05)

    def test_unknown_link_in_path(self):
        net, _ = make_net()
        with pytest.raises(SimulationError):
            net.add_flow(base_rtt_s=0.03, path=["nope"])


class TestAddFlowsBatch:
    def _spy_rebuilds(self, net):
        calls = []
        orig = net._rebuild_soa

        def spy():
            calls.append(1)
            orig()

        net._rebuild_soa = spy
        return calls

    def test_one_rebuild_per_batch(self):
        net, _ = make_net()
        calls = self._spy_rebuilds(net)
        fids = net.add_flows([{"base_rtt_s": 0.03}] * 50)
        assert len(fids) == 50
        assert len(calls) == 1  # not one per flow

    def test_empty_batch_no_rebuild(self):
        net, _ = make_net()
        calls = self._spy_rebuilds(net)
        assert net.add_flows([]) == []
        assert calls == []

    def test_batch_equivalent_to_sequential(self):
        specs = [{"base_rtt_s": 0.02 + 0.005 * i, "cwnd_pkts": 10.0 + i}
                 for i in range(8)]
        batch, _ = make_net()
        seq, _ = make_net()
        fids_b = batch.add_flows(specs)
        fids_s = [seq.add_flow(**spec) for spec in specs]
        assert fids_b == fids_s
        run(batch, 2.0)
        run(seq, 2.0)
        for fb, fs in zip(fids_b, fids_s):
            assert batch.flow_goodput_pps(fb) == seq.flow_goodput_pps(fs)
            assert batch.flow_rtt_s(fb) == seq.flow_rtt_s(fs)
            assert batch.flow_delivered_pkts(fb) == \
                seq.flow_delivered_pkts(fs)

    def test_bad_spec_leaves_network_unchanged(self):
        net, _ = make_net()
        before = net.flow_ids
        with pytest.raises(SimulationError):
            net.add_flows([{"base_rtt_s": 0.03},
                           {"base_rtt_s": -1.0}])
        with pytest.raises(SimulationError):
            net.add_flows([{"base_rtt_s": 0.03},
                           {"base_rtt_s": 0.03, "path": ["nope"]}])
        with pytest.raises(SimulationError):
            net.add_flows([{"base_rtt_s": 0.03, "bogus": 1}])
        with pytest.raises(SimulationError):
            net.add_flows([{}])
        with pytest.raises(SimulationError):
            net.add_flows([(0.03,)])
        assert net.flow_ids == before

    def test_delivered_totals_accessor(self):
        net, _ = make_net()
        (fid,) = net.add_flows([{"base_rtt_s": 0.03, "cwnd_pkts": 100.0}])
        assert net.flow_delivered_pkts(fid) == 0.0
        run(net, 1.0)
        assert net.flow_delivered_pkts(fid) > 0.0
        with pytest.raises(SimulationError):
            net.flow_delivered_pkts(fid + 1)


class TestTraceDriven:
    def test_capacity_step_changes_throughput(self):
        link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
        trace = StepTrace([(0.0, 100.0), (2.0, 25.0)])
        net = FluidNetwork(link, traces={"bottleneck": trace})
        f = net.add_flow(base_rtt_s=0.030, cwnd_pkts=200.0)
        run(net, 1.5)
        high = pps_to_mbps(net.flow_goodput_pps(f))
        run(net, 3.0)
        low = pps_to_mbps(net.flow_goodput_pps(f))
        # cwnd 200 over 30 ms base RTT = 80 Mbps, under the 100 Mbps cap.
        assert high == pytest.approx(80.0, rel=0.05)
        assert low == pytest.approx(25.0, rel=0.05)


class TestValidation:
    def test_rejects_nonpositive_tick(self):
        net, _ = make_net()
        with pytest.raises(SimulationError):
            net.advance(0.0)

    def test_rejects_bad_rtt(self):
        net, _ = make_net()
        with pytest.raises(SimulationError):
            net.add_flow(base_rtt_s=0.0)

    def test_rejects_unknown_flow(self):
        net, _ = make_net()
        with pytest.raises(SimulationError):
            net.set_cwnd(99, 10.0)

    def test_rejects_nonfinite_cwnd(self):
        net, _ = make_net()
        f = net.add_flow(base_rtt_s=0.03)
        with pytest.raises(SimulationError):
            net.set_cwnd(f, float("nan"))

    def test_rejects_duplicate_link_names(self):
        link = LinkConfig(name="x")
        with pytest.raises(SimulationError):
            FluidNetwork([link, link])

    def test_min_cwnd_floor(self):
        net, _ = make_net()
        f = net.add_flow(base_rtt_s=0.03)
        net.set_cwnd(f, 0.001)
        assert net.cwnd(f) >= 2.0


@settings(max_examples=20, deadline=None)
@given(cwnds=st.lists(st.floats(min_value=10.0, max_value=2000.0),
                      min_size=1, max_size=5))
def test_property_aggregate_never_exceeds_capacity(cwnds):
    """Delivered aggregate goodput never exceeds link capacity."""
    net, _ = make_net()
    fids = [net.add_flow(base_rtt_s=0.030, cwnd_pkts=c) for c in cwnds]
    run(net, 2.0, dt=0.002)
    total = sum(net.flow_goodput_pps(f) for f in fids)
    assert total <= mbps_to_pps(100.0) * 1.001


@settings(max_examples=20, deadline=None)
@given(cwnd=st.floats(min_value=4.0, max_value=5000.0),
       rtt_ms=st.floats(min_value=5.0, max_value=300.0))
def test_property_queue_bounded_by_buffer(cwnd, rtt_ms):
    net, link = make_net(rtt=rtt_ms, buffer_bdp=0.7)
    net.add_flow(base_rtt_s=rtt_ms / 1e3, cwnd_pkts=cwnd)
    run(net, 1.0, dt=0.002)
    assert net.queue_pkts() <= link.buffer_size_packets + 1e-6
