"""Test package."""
