"""Differential suite pinning the vectorized fast path to the reference.

The contract (docs/architecture.md §7): for any scenario — qdiscs,
faults, multi-link paths, pacing caps, mid-run flow churn — the block
kernel produces the same trajectory as the per-tick reference
implementation with per-tick per-flow deltas <= 1e-9.  Most cases here
are in fact bitwise identical; the tolerance absorbs only summation-order
differences that BLAS may introduce on some platforms.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LinkConfig, ScenarioConfig
from repro.env.multiflow import run_scenario
from repro.errors import SimulationError
from repro.netsim.faults import (
    BandwidthFlap,
    Blackout,
    DelaySpike,
    FaultSchedule,
    LossBurst,
    ReorderWindow,
)
from repro.netsim.fluid import FluidNetwork, slowpath_enabled
from repro.netsim.flowgen import staggered_flows

TOL = 1e-9
DT = 0.002

ALL_FAULTS = FaultSchedule([
    Blackout(start_s=0.3, duration_s=0.1),
    BandwidthFlap(start_s=0.6, duration_s=0.2, factor=0.4),
    LossBurst(start_s=1.0, duration_s=0.2, loss_rate=0.15),
    DelaySpike(start_s=1.4, duration_s=0.2, extra_ms=30.0),
    ReorderWindow(start_s=1.8, duration_s=0.2, rate=0.1),
])


def drain_all(net: FluidNetwork) -> dict:
    """Collect every monitor and return comparable MTP stats per flow."""
    out = {}
    for fid in net.flow_ids:
        s = net.monitor(fid).collect(net.now, net.cwnd(fid), 0.0, 0.0)
        out[fid] = (s.throughput_pps, s.avg_rtt_s, s.min_rtt_s,
                    s.sent_pkts, s.delivered_pkts, s.lost_pkts,
                    s.marked_pkts, s.srtt_s)
    return out


def assert_networks_equal(ref: FluidNetwork, fast: FluidNetwork,
                          tol: float = TOL) -> None:
    """Per-tick per-flow pending samples and link state must agree."""
    assert ref.now == pytest.approx(fast.now, abs=1e-12)
    assert sorted(ref.flow_ids) == sorted(fast.flow_ids)
    for fid in ref.flow_ids:
        pa = ref.monitor(fid).pending_samples()
        pb = fast.monitor(fid).pending_samples()
        assert len(pa) == len(pb)
        for a, b in zip(pa, pb):
            assert a.time == pytest.approx(b.time, abs=1e-12)
            assert a.avail_at == pytest.approx(b.avail_at, abs=tol)
            assert a.rtt_s == pytest.approx(b.rtt_s, abs=tol)
            assert a.sent_pkts == pytest.approx(b.sent_pkts, abs=tol)
            assert a.delivered_pkts == pytest.approx(b.delivered_pkts,
                                                     abs=tol)
            assert a.lost_pkts == pytest.approx(b.lost_pkts, abs=tol)
            assert a.marked_pkts == pytest.approx(b.marked_pkts, abs=tol)


def run_pair(build, script):
    """Run ``script(net, fids)`` on a reference and a fast engine."""
    ref, rfids = build(slowpath=True)
    fast, ffids = build(slowpath=False)
    script(ref, rfids, per_tick=True)
    script(fast, ffids, per_tick=False)
    return ref, fast


def advance(net: FluidNetwork, n_ticks: int, per_tick: bool,
            block: int = 15) -> None:
    if per_tick:
        for _ in range(n_ticks):
            net.advance(DT)
    else:
        done = 0
        while done < n_ticks:
            step = min(block, n_ticks - done)
            net.advance_block(DT, step)
            done += step


class TestDifferentialGolden:
    """Pinned scenarios on both paths, compared tick by tick."""

    @pytest.mark.parametrize("qdisc", ["droptail", "red", "codel"])
    def test_single_link_qdiscs(self, qdisc):
        def build(slowpath):
            link = LinkConfig(bandwidth_mbps=48.0, rtt_ms=30.0,
                              buffer_bdp=1.5, qdisc=qdisc)
            net = FluidNetwork(link, slowpath=slowpath)
            fids = [net.add_flow(0.03, cwnd_pkts=90.0),
                    net.add_flow(0.05, cwnd_pkts=45.0)]
            return net, fids

        def script(net, fids, per_tick):
            advance(net, 300, per_tick)
            net.set_cwnd(fids[0], 120.0)
            advance(net, 300, per_tick)

        ref, fast = run_pair(build, script)
        assert_networks_equal(ref, fast)
        assert ref.queue_pkts() == pytest.approx(fast.queue_pkts(), abs=TOL)

    def test_all_fault_kinds(self):
        def build(slowpath):
            link = LinkConfig(bandwidth_mbps=48.0, rtt_ms=30.0,
                              buffer_bdp=1.0, random_loss=0.001)
            net = FluidNetwork(link, faults=ALL_FAULTS, slowpath=slowpath)
            fids = [net.add_flow(0.03, cwnd_pkts=80.0)]
            return net, fids

        def script(net, fids, per_tick):
            advance(net, 1100, per_tick)  # crosses all five fault windows

        ref, fast = run_pair(build, script)
        assert_networks_equal(ref, fast)

    def test_pacing_caps(self):
        def build(slowpath):
            link = LinkConfig(bandwidth_mbps=48.0, rtt_ms=20.0,
                              buffer_bdp=1.0)
            net = FluidNetwork(link, slowpath=slowpath)
            fids = [net.add_flow(0.02, cwnd_pkts=200.0, pacing_pps=1500.0),
                    net.add_flow(0.02, cwnd_pkts=50.0)]
            return net, fids

        def script(net, fids, per_tick):
            advance(net, 200, per_tick)
            net.set_cwnd(fids[0], 150.0, pacing_pps=900.0)
            advance(net, 200, per_tick)
            net.set_cwnd(fids[0], 150.0, pacing_pps=None)
            advance(net, 200, per_tick)

        ref, fast = run_pair(build, script)
        assert_networks_equal(ref, fast)

    def test_multi_link_paths(self):
        def build(slowpath):
            links = [
                LinkConfig(name="a", bandwidth_mbps=40.0, rtt_ms=20.0,
                           buffer_bdp=1.0),
                LinkConfig(name="b", bandwidth_mbps=24.0, rtt_ms=20.0,
                           buffer_bdp=1.0, qdisc="codel"),
                LinkConfig(name="c", bandwidth_mbps=60.0, rtt_ms=20.0,
                           buffer_bdp=2.0),
            ]
            net = FluidNetwork(links, slowpath=slowpath)
            fids = [net.add_flow(0.02, path=["a", "b"], cwnd_pkts=60.0),
                    net.add_flow(0.03, path=["b", "c"], cwnd_pkts=50.0),
                    net.add_flow(0.01, path=["a"], cwnd_pkts=40.0)]
            return net, fids

        def script(net, fids, per_tick):
            advance(net, 600, per_tick)
            net.set_cwnd(fids[1], 80.0)
            advance(net, 600, per_tick)

        ref, fast = run_pair(build, script)
        assert_networks_equal(ref, fast)
        for name in ("a", "b", "c"):
            assert ref.queue_pkts(name) == pytest.approx(
                fast.queue_pkts(name), abs=TOL)

    def test_flow_churn_mid_run(self):
        def build(slowpath):
            link = LinkConfig(bandwidth_mbps=48.0, rtt_ms=30.0,
                              buffer_bdp=1.5)
            net = FluidNetwork(link, slowpath=slowpath)
            fids = [net.add_flow(0.03, cwnd_pkts=80.0)]
            return net, fids

        def script(net, fids, per_tick):
            advance(net, 250, per_tick)
            fids.append(net.add_flow(0.05, cwnd_pkts=40.0))
            advance(net, 250, per_tick)
            net.remove_flow(fids[0])
            advance(net, 250, per_tick)
            fids.append(net.add_flow(0.02, cwnd_pkts=30.0))
            advance(net, 250, per_tick)

        ref, fast = run_pair(build, script)
        assert_networks_equal(ref, fast)

    def test_block_equals_repeated_advance_on_fast_path(self):
        """advance_block(dt, n) must equal n advance(dt) calls exactly."""
        def build():
            link = LinkConfig(bandwidth_mbps=48.0, rtt_ms=30.0,
                              buffer_bdp=1.5, qdisc="red")
            net = FluidNetwork(link, faults=ALL_FAULTS, slowpath=False)
            net.add_flow(0.03, cwnd_pkts=80.0)
            net.add_flow(0.05, cwnd_pkts=40.0)
            return net

        blocked, ticked = build(), build()
        blocked.advance_block(DT, 450)
        for _ in range(450):
            ticked.advance(DT)
        assert_networks_equal(ticked, blocked, tol=0.0)

    def test_scenario_logs_identical(self):
        """Full run_scenario: block-stepped fast vs per-tick reference."""
        def make():
            return ScenarioConfig(
                link=LinkConfig(bandwidth_mbps=48.0, rtt_ms=30.0,
                                buffer_bdp=1.5, qdisc="red"),
                flows=staggered_flows(3, "cubic", interval_s=3.0,
                                      duration_s=8.0),
                duration_s=12.0,
                seed=5,
                faults=FaultSchedule([Blackout(start_s=4.0, duration_s=0.4)]),
            )

        slow = run_scenario_with_path(make(), slowpath=True)
        fast = run_scenario_with_path(make(), slowpath=False)
        for a, b in zip(slow.flows, fast.flows):
            assert a.times == b.times
            for series in ("throughput_mbps", "rtt_s", "loss_rate",
                           "cwnd_pkts", "send_rate_mbps"):
                da = np.asarray(getattr(a, series))
                db = np.asarray(getattr(b, series))
                if len(da):
                    assert float(np.max(np.abs(da - db))) <= TOL


def run_scenario_with_path(scenario, slowpath: bool):
    import os

    from repro.netsim.fluid import SLOWPATH_ENV

    saved = os.environ.get(SLOWPATH_ENV)
    os.environ[SLOWPATH_ENV] = "1" if slowpath else "0"
    try:
        return run_scenario(scenario)
    finally:
        if saved is None:
            os.environ.pop(SLOWPATH_ENV, None)
        else:
            os.environ[SLOWPATH_ENV] = saved


class TestZeroArrivalGoodput:
    """Regression: backlog drained on a zero-arrival tick must still be
    attributed to the flows whose fluid is queued (it used to vanish)."""

    @pytest.mark.parametrize("slowpath", [True, False])
    def test_drain_attributed_after_sender_stalls(self, slowpath):
        link = LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0, buffer_bdp=4.0)
        net = FluidNetwork(link, slowpath=slowpath)
        fid = net.add_flow(0.02, cwnd_pkts=400.0)
        for _ in range(50):
            net.advance(DT)
        assert net.queue_pkts() > 1.0  # backlog built up
        # Stall the sender: pacing cap of (almost) zero means zero
        # arrivals while the queue keeps draining.
        net.set_cwnd(fid, 400.0, pacing_pps=1e-9)
        drained_before = net.queue_pkts()
        delivered = 0.0
        for _ in range(30):
            net.advance(DT)
        for s in net.monitor(fid).pending_samples()[-30:]:
            delivered += s.delivered_pkts
        assert net.queue_pkts() < drained_before
        # The drained backlog shows up as this flow's goodput.
        assert delivered > 0.5 * (drained_before - net.queue_pkts())

    @pytest.mark.parametrize("slowpath", [True, False])
    def test_total_delivered_conserved_through_stall(self, slowpath):
        link = LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0, buffer_bdp=4.0)
        net = FluidNetwork(link, slowpath=slowpath)
        f1 = net.add_flow(0.02, cwnd_pkts=300.0)
        f2 = net.add_flow(0.02, cwnd_pkts=100.0)
        for _ in range(50):
            net.advance(DT)
        net.set_cwnd(f1, 300.0, pacing_pps=1e-9)
        net.set_cwnd(f2, 100.0, pacing_pps=1e-9)
        for _ in range(40):
            net.advance(DT)
        flow_delivered = sum(
            sum(s.delivered_pkts for s in net.monitor(f).pending_samples())
            for f in (f1, f2))
        # Link-level deliveries equal the per-flow attribution (no fluid
        # delivered "to nobody").
        link_delivered = net._links[0].total_delivered_pkts
        assert flow_delivered == pytest.approx(link_delivered, rel=1e-9)


@st.composite
def random_scenario(draw):
    n_flows = draw(st.integers(min_value=1, max_value=4))
    qdisc = draw(st.sampled_from(["droptail", "red", "codel"]))
    bw = draw(st.floats(min_value=5.0, max_value=120.0))
    buf = draw(st.floats(min_value=0.25, max_value=3.0))
    rloss = draw(st.sampled_from([0.0, 0.001, 0.01]))
    flows = [
        (draw(st.floats(min_value=0.005, max_value=0.2)),   # base rtt
         draw(st.floats(min_value=4.0, max_value=300.0)),   # cwnd
         draw(st.sampled_from([None, 500.0, 5000.0])))      # pacing
        for _ in range(n_flows)
    ]
    fault = draw(st.sampled_from([
        None,
        FaultSchedule([Blackout(start_s=0.1, duration_s=0.08)]),
        FaultSchedule([LossBurst(start_s=0.1, duration_s=0.1,
                                 loss_rate=0.2)]),
        FaultSchedule([DelaySpike(start_s=0.05, duration_s=0.15,
                                  extra_ms=25.0)]),
    ]))
    churn = draw(st.booleans())
    n_ticks = draw(st.integers(min_value=1, max_value=180))
    block = draw(st.integers(min_value=1, max_value=40))
    return (n_flows, qdisc, bw, buf, rloss, flows, fault, churn,
            n_ticks, block)


class TestHypothesisDifferential:
    @settings(max_examples=40, deadline=None)
    @given(random_scenario())
    def test_random_scenarios_agree(self, params):
        (n_flows, qdisc, bw, buf, rloss, flows, fault, churn,
         n_ticks, block) = params

        def build(slowpath):
            link = LinkConfig(bandwidth_mbps=bw, rtt_ms=20.0,
                              buffer_bdp=buf, qdisc=qdisc,
                              random_loss=rloss)
            net = FluidNetwork(link, faults=fault, slowpath=slowpath)
            fids = [net.add_flow(rtt, cwnd_pkts=cwnd, pacing_pps=pace)
                    for rtt, cwnd, pace in flows]
            return net, fids

        def script(net, fids, per_tick):
            advance(net, n_ticks, per_tick, block=block)
            if churn:
                net.remove_flow(fids[0])
                fids.append(net.add_flow(0.015, cwnd_pkts=25.0))
                advance(net, n_ticks, per_tick, block=block)

        ref, fast = run_pair(build, script)
        assert_networks_equal(ref, fast)
        assert ref.queue_pkts() == pytest.approx(fast.queue_pkts(), abs=TOL)


class TestBlockApi:
    def test_invalid_block_args_raise(self):
        net = FluidNetwork(LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0))
        with pytest.raises(SimulationError):
            net.advance_block(0.0, 10)
        with pytest.raises(SimulationError):
            net.advance_block(0.002, 0)
        with pytest.raises(SimulationError):
            net.advance_block(0.002, -3)

    def test_idle_network_blocks_drain_queues(self):
        ref = FluidNetwork(LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0),
                           slowpath=True)
        fast = FluidNetwork(LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0),
                            slowpath=False)
        for net in (ref, fast):
            fid = net.add_flow(0.02, cwnd_pkts=200.0)
            for _ in range(50):
                net.advance(DT)
            net.remove_flow(fid)
        assert ref.queue_pkts() > 0
        for _ in range(100):
            ref.advance(DT)
        fast.advance_block(DT, 100)
        assert ref.queue_pkts() == pytest.approx(fast.queue_pkts(), abs=TOL)
        assert ref.now == pytest.approx(fast.now, abs=1e-12)

    def test_env_variable_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SLOWPATH", "1")
        assert slowpath_enabled()
        net = FluidNetwork(LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0))
        assert net._slowpath
        monkeypatch.setenv("REPRO_ENGINE_SLOWPATH", "0")
        assert not slowpath_enabled()
        net = FluidNetwork(LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0))
        assert not net._slowpath
        # Explicit constructor argument overrides the environment.
        monkeypatch.setenv("REPRO_ENGINE_SLOWPATH", "1")
        net = FluidNetwork(LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0),
                           slowpath=False)
        assert not net._slowpath
