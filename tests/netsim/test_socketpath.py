"""Socket datapath: framing, RTO properties, impairment determinism,
and the reliability contract (every payload byte exactly once, in order)
under randomized loss/reorder/delay schedules."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.errors import (
    ConfigError,
    SimulationError,
    TransportError,
    TransportStalledError,
)
from repro.netsim.faults import (
    Blackout,
    DelaySpike,
    FaultSchedule,
    LossBurst,
    ReorderWindow,
)
from repro.netsim.socketpath import (
    ReceiverFlow,
    RtoEstimator,
    SocketTuning,
    run_scenario_socket,
    run_scenario_socket_report,
    transfer_payload,
)
from repro.netsim.socketpath.impair import ImpairmentLink, impairment_unit
from repro.netsim.socketpath.runner import stream_chunk
from repro.netsim.socketpath.transport import (
    AckSegment,
    DataSegment,
    decode,
    encode_ack,
    encode_data,
    peek,
)

#: High compression + tiny payloads keep the wall-clock cost of the
#: socket tests in CI territory.  The RTO floor is generous in simulated
#: seconds because at scale 40 it shrinks to 12.5 ms wall — it must stay
#: above the loopback queueing delay or clean paths fire spurious RTOs.
#: The wall-datagram budget is raised so the aggregation factor (and
#: with it the buffer measured in segments) stays close to the
#: default-scale geometry.
FAST = SocketTuning(time_scale=40.0, max_wall_dgrams_per_s=20_000.0,
                    min_rto_s=0.5, max_rto_s=4.0)


class TestCodec:
    def test_data_round_trip(self):
        frame = encode_data(3, 17, 2, b"hello")
        seg = decode(frame)
        assert seg == DataSegment(3, 17, 2, b"hello")
        assert peek(frame) == (1, 3, 17, 2)

    def test_ack_round_trip(self):
        frame = encode_ack(5, 40, 44, 1, ((42, 44), (46, 47)))
        ack = decode(frame)
        assert ack == AckSegment(5, 40, 44, 1, ((42, 44), (46, 47)))
        # peek on an ACK exposes the echo fields (impairment keying)
        assert peek(frame) == (2, 5, 44, 1)

    def test_sack_blocks_capped(self):
        frame = encode_ack(0, 0, 9, 1, tuple((10 * i, 10 * i + 1)
                                             for i in range(6)))
        assert len(decode(frame).sacks) == 3

    @pytest.mark.parametrize("garbage", [
        b"",
        b"\x07junk",                       # unknown kind
        encode_data(0, 0, 1, b"abc")[:4],  # truncated DATA header
        encode_data(0, 0, 1, b"abc")[:-1],  # payload shorter than length
        encode_ack(0, 1, 0, 1)[:5],        # truncated ACK header
        encode_ack(0, 1, 0, 1, ((2, 3),))[:-2],  # truncated SACK block
    ])
    def test_garbage_raises_typed(self, garbage):
        with pytest.raises(TransportError):
            decode(garbage)

    def test_empty_sack_range_rejected(self):
        frame = bytearray(encode_ack(0, 1, 0, 1, ((5, 6),)))
        frame[-4:] = (5).to_bytes(4, "big")  # end == start
        with pytest.raises(TransportError, match="empty SACK"):
            decode(bytes(frame))

    def test_oversize_segment_rejected_at_encode(self):
        with pytest.raises(TransportError, match="exceeds"):
            encode_data(0, 0, 1, b"x" * 4096)

    def test_stream_chunk_deterministic_and_distinct(self):
        assert stream_chunk(1, 2, 32) == stream_chunk(1, 2, 32)
        assert stream_chunk(1, 2, 32) != stream_chunk(1, 3, 32)
        assert len(stream_chunk(0, 0, 100)) == 100


class TestRtoEstimator:
    def test_rejects_bad_bounds_and_samples(self):
        with pytest.raises(ConfigError):
            RtoEstimator(min_rto_s=0.0, max_rto_s=1.0)
        with pytest.raises(ConfigError):
            RtoEstimator(min_rto_s=1.0, max_rto_s=0.5)
        rto = RtoEstimator(min_rto_s=0.01, max_rto_s=1.0)
        with pytest.raises(ConfigError):
            rto.observe(0.0)

    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(st.floats(min_value=1e-4, max_value=5.0),
                            max_size=20),
           backoffs=st.integers(min_value=0, max_value=30))
    def test_rto_always_clamped(self, samples, backoffs):
        rto = RtoEstimator(min_rto_s=0.05, max_rto_s=1.5)
        for s in samples:
            rto.observe(s)
        for _ in range(backoffs):
            assert 0.05 <= rto.rto_s <= 1.5
            rto.back_off()
        assert 0.05 <= rto.rto_s <= 1.5

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=40))
    def test_backoff_monotone_then_reset_by_sample(self, n):
        rto = RtoEstimator(min_rto_s=0.01, max_rto_s=10.0)
        rto.observe(0.1)
        previous = rto.rto_s
        for _ in range(n):
            rto.back_off()
            assert rto.rto_s >= previous
            previous = rto.rto_s
        rto.observe(0.1)
        assert rto.backoff == 0
        assert rto.rto_s < 10.0

    def test_backoff_caps_at_max_rto(self):
        rto = RtoEstimator(min_rto_s=0.01, max_rto_s=0.5)
        rto.observe(0.05)
        for _ in range(100):
            rto.back_off()
        assert rto.rto_s == 0.5

    def test_first_sample_initialises_rfc6298(self):
        rto = RtoEstimator(min_rto_s=0.001, max_rto_s=10.0)
        rto.observe(0.2)
        assert rto.srtt_s == pytest.approx(0.2)
        assert rto.rttvar_s == pytest.approx(0.1)
        assert rto.rto_s == pytest.approx(0.2 + 4 * 0.1)


class TestImpairmentLink:
    LINK = LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0, buffer_bdp=2.0)

    def _fates(self, seed, faults=None, n=300):
        core = ImpairmentLink(self.LINK, faults, seed=seed,
                              time_scale=10.0, pkts_per_seg=1)
        # A fresh core per seq: fates must not depend on queue state.
        return [core.data_release_wall(0, seq, 1, 1e9, 5.0) is None
                for seq in range(n)]

    def test_unit_hash_deterministic_in_range(self):
        values = [impairment_unit(7, 1, 0, seq, 1) for seq in range(200)]
        assert values == [impairment_unit(7, 1, 0, seq, 1)
                          for seq in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_drop_fates_deterministic_per_seed(self):
        faults = FaultSchedule((LossBurst(0.0, 100.0, loss_rate=0.5),))
        first = self._fates(3, faults)
        assert first == self._fates(3, faults)
        assert any(first)            # ~50% loss must drop something
        assert not all(first)
        assert first != self._fates(4, faults)

    def test_retransmission_attempt_gets_fresh_fate(self):
        faults = FaultSchedule((LossBurst(0.0, 100.0, loss_rate=0.5),))
        core = ImpairmentLink(self.LINK, faults, seed=0, time_scale=10.0,
                              pkts_per_seg=1)
        fates = {a: core.data_release_wall(0, 9, a, 1e9, 5.0) is None
                 for a in range(1, 40)}
        assert any(fates.values()) and not all(fates.values())

    def test_blackout_parks_data_and_drops_acks(self):
        faults = FaultSchedule((Blackout(1.0, 4.0),))
        core = ImpairmentLink(self.LINK, faults, seed=0, time_scale=10.0,
                              pkts_per_seg=1)
        release = core.data_release_wall(0, 0, 1, 0.0, sim_now=2.0)
        # outage ends at sim 5.0 = 0.3 wall away at scale 10
        assert release is not None and release >= 0.3
        assert core.ack_release_wall(0, 0, 1, 0.0, sim_now=2.0) is None
        assert core.drops["blackout_ack"] == 1
        assert core.ack_release_wall(0, 0, 1, 0.0, sim_now=6.0) is not None

    def test_queue_overflow_counted(self):
        core = ImpairmentLink(self.LINK, None, seed=0, time_scale=1.0,
                              pkts_per_seg=1)
        drops_before = core.drops["overflow"]
        for seq in range(500):
            core.data_release_wall(0, seq, 1, 0.0, 0.0)  # same instant
        assert core.drops["overflow"] > drops_before
        assert core.queue_segs > 0

    def test_rejects_bad_tuning(self):
        with pytest.raises(ConfigError):
            ImpairmentLink(self.LINK, None, seed=0, time_scale=0.0,
                           pkts_per_seg=1)
        with pytest.raises(ConfigError):
            ImpairmentLink(self.LINK, None, seed=0, time_scale=1.0,
                           pkts_per_seg=0)


class TestReceiverFlow:
    def test_reorder_and_duplicate_handling(self):
        rx = ReceiverFlow(0, capture=True)
        acks = [decode(rx.on_data(DataSegment(0, seq, 1, bytes([seq]))))
                for seq in (1, 0, 0, 2)]
        assert [a.cum for a in acks] == [0, 2, 2, 3]
        assert acks[0].sacks == ((1, 2),)
        assert rx.duplicates == 1
        assert b"".join(rx.chunks) == bytes([0, 1, 2])


class TestTransferReliability:
    """The tentpole contract: exactly-once, in-order delivery."""

    def test_clean_link_no_retransmits(self):
        payload = stream_chunk(9, 0, 3000)
        data, report = transfer_payload(payload, seed=0, tuning=FAST)
        assert data == payload
        assert report.retransmits == 0
        assert report.duplicates == 0
        assert report.delivered_bytes == len(payload)

    def test_seeded_five_percent_loss_byte_exact(self):
        payload = stream_chunk(11, 1, 5000)
        faults = FaultSchedule((LossBurst(0.0, 1e4, loss_rate=0.05),))
        data, report = transfer_payload(payload, faults=faults, seed=1,
                                        tuning=FAST)
        assert data == payload
        assert report.retransmits > 0
        assert report.srtt_s is not None and report.srtt_s > 0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           loss=st.floats(min_value=0.001, max_value=0.25),
           reorder=st.floats(min_value=0.001, max_value=0.08),
           delay_ms=st.floats(min_value=1.0, max_value=80.0),
           nbytes=st.integers(min_value=1, max_value=2500))
    def test_exactly_once_in_order_under_randomized_impairment(
            self, seed, loss, reorder, delay_ms, nbytes):
        payload = stream_chunk(seed % 7, seed, nbytes)
        faults = FaultSchedule((
            LossBurst(0.0, 1e4, loss_rate=loss),
            ReorderWindow(0.0, 1e4, rate=reorder),
            DelaySpike(2.0, 3.0, extra_ms=delay_ms),
        ))
        data, report = transfer_payload(payload, faults=faults, seed=seed,
                                        tuning=FAST, max_wall_s=20.0)
        assert data == payload                    # every byte, in order
        assert report.delivered_bytes == nbytes   # exactly once

    def test_total_blackout_raises_typed_stall(self):
        tuning = SocketTuning(time_scale=40.0, max_attempts=4,
                              min_rto_s=0.1, max_rto_s=0.4)
        faults = FaultSchedule((Blackout(0.0, 1e4),))
        with pytest.raises(TransportStalledError) as err:
            transfer_payload(b"x" * 500, faults=faults, seed=0,
                             tuning=tuning, max_wall_s=10.0)
        assert err.value.flow_id == 0
        assert err.value.attempts is None or err.value.attempts >= 1

    def test_empty_payload_trivial(self):
        data, report = transfer_payload(b"", tuning=FAST)
        assert data == b"" and report.n_segments == 0


class TestScenarioRunner:
    def _scenario(self, **kw):
        defaults = dict(
            link=LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0,
                            buffer_bdp=2.0),
            flows=(FlowConfig(cc="cubic"),),
            duration_s=3.0,
            seed=0,
        )
        defaults.update(kw)
        return ScenarioConfig(**defaults)

    def test_smoke_result_and_report_shape(self):
        result, report = run_scenario_socket_report(self._scenario(),
                                                    tuning=FAST)
        assert result.duration_s == 3.0
        assert result.bottleneck_mbps == 10.0
        log = result.flows[0]
        assert len(log.times) > 0
        assert all(t >= 0 for t in log.times)
        assert all(math.isfinite(v) for v in log.throughput_mbps)
        assert report.total_corrupt == 0
        assert report.total_delivered_segs > 0
        assert report.pkts_per_seg >= 1
        assert report.wall_s > 0

    def test_run_scenario_socket_returns_result_only(self):
        result = run_scenario_socket(self._scenario(duration_s=1.5),
                                     tuning=FAST)
        assert result.flows[0].cc_name == "cubic"

    def test_rejects_traced_scenarios(self):
        scenario = self._scenario(trace="constant")
        with pytest.raises(SimulationError, match="trace"):
            run_scenario_socket(scenario, tuning=FAST)

    def test_rejects_staggered_flows(self):
        scenario = self._scenario(
            flows=(FlowConfig(cc="cubic", start_s=1.0),))
        with pytest.raises(SimulationError, match="start at t=0"):
            run_scenario_socket(scenario, tuning=FAST)

    def test_rejects_heterogeneous_rtt(self):
        scenario = self._scenario(
            flows=(FlowConfig(cc="cubic", extra_rtt_ms=30.0),))
        with pytest.raises(SimulationError, match="RTT-heterogeneous"):
            run_scenario_socket(scenario, tuning=FAST)

    def test_engine_dispatch_reaches_socket(self):
        from repro.bench.robustness import run_engine_scenario

        result = run_engine_scenario(self._scenario(duration_s=1.5),
                                     "socket")
        assert result.duration_s == 1.5
